//! Crash-consistency integration: the journal must make every
//! crash/remount land on a consistent image with all synced state
//! present, including crashes carved at arbitrary write-cut points.

use rae_basefs::{BaseFs, BaseFsConfig};
use rae_blockdev::{BlockDevice, DiskFaultPlan, FaultyDisk, MemDisk, WriteCutMode};
use rae_faults::FaultRegistry;
use rae_fsformat::{fsck, mkfs, MkfsParams};
use rae_vfs::{FileSystem, OpenFlags};
use std::sync::Arc;

fn params() -> MkfsParams {
    MkfsParams {
        total_blocks: 8192,
        inode_count: 2048,
        journal_blocks: 128,
    }
}

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

/// Run a deterministic workload with periodic fsync against a device
/// that silently drops all writes after `cut`: everything after the cut
/// never reaches the "platter", emulating a machine crash at that
/// instant. Returns the surviving image.
fn run_until_cut(cut: u64) -> Vec<u8> {
    let mem = MemDisk::new(8192);
    mkfs(&mem, params()).unwrap();
    let dev = Arc::new(FaultyDisk::with_plan(
        mem,
        DiskFaultPlan::new().cut_writes_after(cut, WriteCutMode::SilentDrop),
    ));
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    let mut synced = 0usize;
    for i in 0..60 {
        let dir = format!("/d{}", i % 5);
        let _ = fs.mkdir(&dir);
        if let Ok(fd) = fs.open(&format!("{dir}/f{i}"), rw_create()) {
            let _ = fs.write(fd, 0, &vec![i as u8; 3000]);
            let _ = fs.close(fd);
        }
        if i % 10 == 9 && fs.sync().is_ok() {
            synced = i + 1;
        }
    }
    let _ = synced;
    fs.crash();
    dev.inner().snapshot()
}

#[test]
fn every_crash_point_yields_recoverable_image() {
    // sweep crash points through the interesting range
    for cut in [5u64, 25, 60, 120, 200, 400, 800] {
        let image = run_until_cut(cut);
        let dev = Arc::new(MemDisk::from_image(&image));
        // mount replays the journal; the result must be consistent
        let fs =
            BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
        // tree must be walkable (no corruption)
        let mut stack = vec![String::from("/")];
        let mut files = 0usize;
        while let Some(dir) = stack.pop() {
            for e in fs.readdir(&dir).unwrap() {
                let path = if dir == "/" {
                    format!("/{}", e.name)
                } else {
                    format!("{dir}/{}", e.name)
                };
                match e.ftype {
                    rae_vfs::FileType::Directory => stack.push(path),
                    _ => {
                        files += 1;
                        let st = fs.stat(&path).unwrap();
                        if st.ftype == rae_vfs::FileType::Regular && st.size > 0 {
                            let fd = fs.open(&path, OpenFlags::RDONLY).unwrap();
                            let _ = fs.read(fd, 0, st.size as usize).unwrap();
                            fs.close(fd).unwrap();
                        }
                    }
                }
            }
        }
        let _ = files;
        fs.unmount().unwrap();
        let report = fsck(dev.as_ref()).unwrap();
        assert!(report.is_clean(), "cut={cut}: {report}");
    }
}

#[test]
fn synced_data_survives_any_later_crash() {
    // phase 1: write + sync a known tree, snapshot the device
    let mem = MemDisk::new(8192);
    mkfs(&mem, params()).unwrap();
    let dev = Arc::new(mem);
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    fs.mkdir("/safe").unwrap();
    for i in 0..10 {
        let fd = fs.open(&format!("/safe/f{i}"), rw_create()).unwrap();
        fs.write(fd, 0, format!("durable-{i}").as_bytes()).unwrap();
        fs.close(fd).unwrap();
    }
    fs.sync().unwrap();
    // phase 2: unsynced churn, then crash
    for i in 0..30 {
        let fd = fs.open(&format!("/volatile{i}"), rw_create()).unwrap();
        fs.write(fd, 0, b"gone").unwrap();
        fs.close(fd).unwrap();
    }
    fs.crash();

    let fs2 = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    for i in 0..10 {
        let fd = fs2.open(&format!("/safe/f{i}"), OpenFlags::RDONLY).unwrap();
        assert_eq!(
            fs2.read(fd, 0, 20).unwrap(),
            format!("durable-{i}").as_bytes()
        );
        fs2.close(fd).unwrap();
    }
    fs2.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn double_crash_replay_is_idempotent() {
    let mem = MemDisk::new(8192);
    mkfs(&mem, params()).unwrap();
    let dev = Arc::new(mem);
    {
        let fs =
            BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
        fs.mkdir("/committed").unwrap();
        fs.sync().unwrap();
        fs.crash();
    }
    // first remount replays; crash immediately again
    {
        let fs =
            BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
        assert!(fs.stat("/committed").is_ok());
        fs.crash();
    }
    // second remount must still see the same state
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    assert!(fs.stat("/committed").is_ok());
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn rae_handles_transient_device_write_errors_at_sync() {
    use rae::{RaeConfig, RaeFs};
    // a transient write error in the journal region surfaces at
    // sync/commit; RAE recovers instead of failing the application
    let mem = MemDisk::new(8192);
    mkfs(&mem, params()).unwrap();
    let plan = DiskFaultPlan::new().fail_writes(
        rae_blockdev::FaultTarget::Range { start: 1, end: 129 }, // journal
        rae_blockdev::TriggerMode::Nth(3),
    );
    let dev = Arc::new(FaultyDisk::with_plan(mem, plan));
    let fs = RaeFs::mount(
        dev.clone() as Arc<dyn BlockDevice>,
        RaeConfig {
            base: BaseFsConfig {
                faults: FaultRegistry::new(),
                ..BaseFsConfig::default()
            },
            ..RaeConfig::default()
        },
    )
    .unwrap();
    fs.mkdir("/a").unwrap();
    fs.sync().unwrap(); // journal write #3 fails -> runtime error -> recovery + re-issue
    assert!(fs.stats().recoveries >= 1, "{:?}", fs.stats());
    assert!(fs.stat("/a").is_ok());

    // after recovery, durability still holds across a crash
    fs.mkdir("/b").unwrap();
    fs.sync().unwrap();
    drop(fs);
    let fs2 = BaseFs::mount(dev as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    assert!(fs2.stat("/a").is_ok());
    assert!(fs2.stat("/b").is_ok());
}
