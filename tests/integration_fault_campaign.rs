//! Full fault-injection campaign: the whole standard bug corpus armed
//! against a RAE filesystem under sustained load.

use rae::{RaeConfig, RaeFs};
use rae_basefs::BaseFsConfig;
use rae_blockdev::{BlockDevice, MemDisk};
use rae_faults::{standard_bug_corpus, BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_fsformat::{fsck, mkfs, MkfsParams};
use rae_shadowfs::ShadowOpts;
use rae_vfs::FileSystem;
use rae_workloads::{generate_script, run_script, Profile, StepResult};
use std::sync::Arc;

fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected filesystem bug"));
            if !is_injected {
                default_hook(info);
            }
        }));
    });
}

fn campaign_fs(faults: FaultRegistry) -> (Arc<MemDisk>, RaeFs) {
    quiet_panics();
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 4096,
            journal_blocks: 512,
        },
    )
    .unwrap();
    let config = RaeConfig {
        base: BaseFsConfig {
            faults,
            ..BaseFsConfig::default()
        },
        shadow: ShadowOpts {
            validate_image: false, // campaign speed; checks stay on
            ..ShadowOpts::default()
        },
        ..RaeConfig::default()
    };
    let fs = RaeFs::mount(dev.clone() as Arc<dyn BlockDevice>, config).unwrap();
    (dev, fs)
}

/// Runtime-error errnos that must never reach the application under
/// RAE: EIO (5), EBADF from lost descriptors (9), EUCLEAN (117).
fn runtime_errnos(steps: &[StepResult]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s, StepResult::Errno(5 | 117)))
        .count()
}

#[test]
fn full_corpus_campaign_masks_every_detected_bug() {
    let faults = FaultRegistry::with_seed(99);
    for bug in standard_bug_corpus() {
        if bug.site == Site::MountImage {
            continue; // mount must succeed to run the campaign
        }
        faults.arm(bug);
    }
    let (dev, fs) = campaign_fs(faults.clone());
    let script = generate_script(Profile::FileServer, 31337, 2500);
    let outcome = run_script(&fs, &script);

    assert_eq!(
        runtime_errnos(&outcome.steps),
        0,
        "runtime errors leaked to the application"
    );
    assert!(
        faults.total_fired() > 0,
        "campaign never triggered any bug — not a meaningful test"
    );
    assert!(fs.stats().recoveries > 0);
    assert_eq!(fs.stats().recovery_failures, 0);

    // the filesystem remains fully consistent afterwards
    fs.unmount().unwrap();
    let report = fsck(dev.as_ref()).unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn per_bug_isolation_campaign() {
    // each deterministic corpus bug armed alone, with a targeted
    // trigger workload; RAE must mask each one individually
    for bug in standard_bug_corpus() {
        if !bug.is_deterministic() || bug.site == Site::MountImage {
            continue;
        }
        let id = bug.id;
        let faults = FaultRegistry::new();
        faults.arm(bug);
        let (_dev, fs) = campaign_fs(faults.clone());

        // generic churn plus the path keywords corpus triggers look for
        fs.mkdir("/hotdir").unwrap();
        fs.mkdir("/deep").unwrap();
        fs.mkdir("/deep/deep").unwrap();
        for i in 0..120 {
            let path = if i % 10 == 0 {
                format!("/hotdir/victim{i}.log")
            } else {
                format!("/hotdir/f{i}")
            };
            let fd = fs
                .open(&path, rae_vfs::OpenFlags::RDWR | rae_vfs::OpenFlags::CREATE)
                .unwrap();
            fs.write(fd, 0, &vec![i as u8; 1500]).unwrap();
            fs.close(fd).unwrap();
            if i % 4 == 0 {
                let _ = fs.readdir("/hotdir").unwrap();
            }
            if i % 25 == 24 {
                fs.unlink(&format!("/hotdir/f{}", i - 1)).unwrap();
                let _ = fs.stat("/deep/deep").unwrap();
            }
        }
        let _ = fs.rename("/hotdir/victim0.log", "/hotdir/renamed");

        if faults.fired(id) > 0 {
            assert_eq!(fs.stats().recovery_failures, 0, "bug {id} broke recovery");
            // detected/panic effects must have produced recoveries;
            // warn/silent effects legitimately do not
            let stats = fs.stats();
            assert!(
                stats.recoveries > 0 || stats.detected_errors == 0 && stats.panics_caught == 0,
                "bug {id}: fired but no recovery and errors were detected: {stats:?}"
            );
        }
    }
}

#[test]
fn transient_bugs_under_sustained_load() {
    let faults = FaultRegistry::with_seed(5);
    faults.arm(BugSpec::new(
        300,
        "transient-alloc",
        Site::Alloc,
        Trigger::Random { p: 0.01 },
        Effect::DetectedError,
    ));
    faults.arm(BugSpec::new(
        301,
        "transient-lookup-panic",
        Site::PathLookup,
        Trigger::Random { p: 0.003 },
        Effect::Panic,
    ));
    let (dev, fs) = campaign_fs(faults);
    let script = generate_script(Profile::Varmail, 777, 1500);
    let outcome = run_script(&fs, &script);
    assert_eq!(runtime_errnos(&outcome.steps), 0);
    assert!(fs.stats().recoveries > 0, "{:?}", fs.stats());
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}
