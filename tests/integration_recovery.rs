//! End-to-end RAE recovery scenarios across the whole stack.

use rae::{RaeConfig, RaeFs, RecoveryMode};
use rae_basefs::BaseFsConfig;
use rae_blockdev::{BlockDevice, MemDisk};
use rae_faults::{BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_fsformat::{fsck, mkfs, MkfsParams};
use rae_shadowfs::ShadowOpts;
use rae_vfs::{FileSystem, FsError, OpenFlags};
use std::sync::Arc;

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected filesystem bug"));
            if !is_injected {
                default_hook(info);
            }
        }));
    });
}

fn setup(faults: FaultRegistry) -> (Arc<MemDisk>, RaeFs) {
    quiet_panics();
    let dev = Arc::new(MemDisk::new(8192));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 8192,
            inode_count: 2048,
            journal_blocks: 256,
        },
    )
    .unwrap();
    let config = RaeConfig {
        base: BaseFsConfig {
            faults,
            ..BaseFsConfig::default()
        },
        ..RaeConfig::default()
    };
    let fs = RaeFs::mount(dev.clone() as Arc<dyn BlockDevice>, config).unwrap();
    (dev, fs)
}

#[test]
fn long_workload_with_repeated_recoveries_stays_consistent() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        1,
        "periodic-alloc-bug",
        Site::Alloc,
        Trigger::EveryNth(40),
        Effect::DetectedError,
    ));
    faults.arm(BugSpec::new(
        2,
        "periodic-write-panic",
        Site::Write,
        Trigger::EveryNth(75),
        Effect::Panic,
    ));
    let (dev, fs) = setup(faults);

    let mut expected_files = Vec::new();
    for i in 0..150 {
        let dir = format!("/dir{}", i % 7);
        if fs.stat(&dir) == Err(FsError::NotFound) {
            fs.mkdir(&dir).unwrap();
        }
        let path = format!("{dir}/file{i}");
        let fd = fs.open(&path, rw_create()).unwrap();
        fs.write(fd, 0, format!("content-{i}").as_bytes()).unwrap();
        fs.close(fd).unwrap();
        expected_files.push((path, format!("content-{i}")));
        if i % 31 == 30 {
            fs.sync().unwrap();
        }
    }
    assert!(fs.stats().recoveries >= 4, "{:?}", fs.stats());
    assert_eq!(fs.stats().recovery_failures, 0);

    // every file the application believes it wrote is intact
    for (path, content) in &expected_files {
        let fd = fs.open(path, OpenFlags::RDONLY).unwrap();
        let data = fs.read(fd, 0, content.len()).unwrap();
        assert_eq!(&String::from_utf8(data).unwrap(), content, "{path}");
        fs.close(fd).unwrap();
    }
    // every recovery cross-checked cleanly
    for report in fs.recovery_reports() {
        assert!(report.discrepancies.is_empty(), "{report:?}");
    }
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn deep_tree_survives_recovery() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        3,
        "deep-lookup-bug",
        Site::PathLookup,
        Trigger::PathContains("d5/d6".into()),
        Effect::DetectedError,
    ));
    let (_dev, fs) = setup(faults);

    let mut path = String::new();
    for i in 0..10 {
        path.push_str(&format!("/d{i}"));
        fs.mkdir(&path).unwrap(); // deep paths trip the bug; masked
    }
    let file = format!("{path}/leaf");
    let fd = fs.open(&file, rw_create()).unwrap();
    fs.write(fd, 0, b"deep").unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.stat(&file).unwrap().size, 4);
    assert!(fs.stats().recoveries >= 1);
}

#[test]
fn hard_links_and_symlinks_survive_recovery() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        4,
        "bug",
        Site::DirModify,
        Trigger::NthMatch(12),
        Effect::Panic,
    ));
    let (_dev, fs) = setup(faults);

    let fd = fs.open("/original", rw_create()).unwrap();
    fs.write(fd, 0, b"linked-data").unwrap();
    fs.close(fd).unwrap();
    fs.link("/original", "/hardlink").unwrap();
    fs.symlink("/original", "/symlink").unwrap();
    // churn until the bug fires
    for i in 0..20 {
        let fd = fs.open(&format!("/churn{i}"), rw_create()).unwrap();
        fs.close(fd).unwrap();
    }
    assert!(fs.stats().recoveries >= 1);

    assert_eq!(fs.stat("/original").unwrap().nlink, 2);
    assert_eq!(
        fs.stat("/original").unwrap().ino,
        fs.stat("/hardlink").unwrap().ino
    );
    assert_eq!(fs.readlink("/symlink").unwrap(), "/original");
    let fd = fs.open("/hardlink", OpenFlags::RDONLY).unwrap();
    assert_eq!(fs.read(fd, 0, 11).unwrap(), b"linked-data");
    fs.close(fd).unwrap();
}

#[test]
fn recovery_latency_is_bounded_for_small_logs() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        5,
        "bug",
        Site::Alloc,
        Trigger::NthMatch(5),
        Effect::DetectedError,
    ));
    let (_dev, fs) = setup(faults);
    for i in 0..6 {
        fs.mkdir(&format!("/d{i}")).unwrap();
    }
    let reports = fs.recovery_reports();
    assert_eq!(reports.len(), 1);
    assert!(
        reports[0].duration.as_millis() < 5_000,
        "recovery took {:?}",
        reports[0].duration
    );
    assert!(reports[0].shadow_checks > 0);
}

#[test]
fn append_mode_descriptor_survives_recovery() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        6,
        "bug",
        Site::Alloc,
        Trigger::NthMatch(3),
        Effect::DetectedError,
    ));
    let (_dev, fs) = setup(faults);
    let log = fs
        .open("/app.log", rw_create() | OpenFlags::APPEND)
        .unwrap();
    fs.write(log, 0, b"line1\n").unwrap();
    fs.mkdir("/d1").unwrap(); // alloc 2
    fs.mkdir("/d2").unwrap(); // alloc 3: bug -> recovery
                              // append mode must survive the descriptor reconstruction
    fs.write(log, 0, b"line2\n").unwrap();
    assert_eq!(fs.read(log, 0, 12).unwrap(), b"line1\nline2\n");
    fs.close(log).unwrap();
}

#[test]
fn recovery_after_barrier_uses_restored_descriptors() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        7,
        "bug",
        Site::Truncate,
        Trigger::NthMatch(1),
        Effect::Panic,
    ));
    let (_dev, fs) = setup(faults);

    let fd = fs.open("/kept-open", rw_create()).unwrap();
    fs.write(fd, 0, b"0123456789").unwrap();
    fs.sync().unwrap(); // barrier: open record becomes RestoreFd

    // rename the file while the descriptor stays open — the retained
    // record must restore by inode, not by the stale path
    fs.rename("/kept-open", "/renamed").unwrap();
    // truncate trips the planted panic -> recovery with RestoreFd replay
    fs.truncate(fd, 4).unwrap();

    assert_eq!(fs.stats().recoveries, 1);
    assert_eq!(fs.fstat(fd).unwrap().size, 4);
    assert_eq!(fs.read(fd, 0, 10).unwrap(), b"0123");
    assert_eq!(fs.stat("/renamed").unwrap().size, 4);
    for report in fs.recovery_reports() {
        assert!(report.discrepancies.is_empty(), "{report:?}");
    }
}

#[test]
fn crash_remount_vs_rae_availability_difference() {
    // identical workload + bug under both policies
    let run = |mode: RecoveryMode| -> (u64, u64) {
        let faults = FaultRegistry::new();
        faults.arm(BugSpec::new(
            8,
            "bug",
            Site::Alloc,
            Trigger::NthMatch(10),
            Effect::DetectedError,
        ));
        quiet_panics();
        let dev = Arc::new(MemDisk::new(8192));
        mkfs(
            dev.as_ref(),
            MkfsParams {
                total_blocks: 8192,
                inode_count: 2048,
                journal_blocks: 256,
            },
        )
        .unwrap();
        let config = RaeConfig {
            base: BaseFsConfig {
                faults,
                ..BaseFsConfig::default()
            },
            mode,
            ..RaeConfig::default()
        };
        let fs = RaeFs::mount(dev as Arc<dyn BlockDevice>, config).unwrap();
        let mut ok = 0u64;
        let mut failed = 0u64;
        for i in 0..20 {
            match fs.mkdir(&format!("/d{i}")) {
                Ok(()) => ok += 1,
                Err(_) => failed += 1,
            }
        }
        (ok, failed)
    };

    let (rae_ok, rae_failed) = run(RecoveryMode::Rae);
    let (cr_ok, cr_failed) = run(RecoveryMode::CrashRemount);
    assert_eq!((rae_ok, rae_failed), (20, 0), "RAE masks the bug");
    assert_eq!(cr_failed, 1, "crash-remount surfaces one failure");
    assert!(cr_ok < 20);
}

#[test]
fn shadow_refinement_mode_recovery_is_clean() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        9,
        "bug",
        Site::Rename,
        Trigger::NthMatch(1),
        Effect::DetectedError,
    ));
    quiet_panics();
    let dev = Arc::new(MemDisk::new(8192));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 8192,
            inode_count: 2048,
            journal_blocks: 256,
        },
    )
    .unwrap();
    let config = RaeConfig {
        base: BaseFsConfig {
            faults,
            ..BaseFsConfig::default()
        },
        shadow: ShadowOpts {
            refinement_check: true,
            ..ShadowOpts::default()
        },
        ..RaeConfig::default()
    };
    let fs = RaeFs::mount(dev as Arc<dyn BlockDevice>, config).unwrap();
    let fd = fs.open("/a", rw_create()).unwrap();
    fs.write(fd, 0, b"x").unwrap();
    fs.close(fd).unwrap();
    fs.rename("/a", "/b").unwrap(); // bug -> recovery with model check
    assert_eq!(fs.stats().recoveries, 1);
    assert!(fs.recovery_reports()[0].discrepancies.is_empty());
    assert!(fs.stat("/b").is_ok());
}

#[test]
fn concurrent_clients_with_recurring_bugs_heavy() {
    // six threads of mixed work, transient + deterministic bugs firing
    // throughout; the filesystem must never deadlock, never leak a
    // runtime error, and end consistent
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        20,
        "recurring-alloc",
        Site::Alloc,
        Trigger::EveryNth(90),
        Effect::DetectedError,
    ));
    faults.arm(BugSpec::new(
        21,
        "recurring-lookup-panic",
        Site::PathLookup,
        Trigger::EveryNth(301),
        Effect::Panic,
    ));
    let (dev, fs) = setup(faults);
    let fs = Arc::new(fs);
    for t in 0..6 {
        fs.mkdir(&format!("/w{t}")).unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            for i in 0..80 {
                let path = format!("/w{t}/f{i}");
                let fd = fs.open(&path, rw_create()).unwrap();
                fs.write(fd, 0, &vec![(t + i) as u8; 700]).unwrap();
                let back = fs.read(fd, 0, 700).unwrap();
                assert!(back.iter().all(|&b| b == (t + i) as u8), "{path} corrupted");
                fs.close(fd).unwrap();
                if i % 9 == 0 {
                    let _ = fs.readdir(&format!("/w{t}")).unwrap();
                }
                if i % 21 == 20 {
                    fs.unlink(&path).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let fs = Arc::into_inner(fs).unwrap();
    assert!(fs.stats().recoveries >= 1, "{:?}", fs.stats());
    assert_eq!(fs.stats().recovery_failures, 0);
    fs.unmount().unwrap();
    let report = fsck(dev.as_ref()).unwrap();
    assert!(report.is_clean(), "{report}");
}
