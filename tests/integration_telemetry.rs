//! End-to-end telemetry: flight-recorder timelines, per-class latency
//! histograms, per-rung recovery timing, and the counter-visibility
//! guarantees (stats bumped inside a failing rung must survive the
//! unwind; standby audit totals must survive standby teardown).

use rae::{LadderRung, RaeConfig, RaeFs, StandbyOpts};
use rae_basefs::BaseFsConfig;
use rae_blockdev::{BlockDevice, MemDisk};
use rae_faults::{BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_fsformat::{mkfs, MkfsParams};
use rae_telemetry::{EventKind, OpClass};
use rae_vfs::{FileSystem, OpenFlags};
use std::sync::Arc;

fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected filesystem bug"));
            if !is_injected {
                default_hook(info);
            }
        }));
    });
}

fn setup_with(faults: FaultRegistry, standby: StandbyOpts) -> RaeFs {
    quiet_panics();
    let dev = Arc::new(MemDisk::new(8192));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 8192,
            inode_count: 2048,
            journal_blocks: 256,
        },
    )
    .unwrap();
    let config = RaeConfig {
        base: BaseFsConfig {
            faults,
            ..BaseFsConfig::default()
        },
        standby,
        ..RaeConfig::default()
    };
    RaeFs::mount(dev as Arc<dyn BlockDevice>, config).unwrap()
}

fn setup(faults: FaultRegistry) -> RaeFs {
    setup_with(faults, StandbyOpts::default())
}

#[test]
fn timeline_renders_a_coherent_incident() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        7,
        "boom-panic",
        Site::DirModify,
        Trigger::PathContains("boom".into()),
        Effect::Panic,
    ));
    let fs = setup(faults);

    fs.mkdir("/fine").unwrap();
    fs.mkdir("/boom").unwrap(); // panic → masked by recovery
    assert!(fs.stat("/boom").is_ok());

    let tele = fs.telemetry();
    let (events, dropped) = tele.timeline();
    assert_eq!(dropped, 0);
    let pos = |kind: EventKind| events.iter().position(|e| e.kind == kind);
    let panic_at = pos(EventKind::PanicCaught).expect("panic event");
    let start_at = pos(EventKind::RecoveryStarted).expect("start event");
    let rung_at = pos(EventKind::RungEntered).expect("rung event");
    let done_at = pos(EventKind::RecoveryDone).expect("done event");
    assert!(
        panic_at < start_at && start_at < rung_at && rung_at < done_at,
        "incident order: panic → start → rung → done"
    );
    // monotone timestamps and a cold-rung terminal code
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    assert_eq!(events[done_at].a, LadderRung::Cold.code());

    let rendered = rae_telemetry::render_timeline(&events, dropped);
    assert!(rendered.contains("panic caught"), "{rendered}");
    assert!(rendered.contains("recovery started"), "{rendered}");
    assert!(rendered.contains("rung entered: cold"), "{rendered}");
    assert!(rendered.contains("recovery done"), "{rendered}");
}

#[test]
fn api_boundary_histograms_count_per_class() {
    let fs = setup(FaultRegistry::new());
    fs.mkdir("/d").unwrap();
    let fd = fs
        .open("/d/f", OpenFlags::RDWR | OpenFlags::CREATE)
        .unwrap();
    fs.write(fd, 0, b"hello").unwrap();
    fs.read(fd, 0, 5).unwrap();
    fs.read(fd, 0, 5).unwrap();
    fs.stat("/d/f").unwrap();
    fs.readdir("/d").unwrap();
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();
    fs.unlink("/d/f").unwrap();

    let tele = fs.telemetry();
    assert_eq!(tele.op_histogram(OpClass::Read).count(), 2);
    assert_eq!(tele.op_histogram(OpClass::Write).count(), 1);
    assert_eq!(tele.op_histogram(OpClass::Create).count(), 2); // mkdir + create
    assert_eq!(tele.op_histogram(OpClass::Unlink).count(), 1);
    assert_eq!(tele.op_histogram(OpClass::Readdir).count(), 1);
    assert_eq!(tele.op_histogram(OpClass::Fsync).count(), 1);
    assert!(tele.op_histogram(OpClass::Stat).count() >= 1);
    // journal commits happened (mkdir/create paths force them eventually)
    let snap = tele.snapshot();
    assert!(snap.ops.iter().any(|(_, s)| s.count > 0));
}

#[test]
fn per_rung_durations_reported_and_failed_rungs_timed() {
    // first (cold) shadow replay fails once; the cold-retry rung lands
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        11,
        "dir-bug",
        Site::DirModify,
        Trigger::PathContains("boom".into()),
        Effect::DetectedError,
    ));
    faults.arm(BugSpec::new(
        12,
        "replay-bug-once",
        Site::RecoveryReplay,
        Trigger::NthMatch(1),
        Effect::DetectedError,
    ));
    let fs = setup(faults);

    fs.mkdir("/ok").unwrap();
    fs.mkdir("/boom").unwrap(); // recovery: cold fails, cold_retry lands

    let reports = fs.recovery_reports();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.rung, LadderRung::ColdRetry);
    assert_eq!(r.failed_rungs.len(), 1);
    assert_eq!(r.failed_rungs[0].rung, LadderRung::Cold);
    assert!(r.failed_rungs[0].duration.as_nanos() > 0);
    assert!(r.rung_time.as_nanos() > 0);
    assert!(r.duration >= r.rung_time);

    let stats = fs.stats();
    assert!(stats.rung_cold_time_ns > 0);
    assert!(stats.rung_cold_retry_time_ns > 0);
    assert_eq!(stats.rung_warm_time_ns, 0);
    // the lump field is kept and covers at least the rung breakdown
    assert!(stats.recovery_time_ns >= stats.rung_cold_time_ns + stats.rung_cold_retry_time_ns);
}

#[test]
fn counters_bumped_inside_failing_rungs_stay_visible() {
    // every rung panics: the ladder runs all the way to degraded, and
    // every panic caught inside a failed rung must still be counted
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        21,
        "dir-bug",
        Site::DirModify,
        Trigger::PathContains("boom".into()),
        Effect::DetectedError,
    ));
    faults.arm(BugSpec::new(
        22,
        "replay-panics-always",
        Site::RecoveryReplay,
        Trigger::Always,
        Effect::Panic,
    ));
    let fs = setup(faults);

    fs.mkdir("/ok").unwrap();
    let _ = fs.mkdir("/boom"); // ladder: cold panics, cold_retry panics, degrade

    let stats = fs.stats();
    assert_eq!(stats.detected_errors, 1);
    assert!(
        stats.panics_caught >= 2,
        "panics inside failed rungs must stay counted: {}",
        stats.panics_caught
    );
    assert!(stats.degraded);
    assert_eq!(stats.ladder_degraded, 1);
    let reports = fs.recovery_reports();
    let r = reports.last().unwrap();
    assert_eq!(r.rung, LadderRung::Degraded);
    assert!(r.failed_rungs.iter().all(|f| f.duration.as_nanos() > 0));

    let (events, _) = fs.telemetry().timeline();
    let failed: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::RungFailed)
        .collect();
    assert!(failed.len() >= 2, "both shadow rungs recorded failures");
    assert!(events.iter().any(|e| e.kind == EventKind::Degraded));
}

#[test]
fn trace_ids_cross_every_layer_and_filter_the_timeline() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        41,
        "traced-bug",
        Site::DirModify,
        Trigger::PathContains("traced".into()),
        Effect::DetectedError,
    ));
    faults.arm(BugSpec::new(
        42,
        "ambient-bug",
        Site::DirModify,
        Trigger::PathContains("ambient".into()),
        Effect::DetectedError,
    ));
    let fs = setup(faults);

    // one traced request whose masked fault drives the full incident
    // pipeline, bracketed by an identical *untraced* incident
    fs.mkdir("/ambient-boom").unwrap();
    rae_telemetry::set_current_trace(42);
    fs.mkdir("/traced-boom").unwrap();
    rae_telemetry::clear_current_trace();

    let (events, dropped) = fs.telemetry().timeline();
    let traced: Vec<_> = events.iter().filter(|e| e.trace_id == 42).collect();
    assert!(
        traced.iter().any(|e| e.kind == EventKind::ErrorDetected),
        "detection stamped with the request trace"
    );
    assert!(
        traced.iter().any(|e| e.kind == EventKind::RecoveryDone),
        "recovery completion stamped with the request trace"
    );
    // events caused by other requests never leak into the trace
    assert!(events.iter().any(|e| e.trace_id == 0));

    let rendered = rae_telemetry::render_trace_timeline(&events, dropped, 42);
    assert!(rendered.starts_with("trace 42:"), "{rendered}");
    assert!(rendered.contains("error detected"), "{rendered}");
    assert!(rendered.contains("recovery done"), "{rendered}");
    let empty = rae_telemetry::render_trace_timeline(&events, dropped, 9999);
    assert!(
        empty.contains("no retained events for trace 9999"),
        "{empty}"
    );
}

#[test]
fn attribution_vectors_cover_the_mutation_path() {
    let fs = setup(FaultRegistry::new());
    let fd = fs.open("/f", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
    for i in 0..32u64 {
        fs.write(fd, i * 512, &[i as u8; 512]).unwrap();
    }
    fs.fsync(fd).unwrap();
    fs.close(fd).unwrap();

    let snap = fs.telemetry().snapshot();
    // every mutation is always-timed, so the attribution plane has the
    // same order of samples as the op histograms
    let attr_total: u64 = snap.attribution.iter().map(|(_, s)| s.count).sum();
    assert!(attr_total > 0, "attribution recorded: {snap:?}");
    let journal = snap
        .attribution
        .iter()
        .find(|(name, _)| *name == "journal_io")
        .map(|(_, s)| s.count)
        .unwrap_or(0);
    assert!(journal > 0, "journal layer attributed: {snap:?}");
    // the rendered snapshot carries the attr rows for `top`
    let table = snap.render_table();
    assert!(table.contains("attr/"), "{table}");
}

#[test]
fn standby_audit_totals_survive_teardown() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        31,
        "late-bug",
        Site::DirModify,
        Trigger::PathContains("boom".into()),
        Effect::DetectedError,
    ));
    let fs = setup_with(
        faults,
        StandbyOpts {
            enabled: true,
            audit_interval_ops: 4,
            ..StandbyOpts::default()
        },
    );

    for i in 0..9 {
        fs.mkdir(&format!("/d{i}")).unwrap();
    }
    let before = fs.stats();
    assert!(
        before.standby_audits_run >= 2,
        "audits ran: {}",
        before.standby_audits_run
    );

    // recovery consumes the standby handle (handover) and re-arms a
    // fresh one whose own counters start at zero — the totals must not
    // reset with it
    fs.mkdir("/boom").unwrap();
    let after = fs.stats();
    assert!(
        after.standby_audits_run >= before.standby_audits_run,
        "audit totals survive standby teardown: {} -> {}",
        before.standby_audits_run,
        after.standby_audits_run
    );
    assert!(after.standby_active, "standby re-armed after recovery");
}
