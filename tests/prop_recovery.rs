//! Property-based end-to-end tests: for random operation scripts and
//! random fault points, RAE-recovered state must equal the executable
//! specification's state, and images must stay fsck-clean.

use proptest::prelude::*;
use rae::{RaeConfig, RaeFs};
use rae_basefs::BaseFsConfig;
use rae_blockdev::{BlockDevice, MemDisk};
use rae_faults::{BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_fsformat::{fsck, mkfs, MkfsParams};
use rae_fsmodel::ModelFs;
use rae_shadowfs::{ShadowAsPrimary, ShadowOpts};
use rae_workloads::{
    compare_outcomes, diff_trees, dump_tree, generate_script, run_script, Profile,
};
use std::sync::Arc;

fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected filesystem bug"));
            if !is_injected {
                default_hook(info);
            }
        }));
    });
}

fn fresh_dev() -> Arc<MemDisk> {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 4096,
            journal_blocks: 512,
        },
    )
    .unwrap();
    dev
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 40,
        .. ProptestConfig::default()
    })]

    /// The shadow (as primary) refines the spec for arbitrary scripts.
    #[test]
    fn shadow_refines_spec(seed in 0u64..5000, steps in 50usize..400) {
        let script = generate_script(Profile::Chaos, seed, steps);
        let model = ModelFs::new();
        let shadow = ShadowAsPrimary::load(
            fresh_dev() as Arc<dyn BlockDevice>,
            ShadowOpts { validate_image: false, ..ShadowOpts::default() },
        ).unwrap();
        let expected = run_script(&model, &script);
        let actual = run_script(&shadow, &script);
        let div = compare_outcomes(&expected, &actual);
        prop_assert!(div.is_empty(), "step {}: {:?} vs {:?} (op {:?})",
            div[0].step, div[0].a, div[0].b, script[div[0].step]);
    }

    /// The base refines the spec for arbitrary scripts, and the image
    /// passes fsck after unmount.
    #[test]
    fn base_refines_spec_and_stays_consistent(seed in 0u64..5000, steps in 50usize..400) {
        let script = generate_script(Profile::Chaos, seed, steps);
        let model = ModelFs::new();
        let dev = fresh_dev();
        let base = rae_basefs::BaseFs::mount(
            dev.clone() as Arc<dyn BlockDevice>,
            BaseFsConfig::default(),
        ).unwrap();
        let expected = run_script(&model, &script);
        let actual = run_script(&base, &script);
        let div = compare_outcomes(&expected, &actual);
        prop_assert!(div.is_empty(), "step {}: {:?} vs {:?} (op {:?})",
            div[0].step, div[0].a, div[0].b, script[div[0].step]);
        base.unmount().unwrap();
        let report = fsck(dev.as_ref()).unwrap();
        prop_assert!(report.is_clean(), "{report}");
    }

    /// With a detected-error bug planted at a random point, the RAE
    /// filesystem still produces exactly the spec's observable results.
    #[test]
    fn rae_masks_random_fault_points(
        seed in 0u64..2000,
        steps in 60usize..250,
        fault_at in 1u64..120,
        site_pick in 0usize..4,
        effect_pick in 0usize..2,
    ) {
        quiet_panics();
        let script = generate_script(Profile::Chaos, seed, steps);
        let model = ModelFs::new();
        let expected = run_script(&model, &script);

        let site = [Site::Alloc, Site::Write, Site::DirModify, Site::PathLookup][site_pick];
        let effect = [Effect::DetectedError, Effect::Panic][effect_pick];
        let faults = FaultRegistry::new();
        faults.arm(BugSpec::new(1, "prop-bug", site, Trigger::NthMatch(fault_at), effect));

        let dev = fresh_dev();
        let fs = RaeFs::mount(
            dev.clone() as Arc<dyn BlockDevice>,
            RaeConfig {
                base: BaseFsConfig { faults: faults.clone(), ..BaseFsConfig::default() },
                shadow: ShadowOpts { validate_image: false, ..ShadowOpts::default() },
                ..RaeConfig::default()
            },
        ).unwrap();
        let actual = run_script(&fs, &script);
        let div = compare_outcomes(&expected, &actual);
        prop_assert!(div.is_empty(),
            "fired={} recoveries={} step {}: {:?} vs {:?} (op {:?})",
            faults.fired(1), fs.stats().recoveries,
            div[0].step, div[0].a, div[0].b, script[div[0].step]);
        prop_assert_eq!(fs.stats().recovery_failures, 0);

        // trees agree and the image is consistent
        let t_expected = dump_tree(&model).unwrap();
        let t_actual = dump_tree(&fs).unwrap();
        let diffs = diff_trees(&t_expected, &t_actual);
        prop_assert!(diffs.is_empty(), "{:?}", diffs);
        fs.unmount().unwrap();
        let report = fsck(dev.as_ref()).unwrap();
        prop_assert!(report.is_clean(), "{report}");
    }

    /// Crash anywhere (write cut-off), remount: image is always
    /// fsck-consistent (crash-safety property of the journal).
    #[test]
    fn crash_anywhere_is_recoverable(seed in 0u64..2000, cut in 3u64..600) {
        use rae_blockdev::{DiskFaultPlan, FaultyDisk, WriteCutMode};
        let mem = MemDisk::new(8192);
        mkfs(&mem, MkfsParams { total_blocks: 8192, inode_count: 2048, journal_blocks: 128 }).unwrap();
        let dev = Arc::new(FaultyDisk::with_plan(
            mem,
            DiskFaultPlan::new().cut_writes_after(cut, WriteCutMode::SilentDrop),
        ));
        let base = rae_basefs::BaseFs::mount(
            dev.clone() as Arc<dyn BlockDevice>,
            BaseFsConfig::default(),
        ).unwrap();
        let script = generate_script(Profile::Varmail, seed, 150);
        let _ = run_script(&base, &script); // fsyncs may fail post-cut; ignored
        base.crash();

        let image = dev.inner().snapshot();
        let survivor = Arc::new(MemDisk::from_image(&image));
        let fs2 = rae_basefs::BaseFs::mount(
            survivor.clone() as Arc<dyn BlockDevice>,
            BaseFsConfig::default(),
        ).unwrap();
        fs2.unmount().unwrap();
        let report = fsck(survivor.as_ref()).unwrap();
        prop_assert!(report.is_clean(), "cut={cut}: {report}");
    }
}
