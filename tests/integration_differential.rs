//! Differential conformance: the base, the shadow-as-primary, the RAE
//! wrapper, and the executable specification must agree on every
//! profile (§4.3's testing phase, as an integration gate).

use rae::{RaeConfig, RaeFs};
use rae_basefs::{BaseFs, BaseFsConfig};
use rae_blockdev::{BlockDevice, MemDisk};
use rae_fsformat::{mkfs, MkfsParams};
use rae_fsmodel::ModelFs;
use rae_shadowfs::{ShadowAsPrimary, ShadowOpts};
use rae_vfs::FileSystem;
use rae_workloads::{
    compare_outcomes, diff_trees, dump_tree, generate_script, run_script, Profile,
};
use std::sync::Arc;

fn fresh_base() -> BaseFs {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 4096,
            journal_blocks: 512,
        },
    )
    .unwrap();
    BaseFs::mount(dev as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap()
}

fn fresh_shadow() -> ShadowAsPrimary {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 4096,
            journal_blocks: 512,
        },
    )
    .unwrap();
    ShadowAsPrimary::load(dev as Arc<dyn BlockDevice>, ShadowOpts::default()).unwrap()
}

fn fresh_rae() -> RaeFs {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 4096,
            journal_blocks: 512,
        },
    )
    .unwrap();
    RaeFs::mount(dev as Arc<dyn BlockDevice>, RaeConfig::default()).unwrap()
}

fn assert_conforms(
    name: &str,
    script_profile: Profile,
    seed: u64,
    steps: usize,
    fs: &dyn FileSystem,
) {
    let script = generate_script(script_profile, seed, steps);
    let model = ModelFs::new();
    let expected = run_script(&model, &script);
    let actual = run_script(fs, &script);
    let divergences = compare_outcomes(&expected, &actual);
    assert!(
        divergences.is_empty(),
        "{name} diverged from the spec on {} (seed {seed}): first at step {}: {:?} vs {:?} (op: {:?})",
        script_profile.name(),
        divergences[0].step,
        divergences[0].a,
        divergences[0].b,
        script[divergences[0].step],
    );
    // final trees must agree too
    let t_expected = dump_tree(&model).unwrap();
    let t_actual = dump_tree(fs).unwrap();
    let diffs = diff_trees(&t_expected, &t_actual);
    assert!(diffs.is_empty(), "{name} tree differs: {diffs:?}");
}

#[test]
fn base_conforms_to_spec_on_all_profiles() {
    for profile in Profile::ALL {
        for seed in [1u64, 2, 3] {
            let base = fresh_base();
            assert_conforms("base", profile, seed, 400, &base);
        }
    }
}

#[test]
fn shadow_conforms_to_spec_on_all_profiles() {
    for profile in Profile::ALL {
        for seed in [1u64, 2, 3] {
            let shadow = fresh_shadow();
            assert_conforms("shadow", profile, seed, 400, &shadow);
        }
    }
}

#[test]
fn rae_conforms_to_spec_on_all_profiles() {
    for profile in Profile::ALL {
        for seed in [4u64, 5] {
            let rae = fresh_rae();
            assert_conforms("rae", profile, seed, 300, &rae);
            assert_eq!(rae.stats().recoveries, 0, "no faults were armed");
        }
    }
}

#[test]
fn long_chaos_runs_agree_across_all_four_implementations() {
    let script = generate_script(Profile::Chaos, 777, 1500);
    let model = ModelFs::new();
    let base = fresh_base();
    let shadow = fresh_shadow();
    let rae = fresh_rae();

    let reference = run_script(&model, &script);
    for (name, fs) in [
        ("base", &base as &dyn FileSystem),
        ("shadow", &shadow as &dyn FileSystem),
        ("rae", &rae as &dyn FileSystem),
    ] {
        let outcome = run_script(fs, &script);
        let divergences = compare_outcomes(&reference, &outcome);
        assert!(
            divergences.is_empty(),
            "{name}: {} divergences, first at step {}: {:?} vs {:?}",
            divergences.len(),
            divergences[0].step,
            divergences[0].a,
            divergences[0].b,
        );
    }
}

#[test]
fn base_survives_unmount_remount_with_identical_tree() {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 4096,
            journal_blocks: 512,
        },
    )
    .unwrap();
    let base = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    let script = generate_script(Profile::FileServer, 21, 500);
    let _ = run_script(&base, &script);
    let before = dump_tree(&base).unwrap();
    base.unmount().unwrap();

    let base2 = BaseFs::mount(dev as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    let after = dump_tree(&base2).unwrap();
    let diffs = diff_trees(&before, &after);
    assert!(diffs.is_empty(), "remount changed the tree: {diffs:?}");
}
