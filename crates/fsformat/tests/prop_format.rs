//! Property-based tests of the on-disk format: codecs must round-trip,
//! validators must reject mutations, directory blocks must behave like
//! their abstract map model, and journal replay must apply exactly the
//! committed prefix.

use proptest::prelude::*;
use rae_blockdev::{BlockDevice, MemDisk, BLOCK_SIZE};
use rae_fsformat::bitmap::Bitmap;
use rae_fsformat::crc::crc32c;
use rae_fsformat::dirent::DirBlock;
use rae_fsformat::journal::{self, TxnTag};
use rae_fsformat::{DiskInode, Geometry, MountState, Superblock};
use rae_vfs::{FileType, InodeNo};
use std::collections::BTreeMap;

fn arb_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9._-]{1,24}").expect("regex")
}

fn arb_ftype() -> impl Strategy<Value = FileType> {
    prop_oneof![
        Just(FileType::Regular),
        Just(FileType::Directory),
        Just(FileType::Symlink),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// A DirBlock under random insert/remove churn agrees with a
    /// BTreeMap model and survives encode/decode at every step.
    #[test]
    fn dirblock_behaves_like_a_map(
        ops in proptest::collection::vec(
            (arb_name(), any::<bool>(), 2u32..1000, arb_ftype()),
            1..120,
        )
    ) {
        let mut db = DirBlock::empty();
        let mut model: BTreeMap<String, (InodeNo, FileType)> = BTreeMap::new();
        for (name, insert, ino, ftype) in ops {
            if insert {
                match db.try_insert(&name, InodeNo(ino), ftype) {
                    Ok(true) => { model.insert(name.clone(), (InodeNo(ino), ftype)); }
                    Ok(false) => { /* block full: model unchanged */ }
                    Err(rae_vfs::FsError::Exists) => {
                        prop_assert!(model.contains_key(&name));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            } else {
                let removed = db.remove(&name);
                prop_assert_eq!(removed, model.remove(&name).is_some());
            }
            // full agreement after every step
            let got: BTreeMap<String, (InodeNo, FileType)> = db
                .records()
                .map(|r| (r.name, (r.ino, r.ftype)))
                .collect();
            prop_assert_eq!(&got, &model);
            // and the block must re-validate from raw bytes
            let db2 = DirBlock::from_bytes(db.clone().into_bytes());
            prop_assert!(db2.is_ok());
        }
    }

    /// Bitmap under random set/clear agrees with a model set, and
    /// store/load through a device round-trips.
    #[test]
    fn bitmap_matches_model(
        nbits in 1u64..40_000,
        ops in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..200),
    ) {
        let mut bm = Bitmap::new(nbits);
        let mut model = std::collections::HashSet::new();
        for (raw, set) in ops {
            let i = raw % nbits;
            if set {
                let prev = bm.set(i).unwrap();
                prop_assert_eq!(prev, !model.insert(i));
            } else {
                let prev = bm.clear(i).unwrap();
                prop_assert_eq!(prev, model.remove(&i));
            }
        }
        prop_assert_eq!(bm.count_set(), model.len() as u64);

        let dev = MemDisk::new(bm.nblocks().max(1));
        bm.store(&dev, 0).unwrap();
        let loaded = Bitmap::load(&dev, 0, bm.nblocks(), nbits).unwrap();
        prop_assert_eq!(loaded, bm);
    }

    /// find_free_from always returns a clear bit, or None iff full.
    #[test]
    fn bitmap_find_free_correct(nbits in 1u64..5000, seeds in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut bm = Bitmap::new(nbits);
        for s in &seeds {
            bm.set(s % nbits).unwrap();
        }
        match bm.find_free_from(seeds.first().copied().unwrap_or(0) % nbits) {
            Some(i) => prop_assert!(!bm.test(i).unwrap()),
            None => prop_assert_eq!(bm.count_set(), nbits),
        }
    }

    /// Inode encode/decode round-trips for arbitrary field values, and
    /// any single-byte mutation of the encoded form is rejected (or
    /// decodes to the identical inode — impossible with a CRC).
    #[test]
    fn inode_roundtrip_and_tamper_detection(
        ftype in arb_ftype(),
        links in 1u16..1000,
        size in 0u64..1_000_000_000,
        times in any::<(u32, u32, u32)>(),
        gen in any::<u32>(),
        ptr_seed in any::<u64>(),
        tamper_at in 0usize..164,
    ) {
        let mut ino = DiskInode::new(ftype, u64::from(times.0));
        ino.links = links;
        ino.size = size;
        ino.mtime = u64::from(times.1);
        ino.ctime = u64::from(times.2);
        ino.generation = gen;
        for (k, d) in ino.direct.iter_mut().enumerate() {
            *d = (ptr_seed.wrapping_mul(k as u64 + 1)) % 4096;
        }
        let buf = ino.encode();
        prop_assert_eq!(DiskInode::decode(&buf).unwrap(), Some(ino));

        let mut tampered = buf;
        tampered[tamper_at] ^= 0x5A;
        // either rejected, or it decoded the all-zero free pattern
        // (impossible here since links >= 1 ⇒ buf is non-zero)
        prop_assert!(DiskInode::decode(&tampered).is_err());
    }

    /// Superblock round-trips for arbitrary valid geometries and
    /// rejects every single-byte mutation of its encoded region.
    #[test]
    fn superblock_roundtrip_and_tamper_detection(
        total in 512u64..100_000,
        inodes in 16u32..5000,
        journal in 2u64..64,
        free_scale in 0u32..100,
        tamper_at in 0usize..128,
    ) {
        let Ok(geo) = Geometry::compute(total, inodes, journal) else {
            return Ok(()); // degenerate parameter combination
        };
        let mut sb = Superblock::new(geo);
        sb.free_inodes = (geo.inode_count - 2) * free_scale.min(100) / 100;
        sb.free_blocks = geo.data_blocks * u64::from(free_scale.min(100)) / 100;
        sb.mount_state = if free_scale % 2 == 0 { MountState::Clean } else { MountState::Dirty };
        sb.mount_count = free_scale;

        let buf = sb.encode();
        prop_assert_eq!(Superblock::decode(&buf).unwrap(), sb);

        let mut tampered = buf;
        tampered[tamper_at] ^= 0xA5;
        prop_assert!(Superblock::decode(&tampered).is_err());
    }

    /// Journal replay applies exactly the committed prefix: whatever
    /// suffix of the record stream is cut off (simulating a crash
    /// mid-commit), the applied transactions are a prefix of the
    /// committed ones and the final image reflects exactly them.
    #[test]
    fn journal_replay_applies_exactly_the_surviving_prefix(
        txn_sizes in proptest::collection::vec(1usize..4, 1..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let geo = Geometry::compute(4096, 256, 64).unwrap();
        let dev = MemDisk::new(4096);
        rae_fsformat::mkfs(&dev, rae_fsformat::MkfsParams {
            total_blocks: 4096, inode_count: 256, journal_blocks: 64,
        }).unwrap();
        journal::reset(&dev, &geo, 0).unwrap();

        // hand-write transactions; target block data_start+t gets fill t+1
        let mut cursor = geo.journal_start + 1;
        let mut txn_ends = Vec::new(); // (end_block_exclusive, txn_index)
        for (t, &size) in txn_sizes.iter().enumerate() {
            let tags: Vec<TxnTag> = (0..size)
                .map(|k| TxnTag {
                    target: geo.data_start + (t * 4 + k) as u64,
                    crc: crc32c(&vec![(t + 1) as u8; BLOCK_SIZE]),
                })
                .collect();
            dev.write_block(cursor, &journal::encode_descriptor(t as u64, &tags)).unwrap();
            for k in 0..size {
                dev.write_block(cursor + 1 + k as u64, &vec![(t + 1) as u8; BLOCK_SIZE]).unwrap();
            }
            dev.write_block(cursor + 1 + size as u64, &journal::encode_commit(t as u64)).unwrap();
            cursor += size as u64 + 2;
            txn_ends.push(cursor);
        }

        // cut: zero every journal block from the cut point on
        let first = geo.journal_start + 1;
        let span = cursor - first;
        let cut_at = first + ((span as f64) * cut_fraction) as u64;
        for b in cut_at..cursor {
            dev.write_block(b, &vec![0u8; BLOCK_SIZE]).unwrap();
        }

        let surviving = txn_ends.iter().filter(|&&e| e <= cut_at).count();
        let report = journal::replay(&dev, &geo).unwrap();
        prop_assert_eq!(report.transactions, surviving as u64,
            "cut_at={} ends={:?}", cut_at, txn_ends);

        // the data region reflects exactly the surviving transactions
        for (t, &size) in txn_sizes.iter().enumerate() {
            for k in 0..size {
                let mut buf = vec![0u8; BLOCK_SIZE];
                dev.read_block(geo.data_start + (t * 4 + k) as u64, &mut buf).unwrap();
                let expected = if t < surviving { (t + 1) as u8 } else { 0 };
                prop_assert_eq!(buf[0], expected, "txn {} block {}", t, k);
            }
        }
    }
}
