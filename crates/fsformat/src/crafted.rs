//! Crafted (adversarially corrupted) image construction.
//!
//! §2.1 of the paper: "a user mounts a crafted disk image and issues
//! operations to trigger a null-pointer dereference or use-after-free in
//! the kernel; such images can bypass FSCK". This module produces that
//! attack corpus for our format: targeted corruptions, some with *valid
//! checksums* (semantic lies that a checksum cannot catch), applied to
//! otherwise-valid images. Experiment E7 feeds them to an unchecked
//! mount path and to the shadow's validated load.

use crate::bitmap::Bitmap;
use crate::crc::crc32c_excluding;
use crate::inode::{read_inode, write_inode, INODE_SIZE};
use crate::superblock::Superblock;
use crate::wire::{get_u16, put_u16, put_u32, put_u64};
use rae_blockdev::{BlockDevice, BLOCK_SIZE};
use rae_vfs::{FsError, FsResult, InodeNo, ROOT_INO};

/// A targeted corruption to apply to a valid image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// Smash the superblock magic (detected by any validating reader).
    SuperblockMagic,
    /// Rewrite the superblock with an inconsistent region layout but a
    /// *valid checksum* — only semantic validation catches it.
    SuperblockGeometryLie,
    /// Overstate the free-block counter, checksum fixed.
    SuperblockFreeCountLie,
    /// Flip a byte inside an inode record (checksum breaks).
    InodeBitrot {
        /// Target inode.
        ino: InodeNo,
    },
    /// Re-encode an inode with a block pointer aimed at the metadata
    /// region (valid checksum; a naive filesystem would scribble over
    /// its own bitmaps when writing through it).
    InodePointerIntoMetadata {
        /// Target inode.
        ino: InodeNo,
    },
    /// Re-encode an inode claiming an enormous size (valid checksum; a
    /// naive reader allocates or loops on it).
    InodeSizeLie {
        /// Target inode.
        ino: InodeNo,
        /// The claimed size.
        size: u64,
    },
    /// Re-encode an inode with link count zero (valid checksum).
    InodeZeroLinks {
        /// Target inode.
        ino: InodeNo,
    },
    /// Corrupt a directory block's record chain (`rec_len` walks off the
    /// block — the classic out-of-bounds-index trigger).
    DirentRecLenOverflow {
        /// The directory data block to corrupt.
        bno: u64,
    },
    /// Point a directory entry at an out-of-range inode number.
    DirentDanglingTarget {
        /// The directory data block to corrupt.
        bno: u64,
        /// Bogus inode number to write.
        target: u32,
    },
    /// Clear the data-bitmap bit of an in-use block (lets an allocator
    /// hand the block out twice — silent cross-link corruption later).
    BitmapClearInUse {
        /// Data-region index of the block.
        index: u64,
    },
}

impl Corruption {
    /// Short stable identifier used in experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Corruption::SuperblockMagic => "sb-magic",
            Corruption::SuperblockGeometryLie => "sb-geometry-lie",
            Corruption::SuperblockFreeCountLie => "sb-freecount-lie",
            Corruption::InodeBitrot { .. } => "inode-bitrot",
            Corruption::InodePointerIntoMetadata { .. } => "inode-ptr-metadata",
            Corruption::InodeSizeLie { .. } => "inode-size-lie",
            Corruption::InodeZeroLinks { .. } => "inode-zero-links",
            Corruption::DirentRecLenOverflow { .. } => "dirent-reclen-overflow",
            Corruption::DirentDanglingTarget { .. } => "dirent-dangling",
            Corruption::BitmapClearInUse { .. } => "bitmap-clear-inuse",
        }
    }
}

/// Apply one corruption to the image on `dev`.
///
/// # Errors
///
/// Device errors; [`FsError::InvalidArgument`] when the target named by
/// the corruption does not exist on this image (e.g. a free inode).
pub fn apply_corruption<D: BlockDevice + ?Sized>(dev: &D, c: &Corruption) -> FsResult<()> {
    match c {
        Corruption::SuperblockMagic => {
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(0, &mut buf)?;
            buf[0] ^= 0xFF;
            dev.write_block(0, &buf)
        }
        Corruption::SuperblockGeometryLie => {
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(0, &mut buf)?;
            // data_start is at offset 88 (see superblock.rs layout)
            let lied = crate::wire::get_u64(&buf, 88) + 1;
            put_u64(&mut buf, 88, lied);
            let crc = crc32c_excluding(&buf[..128], 124);
            put_u32(&mut buf, 124, crc);
            dev.write_block(0, &buf)
        }
        Corruption::SuperblockFreeCountLie => {
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(0, &mut buf)?;
            let total = crate::wire::get_u64(&buf, 96); // data_blocks
            put_u64(&mut buf, 108, total + 100); // free_blocks
            let crc = crc32c_excluding(&buf[..128], 124);
            put_u32(&mut buf, 124, crc);
            dev.write_block(0, &buf)
        }
        Corruption::InodeBitrot { ino } => {
            let sb = Superblock::read_from(dev)?;
            let (bno, off) = sb.geometry.inode_location(*ino)?;
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(bno, &mut buf)?;
            if buf[off..off + INODE_SIZE].iter().all(|&b| b == 0) {
                return Err(FsError::InvalidArgument);
            }
            buf[off + 8] ^= 0x40; // inside the size field
            dev.write_block(bno, &buf)
        }
        Corruption::InodePointerIntoMetadata { ino } => {
            let sb = Superblock::read_from(dev)?;
            let mut inode = read_inode(dev, &sb.geometry, *ino)?.ok_or(FsError::InvalidArgument)?;
            inode.direct[0] = sb.geometry.inode_bitmap_start; // metadata!
            if inode.blocks == 0 {
                inode.blocks = 1;
            }
            if inode.size == 0 {
                inode.size = 10;
            }
            write_inode(dev, &sb.geometry, *ino, Some(&inode))
        }
        Corruption::InodeSizeLie { ino, size } => {
            let sb = Superblock::read_from(dev)?;
            let mut inode = read_inode(dev, &sb.geometry, *ino)?.ok_or(FsError::InvalidArgument)?;
            inode.size = *size;
            write_inode(dev, &sb.geometry, *ino, Some(&inode))
        }
        Corruption::InodeZeroLinks { ino } => {
            let sb = Superblock::read_from(dev)?;
            let mut inode = read_inode(dev, &sb.geometry, *ino)?.ok_or(FsError::InvalidArgument)?;
            inode.links = 0;
            write_inode(dev, &sb.geometry, *ino, Some(&inode))
        }
        Corruption::DirentRecLenOverflow { bno } => {
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(*bno, &mut buf)?;
            // stretch the first record past the block end
            let cur = get_u16(&buf, 4);
            put_u16(&mut buf, 4, cur.wrapping_add(BLOCK_SIZE as u16));
            dev.write_block(*bno, &buf)
        }
        Corruption::DirentDanglingTarget { bno, target } => {
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(*bno, &mut buf)?;
            // first used record's ino field; if the first record is
            // free, walk to a used one
            let mut off = 0usize;
            loop {
                if off + 8 > BLOCK_SIZE {
                    return Err(FsError::InvalidArgument);
                }
                let ino = crate::wire::get_u32(&buf, off);
                let rec_len = get_u16(&buf, off + 4) as usize;
                if ino != 0 {
                    put_u32(&mut buf, off, *target);
                    break;
                }
                if rec_len == 0 {
                    return Err(FsError::InvalidArgument);
                }
                off += rec_len;
            }
            dev.write_block(*bno, &buf)
        }
        Corruption::BitmapClearInUse { index } => {
            let sb = Superblock::read_from(dev)?;
            let g = sb.geometry;
            let mut dbm = Bitmap::load(
                dev,
                g.data_bitmap_start,
                g.data_bitmap_blocks,
                g.data_blocks,
            )?;
            if !dbm.clear(*index)? {
                return Err(FsError::InvalidArgument);
            }
            dbm.store(dev, g.data_bitmap_start)
        }
    }
}

/// A named crafted-image case for the E7 corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CraftedCase {
    /// Stable case name.
    pub name: &'static str,
    /// The corruption to apply.
    pub corruption: Corruption,
}

/// Marker type grouping the crafted-image helpers (for discoverability
/// via `rae_fsformat::CraftedImage::standard_corpus`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CraftedImage;

impl CraftedImage {
    /// The standard corpus of crafted-image cases for an image that has
    /// at least the root directory populated with one entry (so that a
    /// directory data block and inode 2 exist).
    ///
    /// # Errors
    ///
    /// Device errors, or [`FsError::InvalidArgument`] if the image lacks
    /// the expected minimal population.
    pub fn standard_corpus<D: BlockDevice + ?Sized>(dev: &D) -> FsResult<Vec<CraftedCase>> {
        let sb = Superblock::read_from(dev)?;
        let root = read_inode(dev, &sb.geometry, ROOT_INO)?.ok_or(FsError::InvalidArgument)?;
        let root_block = root.direct[0];
        if root_block == 0 {
            return Err(FsError::InvalidArgument);
        }
        Ok(vec![
            CraftedCase {
                name: "sb-magic",
                corruption: Corruption::SuperblockMagic,
            },
            CraftedCase {
                name: "sb-geometry-lie",
                corruption: Corruption::SuperblockGeometryLie,
            },
            CraftedCase {
                name: "sb-freecount-lie",
                corruption: Corruption::SuperblockFreeCountLie,
            },
            CraftedCase {
                name: "inode-bitrot",
                corruption: Corruption::InodeBitrot { ino: InodeNo(2) },
            },
            CraftedCase {
                name: "inode-ptr-metadata",
                corruption: Corruption::InodePointerIntoMetadata { ino: InodeNo(2) },
            },
            CraftedCase {
                name: "inode-size-lie",
                corruption: Corruption::InodeSizeLie {
                    ino: InodeNo(2),
                    size: 1 << 40,
                },
            },
            CraftedCase {
                name: "inode-zero-links",
                corruption: Corruption::InodeZeroLinks { ino: InodeNo(2) },
            },
            CraftedCase {
                name: "dirent-reclen-overflow",
                corruption: Corruption::DirentRecLenOverflow { bno: root_block },
            },
            CraftedCase {
                name: "dirent-dangling",
                corruption: Corruption::DirentDanglingTarget {
                    bno: root_block,
                    target: 0xFFFF,
                },
            },
            CraftedCase {
                name: "bitmap-clear-inuse",
                corruption: Corruption::BitmapClearInUse {
                    index: sb.geometry.data_index(root_block)?,
                },
            },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirent::DirBlock;
    use crate::fsck::fsck;
    use crate::inode::DiskInode;
    use crate::mkfs::{mkfs, MkfsParams};
    use rae_blockdev::MemDisk;
    use rae_vfs::FileType;

    /// mkfs + add one file "/f" so every corpus target exists.
    fn populated() -> MemDisk {
        let dev = MemDisk::new(4096);
        let geo = mkfs(&dev, MkfsParams::default()).unwrap();

        let file_ino = InodeNo(2);
        let root_block = geo.data_start;

        let mut root = read_inode(&dev, &geo, ROOT_INO).unwrap().unwrap();
        root.size = BLOCK_SIZE as u64;
        root.direct[0] = root_block;
        root.blocks = 1;
        write_inode(&dev, &geo, ROOT_INO, Some(&root)).unwrap();

        let mut db = DirBlock::empty();
        db.try_insert("f", file_ino, FileType::Regular).unwrap();
        dev.write_block(root_block, db.as_bytes()).unwrap();

        let file = DiskInode::new(FileType::Regular, 0);
        write_inode(&dev, &geo, file_ino, Some(&file)).unwrap();

        let mut ibm = Bitmap::load(
            &dev,
            geo.inode_bitmap_start,
            geo.inode_bitmap_blocks,
            u64::from(geo.inode_count),
        )
        .unwrap();
        ibm.set(2).unwrap();
        ibm.store(&dev, geo.inode_bitmap_start).unwrap();
        let mut dbm = Bitmap::load(
            &dev,
            geo.data_bitmap_start,
            geo.data_bitmap_blocks,
            geo.data_blocks,
        )
        .unwrap();
        dbm.set(0).unwrap();
        dbm.store(&dev, geo.data_bitmap_start).unwrap();

        let mut sb = Superblock::read_from(&dev).unwrap();
        sb.free_inodes -= 1;
        sb.free_blocks -= 1;
        sb.write_to(&dev).unwrap();
        dev
    }

    #[test]
    fn baseline_image_is_clean() {
        let dev = populated();
        assert!(fsck(&dev).unwrap().is_clean());
    }

    #[test]
    fn every_corpus_case_applies_and_is_caught_by_fsck() {
        let baseline = populated();
        let corpus = CraftedImage::standard_corpus(&baseline).unwrap();
        assert_eq!(corpus.len(), 10);

        for case in corpus {
            let dev = MemDisk::from_image(&baseline.snapshot());
            apply_corruption(&dev, &case.corruption)
                .unwrap_or_else(|e| panic!("{} failed to apply: {e}", case.name));
            let report = fsck(&dev).unwrap();
            assert!(
                !report.is_clean(),
                "{}: corruption survived fsck undetected",
                case.name
            );
        }
    }

    #[test]
    fn geometry_lie_keeps_valid_checksum() {
        let dev = populated();
        apply_corruption(&dev, &Corruption::SuperblockGeometryLie).unwrap();
        // raw checksum still verifies...
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(0, &mut buf).unwrap();
        let crc = crate::wire::get_u32(&buf, 124);
        assert_eq!(crc, crc32c_excluding(&buf[..128], 124));
        // ...but semantic validation rejects it
        assert!(Superblock::decode(&buf).is_err());
    }

    #[test]
    fn corruption_targets_must_exist() {
        let dev = MemDisk::new(4096);
        mkfs(&dev, MkfsParams::default()).unwrap();
        // inode 5 is free: semantic corruptions on it are invalid
        assert_eq!(
            apply_corruption(&dev, &Corruption::InodeZeroLinks { ino: InodeNo(5) }),
            Err(FsError::InvalidArgument)
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Corruption::SuperblockMagic.name(), "sb-magic");
        assert_eq!(
            Corruption::InodeSizeLie {
                ino: InodeNo(2),
                size: 0
            }
            .name(),
            "inode-size-lie"
        );
    }
}
