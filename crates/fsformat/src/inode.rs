//! On-disk inodes: 256-byte records, 16 per inode-table block.

use crate::crc::crc32c_excluding;
use crate::layout::Geometry;
use crate::wire::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use rae_blockdev::{BlockDevice, BLOCK_SIZE};
use rae_vfs::{FileType, FsError, FsResult, InodeNo};

/// Encoded inode size in bytes.
pub const INODE_SIZE: usize = 256;

/// Inodes per inode-table block.
pub const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;

/// Number of direct block pointers per inode.
pub const NDIRECT: usize = 12;

/// Block pointers per indirect block (u64 entries).
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 8;

/// Maximum file size supported by the pointer scheme, in bytes.
#[must_use]
pub fn max_file_size() -> u64 {
    ((NDIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK) as u64) * BLOCK_SIZE as u64
}

const OFF_MODE: usize = 0;
const OFF_LINKS: usize = 2;
const OFF_FLAGS: usize = 4;
const OFF_SIZE: usize = 8;
const OFF_ATIME: usize = 16;
const OFF_MTIME: usize = 24;
const OFF_CTIME: usize = 32;
const OFF_GEN: usize = 40;
const OFF_BLOCKS: usize = 44;
const OFF_DIRECT: usize = 48;
const OFF_INDIRECT: usize = 144;
const OFF_DINDIRECT: usize = 152;
const OFF_CRC: usize = 160;
const ENCODED_LEN: usize = 164;

/// A decoded on-disk inode.
///
/// A *free* inode slot is all-zero on disk and is represented as
/// `None` by [`DiskInode::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskInode {
    /// File type.
    pub ftype: FileType,
    /// Hard link count (for directories: 2 + number of subdirectories).
    pub links: u16,
    /// Feature flags (must currently be zero).
    pub flags: u32,
    /// File size in bytes. May exceed `blocks * 4096` (sparse files:
    /// null pointers inside the size range read as zeroes).
    pub size: u64,
    /// Access time (logical clock).
    pub atime: u64,
    /// Modification time (logical clock).
    pub mtime: u64,
    /// Change time (logical clock).
    pub ctime: u64,
    /// Generation number, bumped on each reuse of the inode number.
    pub generation: u32,
    /// Allocated data blocks (including indirect blocks themselves).
    pub blocks: u32,
    /// Direct block pointers (0 = hole / unallocated).
    pub direct: [u64; NDIRECT],
    /// Single-indirect block pointer (0 = none).
    pub indirect: u64,
    /// Double-indirect block pointer (0 = none).
    pub dindirect: u64,
}

impl DiskInode {
    /// A fresh inode of the given type with link count 1 (2 for
    /// directories, counting the implicit self-reference).
    #[must_use]
    pub fn new(ftype: FileType, now: u64) -> DiskInode {
        DiskInode {
            ftype,
            links: if ftype == FileType::Directory { 2 } else { 1 },
            flags: 0,
            size: 0,
            atime: now,
            mtime: now,
            ctime: now,
            generation: 0,
            blocks: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
        }
    }

    /// Encode into a 256-byte record.
    #[must_use]
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut buf = [0u8; INODE_SIZE];
        let mode = u16::from(self.ftype.as_u8()) << 12;
        put_u16(&mut buf, OFF_MODE, mode);
        put_u16(&mut buf, OFF_LINKS, self.links);
        put_u32(&mut buf, OFF_FLAGS, self.flags);
        put_u64(&mut buf, OFF_SIZE, self.size);
        put_u64(&mut buf, OFF_ATIME, self.atime);
        put_u64(&mut buf, OFF_MTIME, self.mtime);
        put_u64(&mut buf, OFF_CTIME, self.ctime);
        put_u32(&mut buf, OFF_GEN, self.generation);
        put_u32(&mut buf, OFF_BLOCKS, self.blocks);
        for (i, &p) in self.direct.iter().enumerate() {
            put_u64(&mut buf, OFF_DIRECT + i * 8, p);
        }
        put_u64(&mut buf, OFF_INDIRECT, self.indirect);
        put_u64(&mut buf, OFF_DINDIRECT, self.dindirect);
        let crc = crc32c_excluding(&buf[..ENCODED_LEN], OFF_CRC);
        put_u32(&mut buf, OFF_CRC, crc);
        buf
    }

    /// Decode a 256-byte record; `None` for a free (all-zero) slot.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] on checksum mismatch, invalid mode,
    /// nonzero flags, or nonzero padding.
    pub fn decode(buf: &[u8]) -> FsResult<Option<DiskInode>> {
        if buf.len() != INODE_SIZE {
            return Err(corrupt("inode record has wrong length"));
        }
        if buf.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        if buf[ENCODED_LEN..].iter().any(|&b| b != 0) {
            return Err(corrupt("nonzero padding in inode record"));
        }
        let stored_crc = get_u32(buf, OFF_CRC);
        let computed = crc32c_excluding(&buf[..ENCODED_LEN], OFF_CRC);
        if stored_crc != computed {
            return Err(corrupt("inode checksum mismatch"));
        }
        let mode = get_u16(buf, OFF_MODE);
        if mode & 0x0FFF != 0 {
            return Err(corrupt("unsupported mode bits"));
        }
        let ftype = FileType::from_u8((mode >> 12) as u8)
            .ok_or_else(|| corrupt("invalid file type in mode"))?;
        let flags = get_u32(buf, OFF_FLAGS);
        if flags != 0 {
            return Err(corrupt("unknown inode flags"));
        }
        let mut direct = [0u64; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = get_u64(buf, OFF_DIRECT + i * 8);
        }
        Ok(Some(DiskInode {
            ftype,
            links: get_u16(buf, OFF_LINKS),
            flags,
            size: get_u64(buf, OFF_SIZE),
            atime: get_u64(buf, OFF_ATIME),
            mtime: get_u64(buf, OFF_MTIME),
            ctime: get_u64(buf, OFF_CTIME),
            generation: get_u32(buf, OFF_GEN),
            blocks: get_u32(buf, OFF_BLOCKS),
            direct,
            indirect: get_u64(buf, OFF_INDIRECT),
            dindirect: get_u64(buf, OFF_DINDIRECT),
        }))
    }

    /// Structural validation against the filesystem geometry: pointer
    /// ranges, size limits, link-count sanity. (Cross-structure checks —
    /// bitmap consistency, double use — are `fsck`'s job.)
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] describing the first violated property.
    pub fn validate(&self, geo: &Geometry) -> FsResult<()> {
        if self.links == 0 {
            return Err(corrupt("allocated inode has zero link count"));
        }
        if self.size > max_file_size() {
            return Err(corrupt("size exceeds format maximum"));
        }
        if self.ftype == FileType::Symlink && self.size > BLOCK_SIZE as u64 {
            return Err(corrupt("symlink target longer than one block"));
        }
        for &p in self.direct.iter().chain([&self.indirect, &self.dindirect]) {
            if p != 0 && !geo.is_data_block(p) {
                return Err(corrupt("block pointer outside data region"));
            }
        }
        let max_possible =
            (NDIRECT + 1 + PTRS_PER_BLOCK + 1 + PTRS_PER_BLOCK * (PTRS_PER_BLOCK + 1)) as u64;
        if u64::from(self.blocks) > max_possible {
            return Err(corrupt("block count exceeds pointer capacity"));
        }
        Ok(())
    }
}

/// Where the pointer for file-block `idx` lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPtrLoc {
    /// `direct[slot]` in the inode itself.
    Direct(usize),
    /// Slot within the single-indirect block.
    Indirect {
        /// Pointer index inside the indirect block.
        slot: usize,
    },
    /// Two-level lookup through the double-indirect block.
    DoubleIndirect {
        /// Pointer index inside the double-indirect block (level 1).
        l1: usize,
        /// Pointer index inside the level-1 block (level 2).
        l2: usize,
    },
}

/// Map a file block index to its pointer location.
///
/// Both filesystems use this single definition, so their on-disk block
/// mapping can never diverge.
///
/// # Errors
///
/// [`FsError::FileTooBig`] past the addressing limit.
pub fn locate_block(idx: u64) -> FsResult<BlockPtrLoc> {
    let idx = idx as usize;
    if idx < NDIRECT {
        return Ok(BlockPtrLoc::Direct(idx));
    }
    let idx = idx - NDIRECT;
    if idx < PTRS_PER_BLOCK {
        return Ok(BlockPtrLoc::Indirect { slot: idx });
    }
    let idx = idx - PTRS_PER_BLOCK;
    if idx < PTRS_PER_BLOCK * PTRS_PER_BLOCK {
        return Ok(BlockPtrLoc::DoubleIndirect {
            l1: idx / PTRS_PER_BLOCK,
            l2: idx % PTRS_PER_BLOCK,
        });
    }
    Err(FsError::FileTooBig)
}

/// Read inode `ino` from the inode table of `dev`.
///
/// # Errors
///
/// Device errors, range errors, or decode failures.
pub fn read_inode<D: BlockDevice + ?Sized>(
    dev: &D,
    geo: &Geometry,
    ino: InodeNo,
) -> FsResult<Option<DiskInode>> {
    let (bno, off) = geo.inode_location(ino)?;
    let mut buf = vec![0u8; BLOCK_SIZE];
    dev.read_block(bno, &mut buf)?;
    DiskInode::decode(&buf[off..off + INODE_SIZE]).map_err(|e| annotate(e, ino))
}

/// Write inode `ino` (or `None` to free the slot) into the inode table
/// of `dev` via read-modify-write.
///
/// # Errors
///
/// Device errors or range errors.
pub fn write_inode<D: BlockDevice + ?Sized>(
    dev: &D,
    geo: &Geometry,
    ino: InodeNo,
    inode: Option<&DiskInode>,
) -> FsResult<()> {
    let (bno, off) = geo.inode_location(ino)?;
    let mut buf = vec![0u8; BLOCK_SIZE];
    dev.read_block(bno, &mut buf)?;
    match inode {
        Some(i) => buf[off..off + INODE_SIZE].copy_from_slice(&i.encode()),
        None => buf[off..off + INODE_SIZE].fill(0),
    }
    dev.write_block(bno, &buf)
}

fn corrupt(msg: &str) -> FsError {
    FsError::Corrupted {
        detail: format!("inode: {msg}"),
    }
}

fn annotate(e: FsError, ino: InodeNo) -> FsError {
    match e {
        FsError::Corrupted { detail } => FsError::Corrupted {
            detail: format!("{detail} ({ino})"),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::compute(4096, 1024, 256).unwrap()
    }

    #[test]
    fn sixteen_inodes_per_block() {
        assert_eq!(INODES_PER_BLOCK, 16);
        assert_eq!(PTRS_PER_BLOCK, 512);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut ino = DiskInode::new(FileType::Regular, 42);
        ino.size = 123_456;
        ino.direct[0] = geo().data_start;
        ino.direct[11] = geo().data_start + 7;
        ino.indirect = geo().data_start + 8;
        ino.blocks = 3;
        ino.generation = 9;
        let buf = ino.encode();
        assert_eq!(DiskInode::decode(&buf).unwrap(), Some(ino));
    }

    #[test]
    fn free_slot_decodes_to_none() {
        assert_eq!(DiskInode::decode(&[0u8; INODE_SIZE]).unwrap(), None);
    }

    #[test]
    fn bit_flips_detected() {
        let ino = DiskInode::new(FileType::Directory, 1);
        let clean = ino.encode();
        for byte in [0, 9, 50, 150, 161] {
            let mut buf = clean;
            buf[byte] ^= 0x10;
            assert!(
                DiskInode::decode(&buf).is_err(),
                "flip at byte {byte} survived"
            );
        }
    }

    #[test]
    fn nonzero_padding_rejected() {
        let mut buf = DiskInode::new(FileType::Regular, 0).encode();
        buf[200] = 1;
        assert!(DiskInode::decode(&buf).is_err());
    }

    #[test]
    fn validate_catches_bad_pointers() {
        let g = geo();
        let mut ino = DiskInode::new(FileType::Regular, 0);
        ino.direct[3] = 5; // inside metadata region
        assert!(ino.validate(&g).is_err());
        ino.direct[3] = g.total_blocks; // past the device
        assert!(ino.validate(&g).is_err());
        ino.direct[3] = g.data_start;
        assert!(ino.validate(&g).is_ok());
    }

    #[test]
    fn validate_catches_zero_links_and_giant_sizes() {
        let g = geo();
        let mut ino = DiskInode::new(FileType::Regular, 0);
        ino.links = 0;
        assert!(ino.validate(&g).is_err());
        ino.links = 1;
        ino.size = max_file_size() + 1;
        assert!(ino.validate(&g).is_err());
    }

    #[test]
    fn validate_limits_symlink_size() {
        let g = geo();
        let mut ino = DiskInode::new(FileType::Symlink, 0);
        ino.size = BLOCK_SIZE as u64 + 1;
        assert!(ino.validate(&g).is_err());
        ino.size = 100;
        assert!(ino.validate(&g).is_ok());
    }

    #[test]
    fn locate_block_tiers() {
        assert_eq!(locate_block(0).unwrap(), BlockPtrLoc::Direct(0));
        assert_eq!(locate_block(11).unwrap(), BlockPtrLoc::Direct(11));
        assert_eq!(locate_block(12).unwrap(), BlockPtrLoc::Indirect { slot: 0 });
        assert_eq!(
            locate_block(12 + 511).unwrap(),
            BlockPtrLoc::Indirect { slot: 511 }
        );
        assert_eq!(
            locate_block(12 + 512).unwrap(),
            BlockPtrLoc::DoubleIndirect { l1: 0, l2: 0 }
        );
        assert_eq!(
            locate_block(12 + 512 + 512 * 512 - 1).unwrap(),
            BlockPtrLoc::DoubleIndirect { l1: 511, l2: 511 }
        );
        assert_eq!(locate_block(12 + 512 + 512 * 512), Err(FsError::FileTooBig));
    }

    #[test]
    fn max_file_size_matches_locate_block_limit() {
        let max_blocks = max_file_size() / BLOCK_SIZE as u64;
        assert!(locate_block(max_blocks - 1).is_ok());
        assert!(locate_block(max_blocks).is_err());
    }

    #[test]
    fn device_read_write_roundtrip() {
        use rae_blockdev::MemDisk;
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        let ino_no = InodeNo(17);
        assert_eq!(read_inode(&dev, &g, ino_no).unwrap(), None);

        let mut ino = DiskInode::new(FileType::Regular, 5);
        ino.size = 999;
        write_inode(&dev, &g, ino_no, Some(&ino)).unwrap();
        assert_eq!(read_inode(&dev, &g, ino_no).unwrap(), Some(ino));

        // neighbours in the same table block must be untouched
        assert_eq!(read_inode(&dev, &g, InodeNo(16)).unwrap(), None);
        assert_eq!(read_inode(&dev, &g, InodeNo(18)).unwrap(), None);

        write_inode(&dev, &g, ino_no, None).unwrap();
        assert_eq!(read_inode(&dev, &g, ino_no).unwrap(), None);
    }

    #[test]
    fn new_directory_has_two_links() {
        assert_eq!(DiskInode::new(FileType::Directory, 0).links, 2);
        assert_eq!(DiskInode::new(FileType::Regular, 0).links, 1);
    }
}

#[cfg(test)]
mod spec_consistency {
    #[test]
    fn format_max_file_size_equals_spec_constant() {
        assert_eq!(super::max_file_size(), rae_vfs::MAX_FILE_SIZE);
    }
}
