//! The recovery hand-off payload ("metadata downloading", §3.2).
//!
//! After the shadow re-executes the recorded operation sequence, it
//! emits a [`RecoveryDelta`]: every reconstructed block image plus the
//! rebuilt descriptor table. The rebooted base absorbs the delta into
//! its caches, marked dirty, and resumes — without re-executing the
//! error-triggering sequence itself.

use rae_vfs::{Fd, InodeNo, OpenFlags};

/// One reconstructed open descriptor.
///
/// Descriptor numbers are preserved exactly (they are visible to the
/// application); the opening path is carried along because the base
/// tracks it for diagnostics and fault-trigger contexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredFd {
    /// The descriptor number the application already holds.
    pub fd: Fd,
    /// Inode the descriptor refers to.
    pub ino: InodeNo,
    /// Original open flags (access mode and append mode survive).
    pub flags: OpenFlags,
    /// Path the descriptor was opened with.
    pub path: String,
}

/// The full output of a shadow recovery, absorbed by the base.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryDelta {
    /// Reconstructed metadata block images (inode table, bitmaps,
    /// directory blocks, indirect blocks, superblock). Absorbed as
    /// dirty *metadata* pages: they reach the disk only via the
    /// journal.
    pub meta_blocks: Vec<(u64, Vec<u8>)>,
    /// Reconstructed file-content blocks. Absorbed as dirty *data*
    /// pages (write-back path).
    pub data_blocks: Vec<(u64, Vec<u8>)>,
    /// The rebuilt descriptor table.
    pub fd_entries: Vec<RecoveredFd>,
}

impl RecoveryDelta {
    /// Total number of block images in the delta.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.meta_blocks.len() + self.data_blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_sums_classes() {
        let delta = RecoveryDelta {
            meta_blocks: vec![(1, vec![0u8; 4096]), (2, vec![0u8; 4096])],
            data_blocks: vec![(9, vec![1u8; 4096])],
            fd_entries: vec![RecoveredFd {
                fd: Fd(3),
                ino: InodeNo(5),
                flags: OpenFlags::RDWR,
                path: "/f".into(),
            }],
        };
        assert_eq!(delta.block_count(), 3);
    }

    #[test]
    fn default_is_empty() {
        let delta = RecoveryDelta::default();
        assert_eq!(delta.block_count(), 0);
        assert!(delta.fd_entries.is_empty());
    }
}
