//! The full structural checker — the paper's "verified FSCK" analog.
//!
//! §4.3: "to ensure the shadow is robust against crashes given a crafted
//! filesystem image and call sequence, the input image must be
//! guaranteed to be valid, essentially requiring a verified version of
//! the filesystem checker." [`fsck`] is that checker: it never panics on
//! arbitrary bytes, and it validates every cross-structure invariant of
//! the format. The shadow runs it (at configurable depth) before
//! trusting an image; experiments E7 feed it the crafted-image corpus.

use crate::bitmap::Bitmap;
use crate::dirent::DirBlock;
use crate::inode::{read_inode, DiskInode, PTRS_PER_BLOCK};
use crate::layout::Geometry;
use crate::superblock::{MountState, Superblock};
use crate::wire::get_u64;
use rae_blockdev::{BlockDevice, BLOCK_SIZE};
use rae_vfs::{FileType, FsResult, InodeNo, ROOT_INO};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// One inconsistency found by [`fsck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckError {
    /// The superblock failed validation; no further checking possible.
    Superblock(String),
    /// An inode record failed decoding or structural validation.
    BadInode {
        /// The inode.
        ino: InodeNo,
        /// What failed.
        detail: String,
    },
    /// A directory block failed validation.
    BadDirent {
        /// The owning directory.
        dir: InodeNo,
        /// What failed.
        detail: String,
    },
    /// A directory entry points at an unallocated or out-of-range inode.
    DanglingEntry {
        /// The owning directory.
        dir: InodeNo,
        /// Entry name.
        name: String,
        /// The bogus target.
        target: InodeNo,
    },
    /// A directory entry's recorded type disagrees with the inode.
    TypeMismatch {
        /// The owning directory.
        dir: InodeNo,
        /// Entry name.
        name: String,
        /// The target inode.
        target: InodeNo,
    },
    /// A block is referenced by more than one owner.
    DoubleAlloc {
        /// The block.
        bno: u64,
        /// Two of its owners.
        owners: (InodeNo, InodeNo),
    },
    /// A directory is referenced by more than one entry (hard-linked
    /// directory) or a directory cycle exists.
    DirLoop {
        /// The multiply-referenced directory.
        ino: InodeNo,
    },
    /// Data bitmap disagrees with actual block usage.
    DataBitmapMismatch {
        /// The block.
        bno: u64,
        /// Bit state in the bitmap.
        marked: bool,
        /// Whether some inode actually uses it.
        used: bool,
    },
    /// Inode bitmap disagrees with the inode table.
    InodeBitmapMismatch {
        /// The inode.
        ino: InodeNo,
        /// Bit state in the bitmap.
        marked: bool,
        /// Whether the table slot is populated.
        used: bool,
    },
    /// An allocated inode is not reachable from the root.
    Unreachable {
        /// The orphan.
        ino: InodeNo,
    },
    /// An inode's recorded link count is wrong.
    LinkCount {
        /// The inode.
        ino: InodeNo,
        /// Count in the inode.
        recorded: u32,
        /// Count derived from the directory tree.
        actual: u32,
    },
    /// An inode's recorded block count is wrong.
    BlockCount {
        /// The inode.
        ino: InodeNo,
        /// Count in the inode.
        recorded: u32,
        /// Count derived from its pointers.
        actual: u32,
    },
    /// A directory's size field is not consistent with its blocks.
    DirSize {
        /// The directory.
        ino: InodeNo,
        /// Its size field.
        size: u64,
    },
    /// Superblock free counters disagree with the bitmaps.
    FreeCount {
        /// `"inodes"` or `"blocks"`.
        kind: &'static str,
        /// Superblock value.
        superblock: u64,
        /// Bitmap-derived value.
        actual: u64,
    },
    /// The root inode is missing or not a directory.
    BadRoot(String),
}

impl fmt::Display for FsckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsckError::Superblock(d) => write!(f, "superblock: {d}"),
            FsckError::BadInode { ino, detail } => write!(f, "{ino}: {detail}"),
            FsckError::BadDirent { dir, detail } => write!(f, "dir {dir}: {detail}"),
            FsckError::DanglingEntry { dir, name, target } => {
                write!(f, "dir {dir}: entry '{name}' -> unallocated {target}")
            }
            FsckError::TypeMismatch { dir, name, target } => {
                write!(f, "dir {dir}: entry '{name}' type disagrees with {target}")
            }
            FsckError::DoubleAlloc { bno, owners } => {
                write!(f, "block {bno} owned by both {} and {}", owners.0, owners.1)
            }
            FsckError::DirLoop { ino } => write!(f, "directory {ino} multiply referenced"),
            FsckError::DataBitmapMismatch { bno, marked, used } => write!(
                f,
                "data bitmap: block {bno} marked={marked} but used={used}"
            ),
            FsckError::InodeBitmapMismatch { ino, marked, used } => write!(
                f,
                "inode bitmap: {ino} marked={marked} but table populated={used}"
            ),
            FsckError::Unreachable { ino } => write!(f, "{ino} unreachable from root"),
            FsckError::LinkCount {
                ino,
                recorded,
                actual,
            } => {
                write!(f, "{ino}: link count {recorded}, tree says {actual}")
            }
            FsckError::BlockCount {
                ino,
                recorded,
                actual,
            } => {
                write!(f, "{ino}: block count {recorded}, pointers say {actual}")
            }
            FsckError::DirSize { ino, size } => {
                write!(f, "dir {ino}: size {size} not consistent with its blocks")
            }
            FsckError::FreeCount {
                kind,
                superblock,
                actual,
            } => {
                write!(
                    f,
                    "superblock free {kind} = {superblock}, bitmap says {actual}"
                )
            }
            FsckError::BadRoot(d) => write!(f, "root: {d}"),
        }
    }
}

/// The result of a check pass.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// All inconsistencies found, in discovery order.
    pub errors: Vec<FsckError>,
    /// Allocated inodes examined.
    pub inodes_checked: u64,
    /// Directory entries examined.
    pub entries_checked: u64,
    /// Data blocks accounted to owners.
    pub blocks_accounted: u64,
}

impl FsckReport {
    /// Whether the image is fully consistent.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "clean ({} inodes, {} entries, {} blocks)",
                self.inodes_checked, self.entries_checked, self.blocks_accounted
            )
        } else {
            writeln!(f, "{} error(s):", self.errors.len())?;
            for e in &self.errors {
                writeln!(f, "  {e}")?;
            }
            Ok(())
        }
    }
}

/// All blocks owned by an inode: data blocks plus the indirect blocks
/// themselves. Returns `(blocks, file_data_blocks)` where `blocks` is
/// everything charged to the inode's block count.
fn collect_blocks<D: BlockDevice + ?Sized>(
    dev: &D,
    geo: &Geometry,
    ino: InodeNo,
    inode: &DiskInode,
    errors: &mut Vec<FsckError>,
) -> FsResult<Vec<u64>> {
    let mut owned = Vec::new();
    let mut push = |bno: u64, errors: &mut Vec<FsckError>| {
        if bno == 0 {
            return;
        }
        if geo.is_data_block(bno) {
            owned.push(bno);
        } else {
            errors.push(FsckError::BadInode {
                ino,
                detail: format!("pointer to non-data block {bno}"),
            });
        }
    };

    for &p in &inode.direct {
        push(p, errors);
    }
    let mut buf = vec![0u8; BLOCK_SIZE];
    if inode.indirect != 0 {
        push(inode.indirect, errors);
        if geo.is_data_block(inode.indirect) {
            dev.read_block(inode.indirect, &mut buf)?;
            for s in 0..PTRS_PER_BLOCK {
                push(get_u64(&buf, s * 8), errors);
            }
        }
    }
    if inode.dindirect != 0 {
        push(inode.dindirect, errors);
        if geo.is_data_block(inode.dindirect) {
            dev.read_block(inode.dindirect, &mut buf)?;
            let l1: Vec<u64> = (0..PTRS_PER_BLOCK).map(|s| get_u64(&buf, s * 8)).collect();
            for l1p in l1 {
                push(l1p, errors);
                if l1p != 0 && geo.is_data_block(l1p) {
                    dev.read_block(l1p, &mut buf)?;
                    for s in 0..PTRS_PER_BLOCK {
                        push(get_u64(&buf, s * 8), errors);
                    }
                }
            }
        }
    }
    Ok(owned)
}

/// The ordered data blocks of a file within `0..size` (holes as 0).
fn file_blocks_in_order<D: BlockDevice + ?Sized>(
    dev: &D,
    geo: &Geometry,
    inode: &DiskInode,
) -> FsResult<Vec<u64>> {
    let nblocks = inode.size.div_ceil(BLOCK_SIZE as u64);
    let mut out = Vec::with_capacity(nblocks as usize);
    let mut buf = vec![0u8; BLOCK_SIZE];
    let mut ind: Option<(u64, Vec<u64>)> = None;
    let mut dind: Option<Vec<u64>> = None;

    for i in 0..nblocks {
        let loc = crate::inode::locate_block(i)?;
        let bno = match loc {
            crate::inode::BlockPtrLoc::Direct(s) => inode.direct[s],
            crate::inode::BlockPtrLoc::Indirect { slot } => {
                if inode.indirect == 0 || !geo.is_data_block(inode.indirect) {
                    0
                } else {
                    if ind.as_ref().map(|(b, _)| *b) != Some(inode.indirect) {
                        dev.read_block(inode.indirect, &mut buf)?;
                        let ptrs = (0..PTRS_PER_BLOCK).map(|s| get_u64(&buf, s * 8)).collect();
                        ind = Some((inode.indirect, ptrs));
                    }
                    ind.as_ref().expect("just populated").1[slot]
                }
            }
            crate::inode::BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                if inode.dindirect == 0 || !geo.is_data_block(inode.dindirect) {
                    0
                } else {
                    if dind.is_none() {
                        dev.read_block(inode.dindirect, &mut buf)?;
                        dind = Some((0..PTRS_PER_BLOCK).map(|s| get_u64(&buf, s * 8)).collect());
                    }
                    let l1p = dind.as_ref().expect("just populated")[l1];
                    if l1p == 0 || !geo.is_data_block(l1p) {
                        0
                    } else {
                        dev.read_block(l1p, &mut buf)?;
                        get_u64(&buf, l2 * 8)
                    }
                }
            }
        };
        out.push(bno);
    }
    Ok(out)
}

/// Run the full structural check over `dev`.
///
/// Never panics on arbitrary images; every defect is reported as an
/// [`FsckError`]. Read-only.
///
/// # Errors
///
/// Only device I/O failures; *format* problems are reported in the
/// [`FsckReport`], not as `Err`.
pub fn fsck<D: BlockDevice + ?Sized>(dev: &D) -> FsResult<FsckReport> {
    let mut report = FsckReport::default();

    // Phase 0: superblock.
    let sb = match Superblock::read_from(dev) {
        Ok(sb) => sb,
        Err(e) => {
            report.errors.push(FsckError::Superblock(e.to_string()));
            return Ok(report);
        }
    };
    let geo = sb.geometry;
    if geo.total_blocks > dev.block_count() {
        report.errors.push(FsckError::Superblock(format!(
            "filesystem claims {} blocks but device has {}",
            geo.total_blocks,
            dev.block_count()
        )));
        return Ok(report);
    }

    // Phase 1: bitmaps.
    let ibm = match Bitmap::load(
        dev,
        geo.inode_bitmap_start,
        geo.inode_bitmap_blocks,
        u64::from(geo.inode_count),
    ) {
        Ok(b) => b,
        Err(e) => {
            report
                .errors
                .push(FsckError::Superblock(format!("inode bitmap: {e}")));
            return Ok(report);
        }
    };
    let dbm = match Bitmap::load(
        dev,
        geo.data_bitmap_start,
        geo.data_bitmap_blocks,
        geo.data_blocks,
    ) {
        Ok(b) => b,
        Err(e) => {
            report
                .errors
                .push(FsckError::Superblock(format!("data bitmap: {e}")));
            return Ok(report);
        }
    };

    // Phase 2: inode table scan.
    let mut inodes: BTreeMap<InodeNo, DiskInode> = BTreeMap::new();
    for raw in 1..geo.inode_count {
        let ino = InodeNo(raw);
        match read_inode(dev, &geo, ino) {
            Ok(Some(inode)) => {
                if let Err(e) = inode.validate(&geo) {
                    report.errors.push(FsckError::BadInode {
                        ino,
                        detail: e.to_string(),
                    });
                } else {
                    inodes.insert(ino, inode);
                }
            }
            Ok(None) => {}
            Err(e) => report.errors.push(FsckError::BadInode {
                ino,
                detail: e.to_string(),
            }),
        }
    }
    report.inodes_checked = inodes.len() as u64;

    // Phase 3: inode bitmap vs table.
    for raw in 1..geo.inode_count {
        let ino = InodeNo(raw);
        let marked = ibm.test(u64::from(raw)).unwrap_or(false);
        let used = inodes.contains_key(&ino);
        if marked != used {
            report
                .errors
                .push(FsckError::InodeBitmapMismatch { ino, marked, used });
        }
    }

    // Phase 4: root.
    match inodes.get(&ROOT_INO) {
        Some(i) if i.ftype == FileType::Directory => {}
        Some(_) => report
            .errors
            .push(FsckError::BadRoot("not a directory".into())),
        None => {
            report.errors.push(FsckError::BadRoot("missing".into()));
            return Ok(report);
        }
    }

    // Phase 5: directory tree walk from the root.
    let mut name_refs: BTreeMap<InodeNo, u32> = BTreeMap::new(); // dirent references
    let mut subdirs: BTreeMap<InodeNo, u32> = BTreeMap::new(); // child dirs per dir
    let mut visited: BTreeSet<InodeNo> = BTreeSet::new();
    let mut queue = VecDeque::from([ROOT_INO]);
    visited.insert(ROOT_INO);

    while let Some(dir) = queue.pop_front() {
        let inode = inodes[&dir];
        if !inode.size.is_multiple_of(BLOCK_SIZE as u64) {
            report.errors.push(FsckError::DirSize {
                ino: dir,
                size: inode.size,
            });
        }
        let blocks = match file_blocks_in_order(dev, &geo, &inode) {
            Ok(b) => b,
            Err(_) => {
                report.errors.push(FsckError::BadDirent {
                    dir,
                    detail: "unreadable directory blocks".into(),
                });
                continue;
            }
        };
        for bno in blocks {
            if bno == 0 {
                report.errors.push(FsckError::DirSize {
                    ino: dir,
                    size: inode.size,
                });
                continue;
            }
            let mut buf = vec![0u8; BLOCK_SIZE];
            dev.read_block(bno, &mut buf)?;
            let db = match DirBlock::from_bytes(buf) {
                Ok(db) => db,
                Err(e) => {
                    report.errors.push(FsckError::BadDirent {
                        dir,
                        detail: e.to_string(),
                    });
                    continue;
                }
            };
            for rec in db.records() {
                report.entries_checked += 1;
                let target = rec.ino;
                let Some(child) = (if target.0 < geo.inode_count {
                    inodes.get(&target)
                } else {
                    None
                }) else {
                    report.errors.push(FsckError::DanglingEntry {
                        dir,
                        name: rec.name.clone(),
                        target,
                    });
                    continue;
                };
                if child.ftype != rec.ftype {
                    report.errors.push(FsckError::TypeMismatch {
                        dir,
                        name: rec.name.clone(),
                        target,
                    });
                }
                *name_refs.entry(target).or_insert(0) += 1;
                if child.ftype == FileType::Directory {
                    *subdirs.entry(dir).or_insert(0) += 1;
                    if !visited.insert(target) {
                        report.errors.push(FsckError::DirLoop { ino: target });
                    } else {
                        queue.push_back(target);
                    }
                }
            }
        }
    }

    // Phase 6: reachability + link counts.
    for (&ino, inode) in &inodes {
        if inode.ftype == FileType::Directory {
            if !visited.contains(&ino) {
                report.errors.push(FsckError::Unreachable { ino });
                continue;
            }
            let expected = 2 + subdirs.get(&ino).copied().unwrap_or(0);
            if u32::from(inode.links) != expected {
                report.errors.push(FsckError::LinkCount {
                    ino,
                    recorded: u32::from(inode.links),
                    actual: expected,
                });
            }
            if ino != ROOT_INO && name_refs.get(&ino).copied().unwrap_or(0) != 1 {
                report.errors.push(FsckError::DirLoop { ino });
            }
        } else {
            let refs = name_refs.get(&ino).copied().unwrap_or(0);
            if refs == 0 {
                report.errors.push(FsckError::Unreachable { ino });
            } else if u32::from(inode.links) != refs {
                report.errors.push(FsckError::LinkCount {
                    ino,
                    recorded: u32::from(inode.links),
                    actual: refs,
                });
            }
        }
    }

    // Phase 7: block ownership, double allocation, block counts.
    let mut owner: BTreeMap<u64, InodeNo> = BTreeMap::new();
    for (&ino, inode) in &inodes {
        let owned = collect_blocks(dev, &geo, ino, inode, &mut report.errors)?;
        if owned.len() as u32 != inode.blocks {
            report.errors.push(FsckError::BlockCount {
                ino,
                recorded: inode.blocks,
                actual: owned.len() as u32,
            });
        }
        for bno in owned {
            report.blocks_accounted += 1;
            if let Some(&prev) = owner.get(&bno) {
                report.errors.push(FsckError::DoubleAlloc {
                    bno,
                    owners: (prev, ino),
                });
            } else {
                owner.insert(bno, ino);
            }
        }
    }

    // Phase 8: data bitmap vs ownership.
    for idx in 0..geo.data_blocks {
        let bno = geo.data_block(idx);
        let marked = dbm.test(idx).unwrap_or(false);
        let used = owner.contains_key(&bno);
        if marked != used {
            report
                .errors
                .push(FsckError::DataBitmapMismatch { bno, marked, used });
        }
    }

    // Phase 9: free counters (only meaningful on a clean filesystem;
    // a dirty one may have committed-but-uncheckpointed counters).
    if sb.mount_state == MountState::Clean {
        let actual_free_inodes = u64::from(geo.inode_count) - ibm.count_set();
        if u64::from(sb.free_inodes) != actual_free_inodes {
            report.errors.push(FsckError::FreeCount {
                kind: "inodes",
                superblock: u64::from(sb.free_inodes),
                actual: actual_free_inodes,
            });
        }
        let actual_free_blocks = dbm.count_clear();
        if sb.free_blocks != actual_free_blocks {
            report.errors.push(FsckError::FreeCount {
                kind: "blocks",
                superblock: sb.free_blocks,
                actual: actual_free_blocks,
            });
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inode::write_inode;
    use crate::mkfs::{mkfs, MkfsParams};
    use rae_blockdev::MemDisk;

    fn fresh() -> (MemDisk, Geometry) {
        let dev = MemDisk::new(4096);
        let geo = mkfs(&dev, MkfsParams::default()).unwrap();
        (dev, geo)
    }

    /// Build a tiny valid tree by hand: /dir, /dir/file (1 block).
    fn build_tree(dev: &MemDisk, geo: &Geometry) {
        let dir_ino = InodeNo(2);
        let file_ino = InodeNo(3);
        let root_dirblk = geo.data_start;
        let dir_dirblk = geo.data_start + 1;
        let file_blk = geo.data_start + 2;

        // root: one block containing "dir"
        let mut root = DiskInode::new(FileType::Directory, 0);
        root.links = 3; // 2 + one subdir
        root.size = BLOCK_SIZE as u64;
        root.direct[0] = root_dirblk;
        root.blocks = 1;
        write_inode(dev, geo, ROOT_INO, Some(&root)).unwrap();
        let mut db = DirBlock::empty();
        db.try_insert("dir", dir_ino, FileType::Directory).unwrap();
        dev.write_block(root_dirblk, db.as_bytes()).unwrap();

        // dir: one block containing "file"
        let mut dir = DiskInode::new(FileType::Directory, 0);
        dir.size = BLOCK_SIZE as u64;
        dir.direct[0] = dir_dirblk;
        dir.blocks = 1;
        write_inode(dev, geo, dir_ino, Some(&dir)).unwrap();
        let mut db = DirBlock::empty();
        db.try_insert("file", file_ino, FileType::Regular).unwrap();
        dev.write_block(dir_dirblk, db.as_bytes()).unwrap();

        // file: one data block
        let mut file = DiskInode::new(FileType::Regular, 0);
        file.size = 100;
        file.direct[0] = file_blk;
        file.blocks = 1;
        write_inode(dev, geo, file_ino, Some(&file)).unwrap();

        // bitmaps + superblock counters
        let mut ibm = Bitmap::load(
            dev,
            geo.inode_bitmap_start,
            geo.inode_bitmap_blocks,
            u64::from(geo.inode_count),
        )
        .unwrap();
        ibm.set(2).unwrap();
        ibm.set(3).unwrap();
        ibm.store(dev, geo.inode_bitmap_start).unwrap();
        let mut dbm = Bitmap::load(
            dev,
            geo.data_bitmap_start,
            geo.data_bitmap_blocks,
            geo.data_blocks,
        )
        .unwrap();
        for b in [root_dirblk, dir_dirblk, file_blk] {
            dbm.set(geo.data_index(b).unwrap()).unwrap();
        }
        dbm.store(dev, geo.data_bitmap_start).unwrap();
        let mut sb = Superblock::read_from(dev).unwrap();
        sb.free_inodes -= 2;
        sb.free_blocks -= 3;
        sb.write_to(dev).unwrap();
    }

    #[test]
    fn fresh_image_is_clean() {
        let (dev, _) = fresh();
        let report = fsck(&dev).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.inodes_checked, 1); // root only
    }

    #[test]
    fn hand_built_tree_is_clean() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        let report = fsck(&dev).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.inodes_checked, 3);
        assert_eq!(report.entries_checked, 2);
        assert_eq!(report.blocks_accounted, 3);
    }

    #[test]
    fn detects_garbage_superblock() {
        let dev = MemDisk::new(64);
        let report = fsck(&dev).unwrap();
        assert!(matches!(report.errors[0], FsckError::Superblock(_)));
    }

    #[test]
    fn detects_dangling_entry() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        // point "file" at an unallocated inode
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(geo.data_start + 1, &mut buf).unwrap();
        let mut db = DirBlock::from_bytes(buf).unwrap();
        db.remove("file");
        db.try_insert("file", InodeNo(99), FileType::Regular)
            .unwrap();
        dev.write_block(geo.data_start + 1, db.as_bytes()).unwrap();

        let report = fsck(&dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::DanglingEntry { .. })),
            "{report}"
        );
        // and the now-orphaned file inode + bitmap drift are also flagged
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::Unreachable { ino } if *ino == InodeNo(3))));
    }

    #[test]
    fn detects_wrong_link_count() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        let mut file = read_inode(&dev, &geo, InodeNo(3)).unwrap().unwrap();
        file.links = 5;
        write_inode(&dev, &geo, InodeNo(3), Some(&file)).unwrap();
        let report = fsck(&dev).unwrap();
        assert!(report.errors.iter().any(
            |e| matches!(e, FsckError::LinkCount { ino, recorded: 5, actual: 1 } if *ino == InodeNo(3))
        ), "{report}");
    }

    #[test]
    fn detects_double_allocation() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        // make the file share the dir's dirent block
        let mut file = read_inode(&dev, &geo, InodeNo(3)).unwrap().unwrap();
        file.direct[1] = geo.data_start + 1;
        file.blocks = 2;
        write_inode(&dev, &geo, InodeNo(3), Some(&file)).unwrap();
        let report = fsck(&dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::DoubleAlloc { .. })),
            "{report}"
        );
    }

    #[test]
    fn detects_bitmap_mismatches() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        // mark a random free data block as used
        let mut dbm = Bitmap::load(
            &dev,
            geo.data_bitmap_start,
            geo.data_bitmap_blocks,
            geo.data_blocks,
        )
        .unwrap();
        dbm.set(50).unwrap();
        dbm.store(&dev, geo.data_bitmap_start).unwrap();
        let report = fsck(&dev).unwrap();
        assert!(
            report.errors.iter().any(|e| matches!(
                e,
                FsckError::DataBitmapMismatch {
                    marked: true,
                    used: false,
                    ..
                }
            )),
            "{report}"
        );
        // free-count drift is also caught
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, FsckError::FreeCount { kind: "blocks", .. })));
    }

    #[test]
    fn detects_unreachable_directory() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        // remove the "dir" entry from root but keep the inode allocated
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(geo.data_start, &mut buf).unwrap();
        let mut db = DirBlock::from_bytes(buf).unwrap();
        db.remove("dir");
        dev.write_block(geo.data_start, db.as_bytes()).unwrap();

        let report = fsck(&dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::Unreachable { ino } if *ino == InodeNo(2))),
            "{report}"
        );
    }

    #[test]
    fn detects_type_mismatch() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(geo.data_start + 1, &mut buf).unwrap();
        let mut db = DirBlock::from_bytes(buf).unwrap();
        db.remove("file");
        db.try_insert("file", InodeNo(3), FileType::Symlink)
            .unwrap();
        dev.write_block(geo.data_start + 1, db.as_bytes()).unwrap();
        let report = fsck(&dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::TypeMismatch { .. })),
            "{report}"
        );
    }

    #[test]
    fn detects_wrong_block_count() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        let mut file = read_inode(&dev, &geo, InodeNo(3)).unwrap().unwrap();
        file.blocks = 9;
        write_inode(&dev, &geo, InodeNo(3), Some(&file)).unwrap();
        let report = fsck(&dev).unwrap();
        assert!(
            report.errors.iter().any(|e| matches!(
                e,
                FsckError::BlockCount {
                    recorded: 9,
                    actual: 1,
                    ..
                }
            )),
            "{report}"
        );
    }

    #[test]
    fn detects_corrupt_inode_record() {
        let (dev, geo) = fresh();
        build_tree(&dev, &geo);
        let (bno, off) = geo.inode_location(InodeNo(3)).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(bno, &mut buf).unwrap();
        buf[off + 9] ^= 0xFF; // smash the size field; checksum breaks
        dev.write_block(bno, &buf).unwrap();
        let report = fsck(&dev).unwrap();
        assert!(
            report
                .errors
                .iter()
                .any(|e| matches!(e, FsckError::BadInode { ino, .. } if *ino == InodeNo(3))),
            "{report}"
        );
    }
}
