//! CRC32C (Castagnoli), the checksum used by every on-disk structure.
//!
//! Implemented as a classic 256-entry table; dependency-free so that the
//! format crate stays self-contained (the ABI must not drift with an
//! external crate's implementation choices).

const POLY: u32 = 0x82F6_3B78; // reflected Castagnoli polynomial

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Compute the CRC32C of `data`.
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_seeded(!0u32, data) ^ !0u32
}

/// Continue a CRC computation (raw state in, raw state out; callers that
/// split data across buffers seed with `!0` and finalize with `^ !0`).
#[must_use]
pub fn crc32c_seeded(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Compute the checksum of a structure image with its own checksum field
/// zeroed: `data` is the full encoded structure, `crc_at` the byte
/// offset of the little-endian u32 checksum inside it.
///
/// # Panics
///
/// Panics if `crc_at + 4` exceeds `data.len()` (caller layout bug).
#[must_use]
pub fn crc32c_excluding(data: &[u8], crc_at: usize) -> u32 {
    assert!(crc_at + 4 <= data.len());
    let mut state = !0u32;
    state = crc32c_seeded(state, &data[..crc_at]);
    state = crc32c_seeded(state, &[0, 0, 0, 0]);
    state = crc32c_seeded(state, &data[crc_at + 4..]);
    state ^ !0u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common CRC32C test vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32c(data);
        let mut st = !0u32;
        st = crc32c_seeded(st, &data[..10]);
        st = crc32c_seeded(st, &data[10..]);
        assert_eq!(st ^ !0u32, oneshot);
    }

    #[test]
    fn excluding_matches_manual_zeroing() {
        let mut buf = vec![7u8; 64];
        buf[20..24].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        let want = {
            let mut z = buf.clone();
            z[20..24].fill(0);
            crc32c(&z)
        };
        assert_eq!(crc32c_excluding(&buf, 20), want);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 4096];
        let clean = crc32c(&data);
        for bit in [0, 13, 4095 * 8 + 7] {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&flipped), clean, "bit {bit} undetected");
        }
    }
}
