//! The shared on-disk format — the ABI both the base and the shadow
//! filesystem implement.
//!
//! The paper's central compatibility requirement is that the shadow
//! adheres to *the same API and on-disk formats* as the base it
//! enhances, and §4.1 argues a documented, checked format is itself a
//! reliability win ("we hope that the implementation of a
//! formally-verified shadow filesystem can serve as an ABI"). This crate
//! is that ABI: every structure has an explicit byte layout, a checksum,
//! and a validator.
//!
//! Layout (4 KiB blocks, all offsets recorded in the superblock):
//!
//! ```text
//! [0] superblock
//! [1 .. 1+J)              journal (header block + record area)
//! [ibm .. ibm+IBB)        inode bitmap
//! [dbm .. dbm+DBB)        data bitmap (bit i <=> block data_start+i)
//! [itb .. itb+ITB)        inode table (16 inodes of 256 B per block)
//! [data_start .. total)   data blocks
//! ```
//!
//! Modules:
//!
//! * [`crc`] — CRC32C, used by every on-disk structure;
//! * [`layout`] — geometry computation ([`Geometry`]);
//! * [`superblock`] — [`Superblock`] codec + validation;
//! * [`inode`] — [`DiskInode`] codec + validation (256 B, 12 direct +
//!   1 indirect + 1 double-indirect pointers);
//! * [`dirent`] — ext2-style variable-length directory entry blocks;
//! * [`bitmap`] — allocation bitmaps;
//! * [`journal`] — physical metadata journal records, scan and replay;
//! * [`mkfs`](fn@mkfs) — filesystem creation;
//! * [`fsck`](fn@fsck) — the full structural checker (the "verified FSCK"
//!   analog from §4.3 of the paper);
//! * [`crafted`] — the adversarial crafted-image builder used by the
//!   robustness experiments (§2.1's bypass-FSCK attack class).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod crafted;
pub mod crc;
pub mod dirent;
pub mod fsck;
pub mod inode;
pub mod journal;
pub mod layout;
pub mod mkfs;
pub mod recovery;
pub mod superblock;
mod wire;

pub use crafted::{apply_corruption, Corruption, CraftedCase, CraftedImage};
pub use fsck::{fsck, FsckError, FsckReport};
pub use inode::{
    locate_block, max_file_size, read_inode, write_inode, BlockPtrLoc, DiskInode, INODES_PER_BLOCK,
    INODE_SIZE, NDIRECT, PTRS_PER_BLOCK,
};
pub use layout::Geometry;
pub use mkfs::{mkfs, MkfsParams};
pub use recovery::{RecoveredFd, RecoveryDelta};
pub use superblock::{MountState, Superblock, SUPERBLOCK_MAGIC};
