//! Filesystem creation.

use crate::inode::{write_inode, DiskInode};
use crate::journal;
use crate::layout::Geometry;
use crate::superblock::Superblock;
use rae_blockdev::{BlockDevice, BLOCK_SIZE};
use rae_vfs::{FileType, FsError, FsResult, ROOT_INO};

/// Parameters for [`mkfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MkfsParams {
    /// Filesystem size in blocks (must fit on the device).
    pub total_blocks: u64,
    /// Number of inodes.
    pub inode_count: u32,
    /// Journal size in blocks (header + record area).
    pub journal_blocks: u64,
}

impl Default for MkfsParams {
    /// 16 MiB filesystem: 4096 blocks, 1024 inodes, 256-block journal.
    fn default() -> MkfsParams {
        MkfsParams {
            total_blocks: 4096,
            inode_count: 1024,
            journal_blocks: 256,
        }
    }
}

impl MkfsParams {
    /// A small configuration for quick tests (2 MiB).
    #[must_use]
    pub fn tiny() -> MkfsParams {
        MkfsParams {
            total_blocks: 512,
            inode_count: 128,
            journal_blocks: 32,
        }
    }
}

/// Create a fresh filesystem on `dev`.
///
/// Writes zeroed bitmaps and inode table, allocates the root directory
/// (empty, inode 1), resets the journal, writes the superblock, and
/// flushes. The resulting image passes [`crate::fsck()`](fn@crate::fsck::fsck) with zero errors.
///
/// # Errors
///
/// [`FsError::InvalidArgument`] for degenerate parameters or a device
/// smaller than `params.total_blocks`; device errors.
pub fn mkfs<D: BlockDevice + ?Sized>(dev: &D, params: MkfsParams) -> FsResult<Geometry> {
    let geo = Geometry::compute(
        params.total_blocks,
        params.inode_count,
        params.journal_blocks,
    )?;
    if dev.block_count() < geo.total_blocks {
        return Err(FsError::InvalidArgument);
    }

    // zero every metadata region (bitmaps + inode table)
    let zero = vec![0u8; BLOCK_SIZE];
    for bno in geo.inode_bitmap_start..geo.data_start {
        dev.write_block(bno, &zero)?;
    }

    // inode bitmap: ino 0 reserved, ino 1 = root
    let mut ibm = zero.clone();
    ibm[0] = 0b0000_0011;
    dev.write_block(geo.inode_bitmap_start, &ibm)?;

    // root directory inode: empty, no data blocks
    let root = DiskInode::new(FileType::Directory, 0);
    write_inode(dev, &geo, ROOT_INO, Some(&root))?;

    journal::reset(dev, &geo, 0)?;
    Superblock::new(geo).write_to(dev)?;
    dev.flush()?;
    Ok(geo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inode::read_inode;
    use rae_blockdev::MemDisk;

    #[test]
    fn mkfs_writes_valid_superblock_and_root() {
        let dev = MemDisk::new(4096);
        let geo = mkfs(&dev, MkfsParams::default()).unwrap();

        let sb = Superblock::read_from(&dev).unwrap();
        assert_eq!(sb.geometry, geo);
        assert_eq!(sb.free_inodes, geo.inode_count - 2);
        assert_eq!(sb.free_blocks, geo.data_blocks);

        let root = read_inode(&dev, &geo, ROOT_INO).unwrap().unwrap();
        assert_eq!(root.ftype, FileType::Directory);
        assert_eq!(root.links, 2);
        assert_eq!(root.size, 0);
    }

    #[test]
    fn mkfs_journal_is_empty() {
        let dev = MemDisk::new(4096);
        let geo = mkfs(&dev, MkfsParams::default()).unwrap();
        let report = journal::replay(&dev, &geo).unwrap();
        assert_eq!(report.transactions, 0);
    }

    #[test]
    fn mkfs_rejects_undersized_device() {
        let dev = MemDisk::new(100);
        assert!(mkfs(&dev, MkfsParams::default()).is_err());
    }

    #[test]
    fn tiny_params_work() {
        let dev = MemDisk::new(512);
        let geo = mkfs(&dev, MkfsParams::tiny()).unwrap();
        assert!(geo.data_blocks > 300, "most of a tiny fs is data");
    }
}
