//! Directory-entry blocks: ext2-style variable-length records.
//!
//! Every directory data block is fully tiled by records:
//!
//! ```text
//! +--------+---------+----------+-------+----------------+
//! | ino u32| rec_len | name_len | ftype | name bytes ... |
//! +--------+---------+----------+-------+----------------+
//! ```
//!
//! `rec_len` covers the 8-byte header, the name, and any slack up to the
//! next record; the rec_lens of a block always sum to exactly 4096. A
//! record with `ino == 0` is free space. Deletion coalesces a record
//! into its predecessor, as ext2 does.

use crate::wire::{get_u16, get_u32, put_u16, put_u32};
use rae_blockdev::BLOCK_SIZE;
use rae_vfs::{FileType, FsError, FsResult, InodeNo, MAX_NAME_LEN};

const HEADER_LEN: usize = 8;

fn align4(n: usize) -> usize {
    (n + 3) & !3
}

fn record_space(name_len: usize) -> usize {
    align4(HEADER_LEN + name_len)
}

/// One used directory record (borrowed view during iteration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirRecord {
    /// Target inode.
    pub ino: InodeNo,
    /// Recorded file type.
    pub ftype: FileType,
    /// Entry name.
    pub name: String,
}

/// An owned, always-consistent directory block.
///
/// All mutation goes through [`DirBlock::try_insert`] /
/// [`DirBlock::remove`], which preserve the tiling invariant; decoding a
/// block from disk re-validates everything (crafted images must not get
/// past [`DirBlock::from_bytes`]).
#[derive(Clone, PartialEq, Eq)]
pub struct DirBlock {
    buf: Vec<u8>,
}

impl std::fmt::Debug for DirBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirBlock")
            .field("entries", &self.records().count())
            .finish()
    }
}

impl Default for DirBlock {
    fn default() -> DirBlock {
        DirBlock::empty()
    }
}

impl DirBlock {
    /// A block containing a single free record spanning everything.
    #[must_use]
    pub fn empty() -> DirBlock {
        let mut buf = vec![0u8; BLOCK_SIZE];
        put_u32(&mut buf, 0, 0); // ino 0 = free
        put_u16(&mut buf, 4, BLOCK_SIZE as u16);
        DirBlock { buf }
    }

    /// Validate and adopt a raw block read from disk.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] when the record chain does not tile the
    /// block, a record is misaligned or undersized, a name is empty,
    /// overlong, contains `/` or NUL, or is not UTF-8.
    pub fn from_bytes(buf: Vec<u8>) -> FsResult<DirBlock> {
        if buf.len() != BLOCK_SIZE {
            return Err(corrupt("directory block has wrong length"));
        }
        let mut off = 0usize;
        while off < BLOCK_SIZE {
            if off + HEADER_LEN > BLOCK_SIZE {
                return Err(corrupt("record header crosses block end"));
            }
            let ino = get_u32(&buf, off);
            let rec_len = get_u16(&buf, off + 4) as usize;
            let name_len = buf[off + 6] as usize;
            let ftype = buf[off + 7];
            if rec_len < HEADER_LEN || !rec_len.is_multiple_of(4) || off + rec_len > BLOCK_SIZE {
                return Err(corrupt("bad record length"));
            }
            if ino != 0 {
                if name_len == 0 || name_len > MAX_NAME_LEN {
                    return Err(corrupt("bad name length"));
                }
                if HEADER_LEN + name_len > rec_len {
                    return Err(corrupt("name overflows record"));
                }
                if FileType::from_u8(ftype).is_none() {
                    return Err(corrupt("invalid file type in record"));
                }
                let name = &buf[off + HEADER_LEN..off + HEADER_LEN + name_len];
                let name = std::str::from_utf8(name).map_err(|_| corrupt("name is not UTF-8"))?;
                if name.contains('/') || name.contains('\0') {
                    return Err(corrupt("name contains / or NUL"));
                }
            }
            off += rec_len;
        }
        if off != BLOCK_SIZE {
            return Err(corrupt("records do not tile the block"));
        }
        let db = DirBlock { buf };
        // duplicate names within one block are structural corruption
        let mut seen = std::collections::HashSet::new();
        for r in db.records() {
            if !seen.insert(r.name.clone()) {
                return Err(corrupt("duplicate name in directory block"));
            }
        }
        Ok(db)
    }

    /// The raw block image.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the raw block image.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn record_at(&self, off: usize) -> (u32, usize, usize, u8) {
        (
            get_u32(&self.buf, off),
            get_u16(&self.buf, off + 4) as usize,
            self.buf[off + 6] as usize,
            self.buf[off + 7],
        )
    }

    /// Iterate over the used records in on-disk order.
    pub fn records(&self) -> impl Iterator<Item = DirRecord> + '_ {
        let mut off = 0usize;
        std::iter::from_fn(move || {
            while off < BLOCK_SIZE {
                let (ino, rec_len, name_len, ftype) = self.record_at(off);
                let cur = off;
                off += rec_len;
                if ino != 0 {
                    let name = std::str::from_utf8(
                        &self.buf[cur + HEADER_LEN..cur + HEADER_LEN + name_len],
                    )
                    .expect("invariant: names validated on construction")
                    .to_string();
                    return Some(DirRecord {
                        ino: InodeNo(ino),
                        ftype: FileType::from_u8(ftype)
                            .expect("invariant: ftype validated on construction"),
                        name,
                    });
                }
            }
            None
        })
    }

    /// Find a record by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<DirRecord> {
        self.records().find(|r| r.name == name)
    }

    /// Number of used records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records().count()
    }

    /// Whether the block holds no used records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records().next().is_none()
    }

    /// Try to insert a record; `Ok(false)` when the block has no room
    /// (the caller moves on to another block).
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if `name` is already present in this block;
    /// [`FsError::NameTooLong`] / [`FsError::InvalidArgument`] for bad
    /// names; [`FsError::Corrupted`] for a null inode.
    pub fn try_insert(&mut self, name: &str, ino: InodeNo, ftype: FileType) -> FsResult<bool> {
        if name.is_empty() || name.contains('/') || name.contains('\0') {
            return Err(FsError::InvalidArgument);
        }
        if name.len() > MAX_NAME_LEN {
            return Err(FsError::NameTooLong);
        }
        if ino.is_null() {
            return Err(corrupt("refusing to insert entry for inode 0"));
        }
        if self.find(name).is_some() {
            return Err(FsError::Exists);
        }
        let need = record_space(name.len());

        let mut off = 0usize;
        while off < BLOCK_SIZE {
            let (cur_ino, rec_len, name_len, _) = self.record_at(off);
            let used = if cur_ino == 0 {
                0
            } else {
                record_space(name_len)
            };
            let slack = rec_len - used;
            if slack >= need {
                let insert_at = off + used;
                if used > 0 {
                    // shrink current record, carve the new one from its tail
                    put_u16(&mut self.buf, off + 4, used as u16);
                }
                put_u32(&mut self.buf, insert_at, ino.0);
                put_u16(&mut self.buf, insert_at + 4, (rec_len - used) as u16);
                self.buf[insert_at + 6] = name.len() as u8;
                self.buf[insert_at + 7] = ftype.as_u8();
                self.buf[insert_at + HEADER_LEN..insert_at + HEADER_LEN + name.len()]
                    .copy_from_slice(name.as_bytes());
                // zero stale name bytes in the slack area (hygiene: old
                // names must not linger on disk)
                let name_end = insert_at + HEADER_LEN + name.len();
                let rec_end = insert_at + (rec_len - used);
                self.buf[name_end..rec_end].fill(0);
                return Ok(true);
            }
            off += rec_len;
        }
        Ok(false)
    }

    /// Remove the record for `name`, coalescing its space; `false` if
    /// not present.
    pub fn remove(&mut self, name: &str) -> bool {
        let mut prev: Option<usize> = None;
        let mut off = 0usize;
        while off < BLOCK_SIZE {
            let (ino, rec_len, name_len, _) = self.record_at(off);
            if ino != 0
                && &self.buf[off + HEADER_LEN..off + HEADER_LEN + name_len] == name.as_bytes()
            {
                match prev {
                    Some(p) => {
                        let (_, prev_len, _, _) = self.record_at(p);
                        put_u16(&mut self.buf, p + 4, (prev_len + rec_len) as u16);
                    }
                    None => {
                        put_u32(&mut self.buf, off, 0);
                        self.buf[off + 6] = 0;
                        self.buf[off + 7] = 0;
                    }
                }
                // scrub the name bytes
                self.buf[off + HEADER_LEN..off + HEADER_LEN + name_len].fill(0);
                return true;
            }
            prev = Some(off);
            off += rec_len;
        }
        false
    }

    /// Bytes of payload capacity remaining for a name of length `n`
    /// (true iff an insert of such a name would succeed).
    #[must_use]
    pub fn fits(&self, name_len: usize) -> bool {
        let need = record_space(name_len);
        let mut off = 0usize;
        while off < BLOCK_SIZE {
            let (ino, rec_len, cur_name_len, _) = self.record_at(off);
            let used = if ino == 0 {
                0
            } else {
                record_space(cur_name_len)
            };
            if rec_len - used >= need {
                return true;
            }
            off += rec_len;
        }
        false
    }
}

fn corrupt(msg: &str) -> FsError {
    FsError::Corrupted {
        detail: format!("dirent: {msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(db: &DirBlock) -> Vec<String> {
        db.records().map(|r| r.name).collect()
    }

    #[test]
    fn empty_block_roundtrip() {
        let db = DirBlock::empty();
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
        let db2 = DirBlock::from_bytes(db.clone().into_bytes()).unwrap();
        assert!(db2.is_empty());
    }

    #[test]
    fn insert_find_remove() {
        let mut db = DirBlock::empty();
        assert!(db
            .try_insert("alpha", InodeNo(2), FileType::Regular)
            .unwrap());
        assert!(db
            .try_insert("beta", InodeNo(3), FileType::Directory)
            .unwrap());
        assert_eq!(db.len(), 2);

        let r = db.find("alpha").unwrap();
        assert_eq!(r.ino, InodeNo(2));
        assert_eq!(r.ftype, FileType::Regular);

        assert!(db.remove("alpha"));
        assert!(!db.remove("alpha"));
        assert_eq!(names(&db), vec!["beta"]);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut db = DirBlock::empty();
        db.try_insert("x", InodeNo(2), FileType::Regular).unwrap();
        assert_eq!(
            db.try_insert("x", InodeNo(3), FileType::Regular),
            Err(FsError::Exists)
        );
    }

    #[test]
    fn bad_names_rejected() {
        let mut db = DirBlock::empty();
        assert_eq!(
            db.try_insert("", InodeNo(2), FileType::Regular),
            Err(FsError::InvalidArgument)
        );
        assert_eq!(
            db.try_insert("a/b", InodeNo(2), FileType::Regular),
            Err(FsError::InvalidArgument)
        );
        assert_eq!(
            db.try_insert(&"n".repeat(MAX_NAME_LEN + 1), InodeNo(2), FileType::Regular),
            Err(FsError::NameTooLong)
        );
        assert!(matches!(
            db.try_insert("ok", InodeNo(0), FileType::Regular),
            Err(FsError::Corrupted { .. })
        ));
    }

    #[test]
    fn fills_up_and_reports_no_room() {
        let mut db = DirBlock::empty();
        let mut inserted = 0u32;
        loop {
            let name = format!("file-{inserted:04}");
            if !db
                .try_insert(&name, InodeNo(2 + inserted), FileType::Regular)
                .unwrap()
            {
                break;
            }
            inserted += 1;
        }
        // 16-byte records (8 header + 9 name -> aligned 20)... roughly 200+
        assert!(inserted > 150, "only {inserted} records fit");
        assert!(!db.fits(9));
        assert!(db.len() as u32 == inserted);

        // after removing one, there is room again
        assert!(db.remove("file-0050"));
        assert!(db.fits(9));
        assert!(db
            .try_insert("file-0050", InodeNo(999), FileType::Regular)
            .unwrap());
    }

    #[test]
    fn remove_first_record_then_reuse() {
        let mut db = DirBlock::empty();
        db.try_insert("first", InodeNo(2), FileType::Regular)
            .unwrap();
        db.try_insert("second", InodeNo(3), FileType::Regular)
            .unwrap();
        assert!(db.remove("first"));
        assert_eq!(names(&db), vec!["second"]);
        // the freed head record is reusable
        assert!(db
            .try_insert("third", InodeNo(4), FileType::Regular)
            .unwrap());
        let db2 = DirBlock::from_bytes(db.into_bytes()).unwrap();
        let mut got = names(&db2);
        got.sort();
        assert_eq!(got, vec!["second", "third"]);
    }

    #[test]
    fn removal_coalesces_space_for_large_names() {
        let mut db = DirBlock::empty();
        let big = "b".repeat(200); // needs a 208-byte record
                                   // fill with 100-byte names (108-byte records)
        let mut i = 0;
        while db
            .try_insert(&format!("n{i:099}"), InodeNo(2), FileType::Regular)
            .unwrap()
        {
            i += 1;
        }
        assert!(!db.fits(big.len()));
        // remove two adjacent records; their coalesced 216 bytes fit it
        assert!(db.remove(&format!("n{:099}", 3)));
        assert!(db.remove(&format!("n{:099}", 4)));
        assert!(db.fits(big.len()), "coalescing failed to merge slack");
        assert!(db.try_insert(&big, InodeNo(7), FileType::Regular).unwrap());
    }

    #[test]
    fn survives_encode_decode_after_churn() {
        let mut db = DirBlock::empty();
        for i in 0..50 {
            db.try_insert(&format!("f{i}"), InodeNo(2 + i), FileType::Regular)
                .unwrap();
        }
        for i in (0..50).step_by(2) {
            assert!(db.remove(&format!("f{i}")));
        }
        for i in 50..60 {
            db.try_insert(&format!("g{i}"), InodeNo(2 + i), FileType::Symlink)
                .unwrap();
        }
        let db2 = DirBlock::from_bytes(db.clone().into_bytes()).unwrap();
        assert_eq!(names(&db), names(&db2));
        assert_eq!(db2.len(), 25 + 10);
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let mut db = DirBlock::empty();
        db.try_insert("hello", InodeNo(2), FileType::Regular)
            .unwrap();
        let clean = db.into_bytes();

        // rec_len not multiple of 4
        let mut b = clean.clone();
        put_u16(&mut b, 4, 13);
        assert!(DirBlock::from_bytes(b).is_err());

        // rec_len shorter than header
        let mut b = clean.clone();
        put_u16(&mut b, 4, 4);
        assert!(DirBlock::from_bytes(b).is_err());

        // name_len zero on a used record
        let mut b = clean.clone();
        b[6] = 0;
        assert!(DirBlock::from_bytes(b).is_err());

        // invalid ftype
        let mut b = clean.clone();
        b[7] = 200;
        assert!(DirBlock::from_bytes(b).is_err());

        // slash inside the stored name
        let mut b = clean.clone();
        b[HEADER_LEN + 1] = b'/';
        assert!(DirBlock::from_bytes(b).is_err());

        // truncation: records no longer tile the block
        let mut b = clean;
        put_u16(&mut b, 4, (BLOCK_SIZE - 4) as u16);
        assert!(DirBlock::from_bytes(b).is_err());
    }

    #[test]
    fn from_bytes_rejects_duplicate_names() {
        let mut db = DirBlock::empty();
        db.try_insert("dup", InodeNo(2), FileType::Regular).unwrap();
        db.try_insert("tmp", InodeNo(3), FileType::Regular).unwrap();
        let mut raw = db.into_bytes();
        // rewrite the second name to collide with the first
        let second_off = record_space(3 + HEADER_LEN) - HEADER_LEN; // offset of record 2
        let _ = second_off;
        // find second record by walking
        let first_len = get_u16(&raw, 4) as usize;
        raw[first_len + HEADER_LEN..first_len + HEADER_LEN + 3].copy_from_slice(b"dup");
        assert!(DirBlock::from_bytes(raw).is_err());
    }
}
