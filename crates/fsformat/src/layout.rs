//! Filesystem geometry: where every region lives on the device.

use rae_blockdev::BLOCK_SIZE;
use rae_vfs::{FsError, FsResult, InodeNo};

/// Bits per bitmap block.
pub const BITS_PER_BLOCK: u64 = (BLOCK_SIZE * 8) as u64;

/// Complete description of the on-disk region layout.
///
/// Computed once by [`Geometry::compute`] at `mkfs` time and thereafter
/// derived from the superblock; both filesystems address the device
/// exclusively through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total blocks on the device.
    pub total_blocks: u64,
    /// Number of inodes (inode numbers `1..=inode_count - 1` usable;
    /// ino 0 is reserved as null).
    pub inode_count: u32,
    /// First journal block (the journal header).
    pub journal_start: u64,
    /// Journal length in blocks, including the header block.
    pub journal_blocks: u64,
    /// First inode-bitmap block.
    pub inode_bitmap_start: u64,
    /// Inode-bitmap length in blocks.
    pub inode_bitmap_blocks: u64,
    /// First data-bitmap block.
    pub data_bitmap_start: u64,
    /// Data-bitmap length in blocks.
    pub data_bitmap_blocks: u64,
    /// First inode-table block.
    pub inode_table_start: u64,
    /// Inode-table length in blocks.
    pub inode_table_blocks: u64,
    /// First data block.
    pub data_start: u64,
    /// Number of data blocks.
    pub data_blocks: u64,
}

impl Geometry {
    /// Compute a layout for a device of `total_blocks` blocks with
    /// `inode_count` inodes and a journal of `journal_blocks` blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidArgument`] when the device is too small to hold
    /// the metadata regions plus at least one data block, or parameters
    /// are degenerate (zero inodes, journal shorter than 2 blocks).
    pub fn compute(total_blocks: u64, inode_count: u32, journal_blocks: u64) -> FsResult<Geometry> {
        if inode_count < 2 || journal_blocks < 2 || total_blocks < 8 {
            return Err(FsError::InvalidArgument);
        }
        let journal_start = 1;
        let inode_bitmap_start = journal_start + journal_blocks;
        let inode_bitmap_blocks = u64::from(inode_count).div_ceil(BITS_PER_BLOCK);
        let inode_table_blocks =
            u64::from(inode_count).div_ceil(crate::inode::INODES_PER_BLOCK as u64);

        let data_bitmap_start = inode_bitmap_start + inode_bitmap_blocks;
        let fixed = data_bitmap_start + inode_table_blocks;
        if fixed + 2 > total_blocks {
            return Err(FsError::InvalidArgument);
        }
        // Solve: data_bitmap_blocks + data_blocks = total - fixed, with
        // data_blocks <= data_bitmap_blocks * BITS_PER_BLOCK.
        let remaining = total_blocks - fixed;
        let data_bitmap_blocks = (remaining + BITS_PER_BLOCK) / (BITS_PER_BLOCK + 1);
        let data_blocks = remaining - data_bitmap_blocks;
        if data_blocks == 0 {
            return Err(FsError::InvalidArgument);
        }

        let inode_table_start = data_bitmap_start + data_bitmap_blocks;
        let data_start = inode_table_start + inode_table_blocks;
        debug_assert!(data_blocks <= data_bitmap_blocks * BITS_PER_BLOCK);
        debug_assert_eq!(data_start + data_blocks, total_blocks);

        Ok(Geometry {
            total_blocks,
            inode_count,
            journal_start,
            journal_blocks,
            inode_bitmap_start,
            inode_bitmap_blocks,
            data_bitmap_start,
            data_bitmap_blocks,
            inode_table_start,
            inode_table_blocks,
            data_start,
            data_blocks,
        })
    }

    /// The inode-table block holding `ino`, plus the byte offset of the
    /// inode within that block.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] if `ino` is null or out of range — callers
    /// pass inode numbers read from disk, so this is a validation point,
    /// not an assertion.
    pub fn inode_location(&self, ino: InodeNo) -> FsResult<(u64, usize)> {
        if ino.is_null() || ino.0 >= self.inode_count {
            return Err(FsError::Corrupted {
                detail: format!("inode number {ino} out of range 1..{}", self.inode_count),
            });
        }
        let idx = u64::from(ino.0);
        let block = self.inode_table_start + idx / crate::inode::INODES_PER_BLOCK as u64;
        let offset =
            (idx % crate::inode::INODES_PER_BLOCK as u64) as usize * crate::inode::INODE_SIZE;
        Ok((block, offset))
    }

    /// Whether `bno` lies in the data region.
    #[must_use]
    pub fn is_data_block(&self, bno: u64) -> bool {
        bno >= self.data_start && bno < self.total_blocks
    }

    /// Map a data block number to its index in the data bitmap.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] when `bno` is outside the data region
    /// (data structures on disk may carry garbage pointers).
    pub fn data_index(&self, bno: u64) -> FsResult<u64> {
        if self.is_data_block(bno) {
            Ok(bno - self.data_start)
        } else {
            Err(FsError::Corrupted {
                detail: format!(
                    "block {bno} is not a data block (data region {}..{})",
                    self.data_start, self.total_blocks
                ),
            })
        }
    }

    /// Inverse of [`Geometry::data_index`].
    #[must_use]
    pub fn data_block(&self, index: u64) -> u64 {
        self.data_start + index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_tile_the_device_exactly() {
        let g = Geometry::compute(4096, 1024, 256).unwrap();
        assert_eq!(g.journal_start, 1);
        assert_eq!(g.inode_bitmap_start, 1 + 256);
        assert_eq!(
            g.data_start + g.data_blocks,
            g.total_blocks,
            "no wasted or overlapping blocks"
        );
        assert!(g.data_blocks <= g.data_bitmap_blocks * BITS_PER_BLOCK);
        // 1024 inodes, 16 per block
        assert_eq!(g.inode_table_blocks, 64);
        assert_eq!(g.inode_bitmap_blocks, 1);
    }

    #[test]
    fn tiny_and_large_devices() {
        for (blocks, inodes, journal) in [
            (64u64, 16u32, 8u64),
            (1 << 18, 1 << 15, 1024),
            (8192, 64, 2),
        ] {
            let g = Geometry::compute(blocks, inodes, journal).unwrap();
            assert_eq!(g.data_start + g.data_blocks, blocks);
            assert!(g.data_blocks > 0);
        }
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Geometry::compute(4, 16, 2).is_err(), "device too small");
        assert!(Geometry::compute(4096, 1, 2).is_err(), "too few inodes");
        assert!(Geometry::compute(4096, 16, 1).is_err(), "journal too short");
        assert!(
            Geometry::compute(300, 16, 298).is_err(),
            "journal eats the whole device"
        );
    }

    #[test]
    fn inode_location_math() {
        let g = Geometry::compute(4096, 1024, 256).unwrap();
        let (b1, o1) = g.inode_location(InodeNo(1)).unwrap();
        assert_eq!(b1, g.inode_table_start);
        assert_eq!(o1, crate::inode::INODE_SIZE);
        let (b16, o16) = g.inode_location(InodeNo(16)).unwrap();
        assert_eq!(b16, g.inode_table_start + 1);
        assert_eq!(o16, 0);
    }

    #[test]
    fn inode_location_validates_range() {
        let g = Geometry::compute(4096, 1024, 256).unwrap();
        assert!(g.inode_location(InodeNo(0)).is_err());
        assert!(g.inode_location(InodeNo(1024)).is_err());
        assert!(g.inode_location(InodeNo(1023)).is_ok());
    }

    #[test]
    fn data_index_roundtrip_and_validation() {
        let g = Geometry::compute(4096, 1024, 256).unwrap();
        let bno = g.data_block(5);
        assert!(g.is_data_block(bno));
        assert_eq!(g.data_index(bno).unwrap(), 5);
        assert!(g.data_index(g.data_start - 1).is_err());
        assert!(g.data_index(g.total_blocks).is_err());
    }
}
