//! The physical metadata journal: record formats, scan, and replay.
//!
//! The journal occupies `geometry.journal_blocks` blocks starting at
//! `geometry.journal_start`. Block 0 of the region is the *journal
//! header* (magic + base sequence number). Transactions are appended
//! from block 1:
//!
//! ```text
//! [descriptor: seq, tags(target bno + data CRC)] [data image]* [commit: seq]
//! ```
//!
//! The log is append-only; when it fills up, the owner checkpoints
//! (writes all journaled blocks home) and resets the header with a new
//! base sequence. (JBD2 wraps circularly instead; the reset-on-
//! checkpoint simplification preserves the recovery semantics the
//! paper's contained reboot relies on and is recorded in DESIGN.md.)
//!
//! [`replay`] is deliberately conservative: it applies only transactions
//! whose descriptor, every data-block checksum, and commit record all
//! validate, and stops at the first gap — exactly the "recover from
//! known on-disk state" step of a contained reboot.

use crate::crc::{crc32c, crc32c_excluding};
use crate::layout::Geometry;
use crate::wire::{get_u32, get_u64, put_u32, put_u64};
use rae_blockdev::{BlockDevice, BLOCK_SIZE};
use rae_vfs::{FsError, FsResult};

/// Magic of the journal header block ("RAEH").
pub const JOURNAL_HEADER_MAGIC: u32 = 0x5241_4548;
/// Magic of a descriptor block ("RAED").
pub const JOURNAL_DESC_MAGIC: u32 = 0x5241_4544;
/// Magic of a commit block ("RAEC").
pub const JOURNAL_COMMIT_MAGIC: u32 = 0x5241_4543;

/// Maximum data blocks in one transaction (fits one descriptor block).
pub const MAX_TXN_BLOCKS: usize = 256;

const HDR_OFF_MAGIC: usize = 0;
const HDR_OFF_BASE_SEQ: usize = 4;
const HDR_OFF_CRC: usize = 12;
const HDR_LEN: usize = 16;

const DESC_OFF_MAGIC: usize = 0;
const DESC_OFF_SEQ: usize = 4;
const DESC_OFF_NTAGS: usize = 12;
const DESC_OFF_TAGS: usize = 16;
const TAG_LEN: usize = 12; // target u64 + crc u32

const COMMIT_OFF_MAGIC: usize = 0;
const COMMIT_OFF_SEQ: usize = 4;
const COMMIT_OFF_CRC: usize = 12;
const COMMIT_LEN: usize = 16;

/// One journaled block: where it belongs and the checksum of its image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnTag {
    /// Home location of the journaled block.
    pub target: u64,
    /// CRC32C of the journaled image.
    pub crc: u32,
}

/// Encode the journal header block.
#[must_use]
pub fn encode_header(base_seq: u64) -> Vec<u8> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    put_u32(&mut buf, HDR_OFF_MAGIC, JOURNAL_HEADER_MAGIC);
    put_u64(&mut buf, HDR_OFF_BASE_SEQ, base_seq);
    let crc = crc32c_excluding(&buf[..HDR_LEN], HDR_OFF_CRC);
    put_u32(&mut buf, HDR_OFF_CRC, crc);
    buf
}

/// Decode and validate the journal header block.
///
/// # Errors
///
/// [`FsError::Corrupted`] on bad magic or checksum.
pub fn decode_header(buf: &[u8]) -> FsResult<u64> {
    if buf.len() != BLOCK_SIZE || get_u32(buf, HDR_OFF_MAGIC) != JOURNAL_HEADER_MAGIC {
        return Err(corrupt("bad journal header magic"));
    }
    if get_u32(buf, HDR_OFF_CRC) != crc32c_excluding(&buf[..HDR_LEN], HDR_OFF_CRC) {
        return Err(corrupt("journal header checksum mismatch"));
    }
    Ok(get_u64(buf, HDR_OFF_BASE_SEQ))
}

/// Encode a descriptor block for transaction `seq` covering `tags`.
///
/// # Panics
///
/// Panics if `tags` is empty or exceeds [`MAX_TXN_BLOCKS`] (caller bug:
/// transaction sizing is the journal owner's invariant).
#[must_use]
pub fn encode_descriptor(seq: u64, tags: &[TxnTag]) -> Vec<u8> {
    assert!(!tags.is_empty() && tags.len() <= MAX_TXN_BLOCKS);
    let mut buf = vec![0u8; BLOCK_SIZE];
    put_u32(&mut buf, DESC_OFF_MAGIC, JOURNAL_DESC_MAGIC);
    put_u64(&mut buf, DESC_OFF_SEQ, seq);
    put_u32(&mut buf, DESC_OFF_NTAGS, tags.len() as u32);
    for (i, t) in tags.iter().enumerate() {
        let off = DESC_OFF_TAGS + i * TAG_LEN;
        put_u64(&mut buf, off, t.target);
        put_u32(&mut buf, off + 8, t.crc);
    }
    let crc_at = DESC_OFF_TAGS + tags.len() * TAG_LEN;
    let crc = crc32c(&buf[..crc_at]);
    put_u32(&mut buf, crc_at, crc);
    buf
}

/// Decode a descriptor block: `Ok(Some((seq, tags)))` for a valid
/// descriptor, `Ok(None)` for a block that is not a descriptor at all
/// (end of log), `Err` for a block that *claims* to be a descriptor but
/// fails validation.
///
/// # Errors
///
/// [`FsError::Corrupted`] for tag counts out of range or checksum
/// mismatches.
pub fn decode_descriptor(buf: &[u8]) -> FsResult<Option<(u64, Vec<TxnTag>)>> {
    if buf.len() != BLOCK_SIZE || get_u32(buf, DESC_OFF_MAGIC) != JOURNAL_DESC_MAGIC {
        return Ok(None);
    }
    let ntags = get_u32(buf, DESC_OFF_NTAGS) as usize;
    if ntags == 0 || ntags > MAX_TXN_BLOCKS {
        return Err(corrupt("descriptor tag count out of range"));
    }
    let crc_at = DESC_OFF_TAGS + ntags * TAG_LEN;
    if get_u32(buf, crc_at) != crc32c(&buf[..crc_at]) {
        return Err(corrupt("descriptor checksum mismatch"));
    }
    let seq = get_u64(buf, DESC_OFF_SEQ);
    let mut tags = Vec::with_capacity(ntags);
    for i in 0..ntags {
        let off = DESC_OFF_TAGS + i * TAG_LEN;
        tags.push(TxnTag {
            target: get_u64(buf, off),
            crc: get_u32(buf, off + 8),
        });
    }
    Ok(Some((seq, tags)))
}

/// Encode a commit block for transaction `seq`.
#[must_use]
pub fn encode_commit(seq: u64) -> Vec<u8> {
    let mut buf = vec![0u8; BLOCK_SIZE];
    put_u32(&mut buf, COMMIT_OFF_MAGIC, JOURNAL_COMMIT_MAGIC);
    put_u64(&mut buf, COMMIT_OFF_SEQ, seq);
    let crc = crc32c_excluding(&buf[..COMMIT_LEN], COMMIT_OFF_CRC);
    put_u32(&mut buf, COMMIT_OFF_CRC, crc);
    buf
}

/// Whether `buf` is a valid commit block for `seq`.
#[must_use]
pub fn is_commit(buf: &[u8], seq: u64) -> bool {
    buf.len() == BLOCK_SIZE
        && get_u32(buf, COMMIT_OFF_MAGIC) == JOURNAL_COMMIT_MAGIC
        && get_u64(buf, COMMIT_OFF_SEQ) == seq
        && get_u32(buf, COMMIT_OFF_CRC) == crc32c_excluding(&buf[..COMMIT_LEN], COMMIT_OFF_CRC)
}

/// Write a fresh (empty) journal with the given base sequence.
///
/// # Errors
///
/// Device errors.
pub fn reset<D: BlockDevice + ?Sized>(dev: &D, geo: &Geometry, base_seq: u64) -> FsResult<()> {
    dev.write_block(geo.journal_start, &encode_header(base_seq))?;
    // Invalidate the first record slot so stale descriptors from a
    // previous epoch cannot be replayed.
    if geo.journal_blocks > 1 {
        dev.write_block(geo.journal_start + 1, &vec![0u8; BLOCK_SIZE])?;
    }
    dev.flush()
}

/// Outcome of a journal replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Committed transactions applied.
    pub transactions: u64,
    /// Total block images written home.
    pub blocks: u64,
    /// Sequence number the journal was reset to.
    pub next_seq: u64,
}

/// Scan the journal and apply every fully-committed transaction, then
/// reset the journal. Idempotent: replaying twice applies the same
/// images, and the final reset empties the log.
///
/// Uncommitted or torn tails (bad descriptor, bad data CRC, missing
/// commit, sequence gap) terminate the scan silently — that is the
/// crash-consistency contract.
///
/// # Errors
///
/// Device errors; [`FsError::Corrupted`] if the journal header itself is
/// invalid, or a committed transaction targets a block outside the
/// device or inside the journal/superblock region (never legal, so it
/// is corruption rather than a torn tail).
pub fn replay<D: BlockDevice + ?Sized>(dev: &D, geo: &Geometry) -> FsResult<ReplayReport> {
    let mut hdr = vec![0u8; BLOCK_SIZE];
    dev.read_block(geo.journal_start, &mut hdr)?;
    let base_seq = decode_header(&hdr)?;

    let first = geo.journal_start + 1;
    let end = geo.journal_start + geo.journal_blocks;
    let mut cursor = first;
    let mut expected_seq = base_seq;
    let mut report = ReplayReport::default();
    let mut buf = vec![0u8; BLOCK_SIZE];

    'scan: loop {
        if cursor >= end {
            break;
        }
        dev.read_block(cursor, &mut buf)?;
        let (seq, tags) = match decode_descriptor(&buf) {
            Ok(Some(d)) => d,
            Ok(None) | Err(_) => break, // end of log or torn descriptor
        };
        if seq != expected_seq {
            break; // stale record from a previous journal epoch
        }
        // full transaction must fit before the journal end
        let data_start = cursor + 1;
        let commit_at = data_start + tags.len() as u64;
        if commit_at >= end {
            break;
        }
        // validate every data block against its tag CRC
        let mut images: Vec<(u64, Vec<u8>)> = Vec::with_capacity(tags.len());
        for (i, tag) in tags.iter().enumerate() {
            dev.read_block(data_start + i as u64, &mut buf)?;
            if crc32c(&buf) != tag.crc {
                break 'scan; // torn data block: uncommitted tail
            }
            images.push((tag.target, buf.clone()));
        }
        dev.read_block(commit_at, &mut buf)?;
        if !is_commit(&buf, seq) {
            break; // commit never made it: discard
        }
        // The transaction is committed: targets must be legal.
        for (target, _) in &images {
            let in_journal = *target >= geo.journal_start && *target < end;
            if *target >= geo.total_blocks || in_journal {
                return Err(corrupt("committed transaction targets an illegal block"));
            }
        }
        for (target, image) in images {
            dev.write_block(target, &image)?;
            report.blocks += 1;
        }
        report.transactions += 1;
        expected_seq += 1;
        cursor = commit_at + 1;
    }

    dev.flush()?;
    reset(dev, geo, expected_seq)?;
    report.next_seq = expected_seq;
    Ok(report)
}

fn corrupt(msg: &str) -> FsError {
    FsError::Corrupted {
        detail: format!("journal: {msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::MemDisk;

    fn geo() -> Geometry {
        Geometry::compute(4096, 1024, 64).unwrap()
    }

    /// Hand-write a transaction into the journal at `slot` (region block
    /// index, 1-based past the header).
    fn write_txn(dev: &MemDisk, g: &Geometry, slot: u64, seq: u64, writes: &[(u64, u8)]) -> u64 {
        let tags: Vec<TxnTag> = writes
            .iter()
            .map(|&(target, fill)| TxnTag {
                target,
                crc: crc32c(&vec![fill; BLOCK_SIZE]),
            })
            .collect();
        let mut at = g.journal_start + slot;
        dev.write_block(at, &encode_descriptor(seq, &tags)).unwrap();
        at += 1;
        for &(_, fill) in writes {
            dev.write_block(at, &vec![fill; BLOCK_SIZE]).unwrap();
            at += 1;
        }
        dev.write_block(at, &encode_commit(seq)).unwrap();
        at + 1 - g.journal_start
    }

    #[test]
    fn header_roundtrip() {
        let buf = encode_header(42);
        assert_eq!(decode_header(&buf).unwrap(), 42);
        let mut bad = buf.clone();
        bad[5] ^= 1;
        assert!(decode_header(&bad).is_err());
    }

    #[test]
    fn descriptor_roundtrip() {
        let tags = vec![
            TxnTag {
                target: 100,
                crc: 7,
            },
            TxnTag {
                target: 200,
                crc: 8,
            },
        ];
        let buf = encode_descriptor(9, &tags);
        assert_eq!(decode_descriptor(&buf).unwrap(), Some((9, tags)));
        assert_eq!(decode_descriptor(&vec![0u8; BLOCK_SIZE]).unwrap(), None);
    }

    #[test]
    fn commit_recognition() {
        let buf = encode_commit(5);
        assert!(is_commit(&buf, 5));
        assert!(!is_commit(&buf, 6));
        let mut bad = buf.clone();
        bad[8] ^= 1;
        assert!(!is_commit(&bad, 5));
    }

    #[test]
    fn replay_applies_committed_transactions_in_order() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        reset(&dev, &g, 10).unwrap();

        let target = g.data_start + 3;
        let next = write_txn(&dev, &g, 1, 10, &[(target, 0xAA)]);
        write_txn(&dev, &g, next, 11, &[(target, 0xBB), (target + 1, 0xCC)]);

        let report = replay(&dev, &g).unwrap();
        assert_eq!(report.transactions, 2);
        assert_eq!(report.blocks, 3);
        assert_eq!(report.next_seq, 12);

        let mut r = vec![0u8; BLOCK_SIZE];
        dev.read_block(target, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0xBB), "later txn wins");
        dev.read_block(target + 1, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0xCC));
    }

    #[test]
    fn replay_stops_at_missing_commit() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        reset(&dev, &g, 0).unwrap();

        let target = g.data_start;
        // descriptor + data, but no commit (simulated crash mid-commit)
        let tags = [TxnTag {
            target,
            crc: crc32c(&vec![1u8; BLOCK_SIZE]),
        }];
        dev.write_block(g.journal_start + 1, &encode_descriptor(0, &tags))
            .unwrap();
        dev.write_block(g.journal_start + 2, &vec![1u8; BLOCK_SIZE])
            .unwrap();

        let report = replay(&dev, &g).unwrap();
        assert_eq!(report.transactions, 0);
        let mut r = vec![0u8; BLOCK_SIZE];
        dev.read_block(target, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0), "uncommitted txn not applied");
    }

    #[test]
    fn replay_stops_at_torn_data_block() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        reset(&dev, &g, 0).unwrap();

        let target = g.data_start;
        let tags = [TxnTag {
            target,
            crc: crc32c(&vec![1u8; BLOCK_SIZE]),
        }];
        dev.write_block(g.journal_start + 1, &encode_descriptor(0, &tags))
            .unwrap();
        dev.write_block(g.journal_start + 2, &vec![2u8; BLOCK_SIZE])
            .unwrap(); // wrong content
        dev.write_block(g.journal_start + 3, &encode_commit(0))
            .unwrap();

        let report = replay(&dev, &g).unwrap();
        assert_eq!(report.transactions, 0, "CRC mismatch discards txn");
    }

    #[test]
    fn replay_ignores_stale_sequence_numbers() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        reset(&dev, &g, 5).unwrap();
        // a leftover transaction from an earlier epoch (seq 4)
        write_txn(&dev, &g, 1, 4, &[(g.data_start, 0x77)]);
        let report = replay(&dev, &g).unwrap();
        assert_eq!(report.transactions, 0);
    }

    #[test]
    fn replay_is_idempotent() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        reset(&dev, &g, 0).unwrap();
        write_txn(&dev, &g, 1, 0, &[(g.data_start + 9, 0x5A)]);

        let r1 = replay(&dev, &g).unwrap();
        assert_eq!(r1.transactions, 1);
        let r2 = replay(&dev, &g).unwrap();
        assert_eq!(r2.transactions, 0, "reset emptied the log");

        let mut r = vec![0u8; BLOCK_SIZE];
        dev.read_block(g.data_start + 9, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn replay_rejects_committed_txn_with_illegal_target() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        reset(&dev, &g, 0).unwrap();
        // committed transaction aimed at the journal itself
        write_txn(&dev, &g, 1, 0, &[(g.journal_start + 1, 0xEE)]);
        assert!(matches!(replay(&dev, &g), Err(FsError::Corrupted { .. })));
    }

    #[test]
    fn replay_requires_valid_header() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        // no header written at all
        assert!(replay(&dev, &g).is_err());
    }

    #[test]
    fn reset_clears_first_slot() {
        let g = geo();
        let dev = MemDisk::new(g.total_blocks);
        reset(&dev, &g, 0).unwrap();
        write_txn(&dev, &g, 1, 0, &[(g.data_start, 1)]);
        reset(&dev, &g, 1).unwrap();
        let report = replay(&dev, &g).unwrap();
        assert_eq!(report.transactions, 0, "old descriptor invalidated");
    }
}
