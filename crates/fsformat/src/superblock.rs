//! The superblock: block 0 of every image.

use crate::crc::crc32c_excluding;
use crate::layout::Geometry;
use crate::wire::{get_u32, get_u64, put_u32, put_u64};
use rae_blockdev::{BlockDevice, BLOCK_SIZE};
use rae_vfs::{FsError, FsResult};

/// Magic number identifying the format ("RAEF").
pub const SUPERBLOCK_MAGIC: u32 = 0x5241_4546;

/// Format version this implementation reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_BLOCK_SIZE: usize = 8;
const OFF_TOTAL_BLOCKS: usize = 12;
const OFF_INODE_COUNT: usize = 20;
const OFF_JOURNAL_START: usize = 24;
const OFF_JOURNAL_BLOCKS: usize = 32;
const OFF_IBMAP_START: usize = 40;
const OFF_IBMAP_BLOCKS: usize = 48;
const OFF_DBMAP_START: usize = 56;
const OFF_DBMAP_BLOCKS: usize = 64;
const OFF_ITABLE_START: usize = 72;
const OFF_ITABLE_BLOCKS: usize = 80;
const OFF_DATA_START: usize = 88;
const OFF_DATA_BLOCKS: usize = 96;
const OFF_FREE_INODES: usize = 104;
const OFF_FREE_BLOCKS: usize = 108;
const OFF_MOUNT_STATE: usize = 116;
const OFF_MOUNT_COUNT: usize = 120;
const OFF_CRC: usize = 124;
const SB_ENCODED_LEN: usize = 128;

/// Whether the filesystem was cleanly unmounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MountState {
    /// All state flushed; journal empty.
    Clean,
    /// Mounted (or crashed); the journal may hold committed transactions.
    Dirty,
}

impl MountState {
    fn as_u32(self) -> u32 {
        match self {
            MountState::Clean => 1,
            MountState::Dirty => 2,
        }
    }

    fn from_u32(v: u32) -> Option<MountState> {
        match v {
            1 => Some(MountState::Clean),
            2 => Some(MountState::Dirty),
            _ => None,
        }
    }
}

/// The decoded superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Region layout (geometry fields are stored explicitly on disk).
    pub geometry: Geometry,
    /// Free inode count (maintained on flush; authoritative copy is the
    /// bitmap — `fsck` cross-checks the two).
    pub free_inodes: u32,
    /// Free data block count (same caveat as `free_inodes`).
    pub free_blocks: u64,
    /// Clean/dirty mount state.
    pub mount_state: MountState,
    /// Number of times the filesystem has been mounted.
    pub mount_count: u32,
}

impl Superblock {
    /// Build the initial superblock for a fresh filesystem.
    ///
    /// Starts with the root inode allocated, everything else free.
    #[must_use]
    pub fn new(geometry: Geometry) -> Superblock {
        Superblock {
            geometry,
            free_inodes: geometry.inode_count - 2, // ino 0 reserved, ino 1 = root
            free_blocks: geometry.data_blocks,
            mount_state: MountState::Clean,
            mount_count: 0,
        }
    }

    /// Encode into a 4 KiB block image (bytes past the encoded length
    /// are zero).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let g = &self.geometry;
        let mut buf = vec![0u8; BLOCK_SIZE];
        put_u32(&mut buf, OFF_MAGIC, SUPERBLOCK_MAGIC);
        put_u32(&mut buf, OFF_VERSION, FORMAT_VERSION);
        put_u32(&mut buf, OFF_BLOCK_SIZE, BLOCK_SIZE as u32);
        put_u64(&mut buf, OFF_TOTAL_BLOCKS, g.total_blocks);
        put_u32(&mut buf, OFF_INODE_COUNT, g.inode_count);
        put_u64(&mut buf, OFF_JOURNAL_START, g.journal_start);
        put_u64(&mut buf, OFF_JOURNAL_BLOCKS, g.journal_blocks);
        put_u64(&mut buf, OFF_IBMAP_START, g.inode_bitmap_start);
        put_u64(&mut buf, OFF_IBMAP_BLOCKS, g.inode_bitmap_blocks);
        put_u64(&mut buf, OFF_DBMAP_START, g.data_bitmap_start);
        put_u64(&mut buf, OFF_DBMAP_BLOCKS, g.data_bitmap_blocks);
        put_u64(&mut buf, OFF_ITABLE_START, g.inode_table_start);
        put_u64(&mut buf, OFF_ITABLE_BLOCKS, g.inode_table_blocks);
        put_u64(&mut buf, OFF_DATA_START, g.data_start);
        put_u64(&mut buf, OFF_DATA_BLOCKS, g.data_blocks);
        put_u32(&mut buf, OFF_FREE_INODES, self.free_inodes);
        put_u64(&mut buf, OFF_FREE_BLOCKS, self.free_blocks);
        put_u32(&mut buf, OFF_MOUNT_STATE, self.mount_state.as_u32());
        put_u32(&mut buf, OFF_MOUNT_COUNT, self.mount_count);
        let crc = crc32c_excluding(&buf[..SB_ENCODED_LEN], OFF_CRC);
        put_u32(&mut buf, OFF_CRC, crc);
        buf
    }

    /// Decode and fully validate a superblock image.
    ///
    /// Validation covers magic, version, block size, checksum, region
    /// arithmetic (regions must tile the device without overlap), and
    /// free-count ranges — a crafted image must not survive this.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] describing the first failed check.
    pub fn decode(buf: &[u8]) -> FsResult<Superblock> {
        if buf.len() != BLOCK_SIZE {
            return Err(corrupt("superblock buffer is not one block"));
        }
        if get_u32(buf, OFF_MAGIC) != SUPERBLOCK_MAGIC {
            return Err(corrupt("bad superblock magic"));
        }
        if get_u32(buf, OFF_VERSION) != FORMAT_VERSION {
            return Err(corrupt("unsupported format version"));
        }
        if get_u32(buf, OFF_BLOCK_SIZE) as usize != BLOCK_SIZE {
            return Err(corrupt("unsupported block size"));
        }
        let stored_crc = get_u32(buf, OFF_CRC);
        let computed = crc32c_excluding(&buf[..SB_ENCODED_LEN], OFF_CRC);
        if stored_crc != computed {
            return Err(corrupt("superblock checksum mismatch"));
        }

        let geometry = Geometry {
            total_blocks: get_u64(buf, OFF_TOTAL_BLOCKS),
            inode_count: get_u32(buf, OFF_INODE_COUNT),
            journal_start: get_u64(buf, OFF_JOURNAL_START),
            journal_blocks: get_u64(buf, OFF_JOURNAL_BLOCKS),
            inode_bitmap_start: get_u64(buf, OFF_IBMAP_START),
            inode_bitmap_blocks: get_u64(buf, OFF_IBMAP_BLOCKS),
            data_bitmap_start: get_u64(buf, OFF_DBMAP_START),
            data_bitmap_blocks: get_u64(buf, OFF_DBMAP_BLOCKS),
            inode_table_start: get_u64(buf, OFF_ITABLE_START),
            inode_table_blocks: get_u64(buf, OFF_ITABLE_BLOCKS),
            data_start: get_u64(buf, OFF_DATA_START),
            data_blocks: get_u64(buf, OFF_DATA_BLOCKS),
        };
        let recomputed = Geometry::compute(
            geometry.total_blocks,
            geometry.inode_count,
            geometry.journal_blocks,
        )
        .map_err(|_| corrupt("superblock geometry parameters are degenerate"))?;
        if recomputed != geometry {
            return Err(corrupt("superblock region layout is inconsistent"));
        }

        let free_inodes = get_u32(buf, OFF_FREE_INODES);
        let free_blocks = get_u64(buf, OFF_FREE_BLOCKS);
        if free_inodes > geometry.inode_count.saturating_sub(2) {
            return Err(corrupt("free inode count exceeds inode count"));
        }
        if free_blocks > geometry.data_blocks {
            return Err(corrupt("free block count exceeds data block count"));
        }
        let mount_state = MountState::from_u32(get_u32(buf, OFF_MOUNT_STATE))
            .ok_or_else(|| corrupt("invalid mount state"))?;

        Ok(Superblock {
            geometry,
            free_inodes,
            free_blocks,
            mount_state,
            mount_count: get_u32(buf, OFF_MOUNT_COUNT),
        })
    }

    /// Read and validate the superblock from block 0 of `dev`.
    ///
    /// # Errors
    ///
    /// Device errors, or any [`Superblock::decode`] validation failure.
    pub fn read_from<D: BlockDevice + ?Sized>(dev: &D) -> FsResult<Superblock> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read_block(0, &mut buf)?;
        Superblock::decode(&buf)
    }

    /// Encode and write the superblock to block 0 of `dev`.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn write_to<D: BlockDevice + ?Sized>(&self, dev: &D) -> FsResult<()> {
        dev.write_block(0, &self.encode())
    }
}

fn corrupt(msg: &str) -> FsError {
    FsError::Corrupted {
        detail: format!("superblock: {msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::MemDisk;

    fn sample() -> Superblock {
        Superblock::new(Geometry::compute(4096, 1024, 256).unwrap())
    }

    #[test]
    fn encode_decode_roundtrip() {
        let sb = sample();
        let buf = sb.encode();
        assert_eq!(Superblock::decode(&buf).unwrap(), sb);
    }

    #[test]
    fn roundtrip_through_device() {
        let dev = MemDisk::new(4096);
        let mut sb = sample();
        sb.mount_state = MountState::Dirty;
        sb.mount_count = 7;
        sb.write_to(&dev).unwrap();
        assert_eq!(Superblock::read_from(&dev).unwrap(), sb);
    }

    #[test]
    fn initial_free_counts() {
        let sb = sample();
        assert_eq!(sb.free_inodes, 1022, "ino 0 reserved + root allocated");
        assert_eq!(sb.free_blocks, sb.geometry.data_blocks);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = sample().encode();
        buf[0] ^= 0xFF;
        assert!(matches!(
            Superblock::decode(&buf),
            Err(FsError::Corrupted { .. })
        ));
    }

    #[test]
    fn rejects_any_single_bit_flip_in_encoded_region() {
        let clean = sample().encode();
        for bit in [8 * 8 + 1, 20 * 8, 100 * 8 + 5, 126 * 8] {
            let mut buf = clean.clone();
            buf[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Superblock::decode(&buf).is_err(),
                "flip at bit {bit} survived validation"
            );
        }
    }

    #[test]
    fn rejects_inconsistent_layout_even_with_valid_crc() {
        // Forge a superblock whose fields are internally checksummed
        // correctly but describe an impossible layout.
        let sb = sample();
        let mut buf = sb.encode();
        put_u64(&mut buf, OFF_DATA_START, sb.geometry.data_start + 1);
        let crc = crc32c_excluding(&buf[..SB_ENCODED_LEN], OFF_CRC);
        put_u32(&mut buf, OFF_CRC, crc);
        let err = Superblock::decode(&buf).unwrap_err();
        assert!(matches!(err, FsError::Corrupted { .. }));
    }

    #[test]
    fn rejects_overstated_free_counts() {
        let mut sb = sample();
        sb.free_blocks = sb.geometry.data_blocks + 1;
        let buf = sb.encode();
        assert!(Superblock::decode(&buf).is_err());
    }

    #[test]
    fn rejects_invalid_mount_state() {
        let mut buf = sample().encode();
        put_u32(&mut buf, OFF_MOUNT_STATE, 9);
        let crc = crc32c_excluding(&buf[..SB_ENCODED_LEN], OFF_CRC);
        put_u32(&mut buf, OFF_CRC, crc);
        assert!(Superblock::decode(&buf).is_err());
    }
}
