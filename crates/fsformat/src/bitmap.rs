//! Allocation bitmaps (inode and data), with block-granular images for
//! journaling.

use crate::layout::BITS_PER_BLOCK;
use rae_blockdev::{BlockDevice, BLOCK_SIZE};
use rae_vfs::{FsError, FsResult};

/// A packed bitmap spanning one or more on-disk blocks.
///
/// Bit `i` of the data bitmap corresponds to data block
/// `geometry.data_start + i`; bit `i` of the inode bitmap to inode `i`
/// (bit 0, the null inode, is always set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u8>,
    nbits: u64,
}

impl Bitmap {
    /// A bitmap of `nbits` bits, all clear, sized up to whole blocks.
    #[must_use]
    pub fn new(nbits: u64) -> Bitmap {
        let nblocks = nbits.div_ceil(BITS_PER_BLOCK);
        Bitmap {
            bits: vec![0u8; (nblocks as usize) * BLOCK_SIZE],
            nbits,
        }
    }

    /// Load a bitmap of `nbits` bits from `nblocks` blocks starting at
    /// `start` on `dev`.
    ///
    /// # Errors
    ///
    /// Device errors; [`FsError::Corrupted`] if `nblocks` cannot hold
    /// `nbits`, or if any bit beyond `nbits` is set (trailing garbage —
    /// a crafted-image tell).
    pub fn load<D: BlockDevice + ?Sized>(
        dev: &D,
        start: u64,
        nblocks: u64,
        nbits: u64,
    ) -> FsResult<Bitmap> {
        if nblocks * BITS_PER_BLOCK < nbits {
            return Err(FsError::Corrupted {
                detail: "bitmap region too small for bit count".to_string(),
            });
        }
        let mut bits = vec![0u8; (nblocks as usize) * BLOCK_SIZE];
        for i in 0..nblocks {
            let off = (i as usize) * BLOCK_SIZE;
            dev.read_block(start + i, &mut bits[off..off + BLOCK_SIZE])?;
        }
        let bm = Bitmap { bits, nbits };
        for i in nbits..nblocks * BITS_PER_BLOCK {
            if bm.test_raw(i) {
                return Err(FsError::Corrupted {
                    detail: format!("bitmap has bit {i} set beyond its {nbits}-bit extent"),
                });
            }
        }
        Ok(bm)
    }

    /// Write every block of the bitmap to `dev` starting at `start`.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn store<D: BlockDevice + ?Sized>(&self, dev: &D, start: u64) -> FsResult<()> {
        for (i, chunk) in self.bits.chunks(BLOCK_SIZE).enumerate() {
            dev.write_block(start + i as u64, chunk)?;
        }
        Ok(())
    }

    /// Number of addressable bits.
    #[must_use]
    pub fn nbits(&self) -> u64 {
        self.nbits
    }

    /// Number of backing blocks.
    #[must_use]
    pub fn nblocks(&self) -> u64 {
        (self.bits.len() / BLOCK_SIZE) as u64
    }

    fn check(&self, i: u64) -> FsResult<()> {
        if i < self.nbits {
            Ok(())
        } else {
            Err(FsError::Corrupted {
                detail: format!("bitmap index {i} out of range {}", self.nbits),
            })
        }
    }

    fn test_raw(&self, i: u64) -> bool {
        self.bits[(i / 8) as usize] & (1 << (i % 8)) != 0
    }

    /// Whether bit `i` is set.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] for out-of-range indices (indices often
    /// come from on-disk structures).
    pub fn test(&self, i: u64) -> FsResult<bool> {
        self.check(i)?;
        Ok(self.test_raw(i))
    }

    /// Set bit `i`, returning its previous value.
    ///
    /// # Errors
    ///
    /// As [`Bitmap::test`].
    pub fn set(&mut self, i: u64) -> FsResult<bool> {
        self.check(i)?;
        let prev = self.test_raw(i);
        self.bits[(i / 8) as usize] |= 1 << (i % 8);
        Ok(prev)
    }

    /// Clear bit `i`, returning its previous value.
    ///
    /// # Errors
    ///
    /// As [`Bitmap::test`].
    pub fn clear(&mut self, i: u64) -> FsResult<bool> {
        self.check(i)?;
        let prev = self.test_raw(i);
        self.bits[(i / 8) as usize] &= !(1 << (i % 8));
        Ok(prev)
    }

    /// Find the first clear bit at or after `hint`, wrapping around.
    #[must_use]
    pub fn find_free_from(&self, hint: u64) -> Option<u64> {
        if self.nbits == 0 {
            return None;
        }
        let start = hint % self.nbits;
        let mut i = start;
        loop {
            if !self.test_raw(i) {
                return Some(i);
            }
            i = (i + 1) % self.nbits;
            if i == start {
                return None;
            }
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_set(&self) -> u64 {
        // trailing bits beyond nbits are guaranteed clear
        self.bits.iter().map(|b| u64::from(b.count_ones())).sum()
    }

    /// Number of clear bits within the addressable extent.
    #[must_use]
    pub fn count_clear(&self) -> u64 {
        self.nbits - self.count_set()
    }

    /// Overwrite backing block `idx` with a raw 4 KiB image (used when
    /// loading bitmaps through a page cache instead of the device).
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] on a misshapen image or out-of-range index.
    pub fn splice_block(&mut self, idx: u64, image: &[u8]) -> FsResult<()> {
        if image.len() != BLOCK_SIZE || idx >= self.nblocks() {
            return Err(FsError::Corrupted {
                detail: "bitmap block splice out of range".to_string(),
            });
        }
        let off = (idx as usize) * BLOCK_SIZE;
        self.bits[off..off + BLOCK_SIZE].copy_from_slice(image);
        Ok(())
    }

    /// Check that no bit beyond the addressable extent is set (the same
    /// guarantee [`Bitmap::load`] enforces, for bitmaps assembled via
    /// [`Bitmap::splice_block`]).
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] when trailing garbage bits are set.
    pub fn validate_tail(&self) -> FsResult<()> {
        for i in self.nbits..self.nblocks() * BITS_PER_BLOCK {
            if self.test_raw(i) {
                return Err(FsError::Corrupted {
                    detail: format!(
                        "bitmap has bit {i} set beyond its {}-bit extent",
                        self.nbits
                    ),
                });
            }
        }
        Ok(())
    }

    /// Index of the backing block containing bit `i` (for journaling).
    #[must_use]
    pub fn block_containing(i: u64) -> u64 {
        i / BITS_PER_BLOCK
    }

    /// The 4 KiB image of backing block `idx` (for journaling).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (internal indices, not disk data).
    #[must_use]
    pub fn block_image(&self, idx: u64) -> &[u8] {
        let off = (idx as usize) * BLOCK_SIZE;
        &self.bits[off..off + BLOCK_SIZE]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::MemDisk;

    #[test]
    fn set_clear_test() {
        let mut bm = Bitmap::new(100);
        assert!(!bm.test(5).unwrap());
        assert!(!bm.set(5).unwrap());
        assert!(bm.test(5).unwrap());
        assert!(bm.set(5).unwrap(), "second set reports previous value");
        assert!(bm.clear(5).unwrap());
        assert!(!bm.test(5).unwrap());
        assert!(!bm.clear(5).unwrap());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut bm = Bitmap::new(10);
        assert!(bm.test(10).is_err());
        assert!(bm.set(u64::MAX).is_err());
        assert!(bm.clear(10).is_err());
    }

    #[test]
    fn find_free_wraps_around_hint() {
        let mut bm = Bitmap::new(8);
        for i in 0..8 {
            bm.set(i).unwrap();
        }
        assert_eq!(bm.find_free_from(3), None);
        bm.clear(1).unwrap();
        assert_eq!(bm.find_free_from(3), Some(1), "wraps past the end");
        assert_eq!(bm.find_free_from(0), Some(1));
        assert_eq!(bm.find_free_from(1), Some(1));
    }

    #[test]
    fn counts() {
        let mut bm = Bitmap::new(1000);
        for i in (0..1000).step_by(3) {
            bm.set(i).unwrap();
        }
        assert_eq!(bm.count_set(), 334);
        assert_eq!(bm.count_clear(), 666);
    }

    #[test]
    fn store_load_roundtrip() {
        let dev = MemDisk::new(8);
        let mut bm = Bitmap::new(BITS_PER_BLOCK + 17); // spans 2 blocks
        bm.set(0).unwrap();
        bm.set(BITS_PER_BLOCK).unwrap();
        bm.set(BITS_PER_BLOCK + 16).unwrap();
        bm.store(&dev, 3).unwrap();

        let loaded = Bitmap::load(&dev, 3, 2, BITS_PER_BLOCK + 17).unwrap();
        assert_eq!(loaded, bm);
        assert_eq!(loaded.count_set(), 3);
    }

    #[test]
    fn load_rejects_trailing_garbage() {
        let dev = MemDisk::new(2);
        let mut block = vec![0u8; BLOCK_SIZE];
        block[BLOCK_SIZE - 1] = 0x80; // last bit of the block set
        dev.write_block(0, &block).unwrap();
        // claim only 8 bits are meaningful -> bit 32767 is garbage
        let err = Bitmap::load(&dev, 0, 1, 8).unwrap_err();
        assert!(matches!(err, FsError::Corrupted { .. }));
    }

    #[test]
    fn load_rejects_undersized_region() {
        let dev = MemDisk::new(1);
        assert!(Bitmap::load(&dev, 0, 1, BITS_PER_BLOCK + 1).is_err());
    }

    #[test]
    fn block_images_are_block_sized() {
        let bm = Bitmap::new(BITS_PER_BLOCK * 2);
        assert_eq!(bm.nblocks(), 2);
        assert_eq!(bm.block_image(0).len(), BLOCK_SIZE);
        assert_eq!(Bitmap::block_containing(BITS_PER_BLOCK), 1);
        assert_eq!(Bitmap::block_containing(BITS_PER_BLOCK - 1), 0);
    }
}
