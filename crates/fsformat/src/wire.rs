//! Little-endian field codec helpers shared by the format modules.

pub(crate) fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

pub(crate) fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

pub(crate) fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

pub(crate) fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = [0u8; 32];
        put_u16(&mut buf, 0, 0xBEEF);
        put_u32(&mut buf, 2, 0xDEAD_BEEF);
        put_u64(&mut buf, 6, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(&buf, 0), 0xBEEF);
        assert_eq!(get_u32(&buf, 2), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 6), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = [0u8; 4];
        put_u32(&mut buf, 0, 0x0102_0304);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
