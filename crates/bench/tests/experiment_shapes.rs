//! The experiments must keep producing the paper's *shapes* — these
//! tests run the fast-scale harness and assert the direction of every
//! result (who wins, what is zero, what is rejected).

use rae_bench::experiments::{self, Scale};

fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected filesystem bug"));
            if !is_injected {
                default_hook(info);
            }
        }));
    });
}

#[test]
fn table1_matches_paper_exactly() {
    let out = experiments::table1();
    assert!(out.contains("matches paper Table 1 exactly: true"), "{out}");
}

#[test]
fn figure1_has_eleven_years_summing_to_165() {
    let out = experiments::figure1();
    assert_eq!(out.lines().count(), 2 + 11, "{out}");
    let total: u64 = out
        .lines()
        .skip(2)
        .map(|l| {
            l.split_whitespace()
                .nth(1)
                .and_then(|t| t.parse::<u64>().ok())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(total, 165, "{out}");
}

#[test]
fn e1_base_beats_shadow() {
    let out = experiments::e1_base_vs_shadow(Scale::fast());
    for line in out.lines().filter(|l| l.starts_with("read-mostly")) {
        let speedup: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(speedup > 2.0, "base must clearly win: {line}");
    }
}

#[test]
fn e3_recovery_time_grows_with_log_length() {
    let out = experiments::e3_recovery_latency(Scale::fast());
    let times: Vec<f64> = out
        .lines()
        .filter(|l| {
            l.trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        })
        .map(|l| l.split_whitespace().nth(2).unwrap().parse().unwrap())
        .collect();
    assert!(times.len() >= 3, "{out}");
    assert!(
        times.last().unwrap() > times.first().unwrap(),
        "recovery time must grow with the log: {out}"
    );
}

#[test]
fn e4_rae_masks_everything() {
    quiet_panics();
    let out = experiments::e4_availability(Scale::fast());
    let rae_line = out.lines().find(|l| l.starts_with("rae")).unwrap();
    let fields: Vec<&str> = rae_line.split_whitespace().collect();
    let app_errors: u64 = fields[2].parse().unwrap();
    let recoveries: u64 = fields[3].parse().unwrap();
    assert_eq!(app_errors, 0, "RAE leaked runtime errors: {out}");
    assert!(recoveries > 0, "campaign never triggered: {out}");

    let cr_line = out
        .lines()
        .find(|l| l.starts_with("crash-remount"))
        .unwrap();
    let cr_ok: u64 = cr_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let rae_ok: u64 = fields[1].parse().unwrap();
    assert!(rae_ok > cr_ok, "RAE must complete more ops: {out}");
}

#[test]
fn e5_more_checks_cost_more() {
    let out = experiments::e5_check_cost(Scale::fast());
    let checks: Vec<u64> = out
        .lines()
        .filter(|l| l.starts_with("minimal") || l.starts_with("paranoid"))
        .map(|l| l.split_whitespace().nth(2).unwrap().parse().unwrap())
        .collect();
    assert_eq!(checks.len(), 4, "{out}");
    assert!(
        checks.windows(2).all(|w| w[0] <= w[1]),
        "check counts must be monotone across configs: {out}"
    );
    assert!(checks[3] > checks[0], "{out}");
}

#[test]
fn e6_control_is_clean_and_planted_bug_is_caught() {
    let out = experiments::e6_differential(Scale::fast());
    let control = out.lines().find(|l| l.starts_with("(control")).unwrap();
    assert!(control.contains("clean"), "{out}");
    let planted = out
        .lines()
        .find(|l| l.starts_with("always-silent-write"))
        .unwrap();
    assert!(planted.trim_end().ends_with("yes"), "{out}");
}

#[test]
fn e7_shadow_rejects_every_crafted_image() {
    let out = experiments::e7_crafted_images();
    let case_lines: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("rejected") || l.contains("ACCEPTED"))
        .collect();
    assert_eq!(case_lines.len(), 10, "{out}");
    for line in case_lines {
        assert!(line.contains("rejected cleanly"), "shadow accepted: {line}");
    }
}

#[test]
fn e8_every_scenario_reaches_a_terminal_state() {
    quiet_panics();
    let out = experiments::e8_recovery_resilience(true);
    assert!(out.contains("0 unexpected"), "{out}");
    // the control recovers on the first (cold) rung
    let control = out.lines().find(|l| l.starts_with("control")).unwrap();
    assert!(control.contains("recovered"), "{out}");
    assert!(control.contains(" cold "), "{out}");
    // every one-shot (transient) nested fault must be fully absorbed
    for line in out
        .lines()
        .filter(|l| l.contains("-once") || l.contains("dev-read-twice"))
    {
        assert!(
            line.contains("recovered"),
            "transient fault not absorbed: {line}\n{out}"
        );
    }
    // persistent replay faults sacrifice mutations, not the whole mount
    let deg = out
        .lines()
        .find(|l| l.starts_with("detected-replay-always"))
        .unwrap();
    assert!(deg.contains("degraded"), "{out}");
    assert!(deg.contains("cold>cold_retry"), "ladder order: {out}");
    // a persistent device fault takes even the degrade reboot down
    let off = out
        .lines()
        .find(|l| l.starts_with("dev-read-always"))
        .unwrap();
    assert!(off.contains("offline"), "{out}");
    assert!(
        off.contains("cold>cold_retry>degraded"),
        "ladder order: {out}"
    );
}

#[test]
fn e9_windows_split_around_the_recovery() {
    quiet_panics();
    let out = experiments::e9_tail_latency(Scale::fast(), true);
    assert!(out.contains("rung=cold"), "{out}");
    let field = |window: &str, idx: usize| -> f64 {
        out.lines()
            .find(|l| l.starts_with(window))
            .and_then(|l| l.split_whitespace().nth(idx))
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("missing {window} row: {out}"))
    };
    // the triggering op pays the recovery; the quiet windows do not
    assert!(field("during", 1) >= 1.0, "{out}");
    assert!(field("during", 5) > field("before", 5), "{out}");
    assert!(
        field("before", 1) > 100.0 && field("after", 1) > 100.0,
        "{out}"
    );
    assert!(out.contains("wrote BENCH_tail_latency.json"), "{out}");
    let json = std::fs::read_to_string("BENCH_tail_latency.json").unwrap();
    for key in [
        "\"experiment\": \"e9_tail_latency\"",
        "\"windows\"",
        "\"p999_us\"",
        "\"overhead\"",
        "\"within_budget\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
