//! Experiment implementations E1–E7 plus the bug-study artifacts.
//!
//! Every function returns the rendered table it printed, so integration
//! tests can assert on shapes (who wins, in which direction) without
//! re-parsing stdout.

use crate::harness::{
    fresh_device, fresh_latency_device, mount_base, mount_rae, ops_per_sec, populate_small_tree,
    timed,
};
use rae::{RaeConfig, RecoveryMode, RecoveryPath, StandbyOpts};
use rae_basefs::{BaseFs, BaseFsConfig};
use rae_blockdev::{BlockDevice, MemDisk};
use rae_faults::{standard_bug_corpus, BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_fsmodel::ModelFs;
use rae_shadowfs::{ShadowAsPrimary, ShadowFs, ShadowOpts};
use rae_vfs::{FileSystem, FsOp, OpRecord, OpenFlags};
use rae_workloads::{
    compare_outcomes, generate_script, populate_read_set, populate_write_set, run_reader_mix,
    run_script, run_writer_mix, Profile, ReadMix, ReadMixConfig, WriteMix, WriteMixConfig,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Scale factor: `fast` runs are ~5× smaller (CI-friendly).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Script steps for throughput experiments.
    pub steps: usize,
    /// Log lengths for the recovery-latency sweep.
    pub log_lengths: &'static [usize],
    /// Steps for the availability campaign.
    pub campaign_steps: usize,
}

impl Scale {
    /// Full-size experiments.
    #[must_use]
    pub fn full() -> Scale {
        Scale {
            steps: 3000,
            log_lengths: &[10, 50, 200, 1000, 4000],
            campaign_steps: 4000,
        }
    }

    /// Reduced experiments for quick runs and tests.
    #[must_use]
    pub fn fast() -> Scale {
        Scale {
            steps: 600,
            log_lengths: &[10, 50, 200],
            campaign_steps: 800,
        }
    }
}

// ---------------------------------------------------------------------
// T1 / F1: the bug study
// ---------------------------------------------------------------------

/// Reproduce Table 1 through the classification pipeline.
#[must_use]
pub fn table1() -> String {
    let records = rae_bugstudy::filter_study(rae_bugstudy::corpus());
    let summary = rae_bugstudy::summarize(&records);
    let mut out = rae_bugstudy::render_table1(&summary);
    let matches = summary.counts == rae_bugstudy::PAPER_TABLE1;
    let _ = writeln!(out, "matches paper Table 1 exactly: {matches}");
    out
}

/// Reproduce Figure 1 (deterministic bugs by year).
#[must_use]
pub fn figure1() -> String {
    let records = rae_bugstudy::filter_study(rae_bugstudy::corpus());
    let series = rae_bugstudy::figure1_series(&records);
    rae_bugstudy::render_figure1(&series)
}

// ---------------------------------------------------------------------
// E1: base vs shadow common-case throughput
// ---------------------------------------------------------------------

/// Build a populated image on a latency-wrapped device: `nfiles` 8 KiB
/// files spread over 16 directories, durable on disk. Latency is armed
/// only after population, so setup is instant.
fn prepopulated_latency_device(nfiles: usize) -> Arc<rae_blockdev::FaultyDisk<MemDisk>> {
    use rae_blockdev::{DiskFaultPlan, FaultyDisk};
    let mem = MemDisk::new(16384);
    rae_fsformat::mkfs(&mem, crate::harness::experiment_params()).expect("mkfs");
    let dev = Arc::new(FaultyDisk::new(mem));
    {
        let base = mount_base(dev.clone() as Arc<dyn BlockDevice>, FaultRegistry::new());
        for d in 0..16 {
            base.mkdir(&format!("/d{d:02}")).expect("mkdir");
        }
        for i in 0..nfiles {
            let path = format!("/d{:02}/file{i:04}", i % 16);
            let fd = base
                .open(&path, OpenFlags::RDWR | OpenFlags::CREATE)
                .expect("create");
            base.write(fd, 0, &vec![(i % 251) as u8; 8192])
                .expect("write");
            base.close(fd).expect("close");
        }
        base.unmount().expect("unmount");
    }
    dev.set_plan(
        DiskFaultPlan::new()
            .read_latency_ns(8_000)
            .write_latency_ns(16_000),
    );
    dev
}

/// Drive a read-mostly working-set workload (80 % open+read+close,
/// 10 % stat, 10 % readdir) over the pre-populated tree.
fn read_mostly_workload(fs: &dyn FileSystem, nfiles: usize, steps: usize, seed: u64) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..steps {
        let i = rng.gen_range(0..nfiles);
        let path = format!("/d{:02}/file{i:04}", i % 16);
        match rng.gen_range(0..10) {
            0 => {
                fs.stat(&path).expect("stat");
            }
            1 => {
                fs.readdir(&format!("/d{:02}", i % 16)).expect("readdir");
            }
            _ => {
                let fd = fs.open(&path, OpenFlags::RDONLY).expect("open");
                let off = rng.gen_range(0..2u64) * 4096;
                fs.read(fd, off, 4096).expect("read");
                fs.close(fd).expect("close");
            }
        }
    }
}

/// E1: ops/s of the base (caches, write-back, journal) vs the shadow
/// run as the primary filesystem (no caches, sync reads, full checks),
/// serving a read-mostly working set from an NVMe-latency device. This
/// is the paper's common case: the base's dentry/inode/page caches
/// absorb the device latency; the shadow walks from the root and reads
/// the device on every lookup.
#[must_use]
pub fn e1_base_vs_shadow(scale: Scale) -> String {
    let nfiles = 200;
    let steps = scale.steps;
    let mut out = String::from(
        "E1: common-case throughput over a pre-populated image (ops/s)\n\
         server       base_ops_s  shadow_ops_s  base_speedup\n",
    );
    for (label, seed) in [("read-mostly-1", 42u64), ("read-mostly-2", 43u64)] {
        let dev = prepopulated_latency_device(nfiles);
        let base = mount_base(dev as Arc<dyn BlockDevice>, FaultRegistry::new());
        let ((), d_base) = timed(|| read_mostly_workload(&base, nfiles, steps, seed));

        let dev = prepopulated_latency_device(nfiles);
        let shadow = ShadowAsPrimary::load(
            dev as Arc<dyn BlockDevice>,
            ShadowOpts {
                validate_image: false, // one-time cost, excluded from steady state
                ..ShadowOpts::default()
            },
        )
        .expect("shadow load");
        let ((), d_shadow) = timed(|| read_mostly_workload(&shadow, nfiles, steps, seed));

        let base_ops = ops_per_sec(steps, d_base);
        let shadow_ops = ops_per_sec(steps, d_shadow);
        let _ = writeln!(
            out,
            "{:<12} {:>11.0} {:>13.0} {:>12.1}x",
            label,
            base_ops,
            shadow_ops,
            base_ops / shadow_ops
        );
    }
    out
}

// ---------------------------------------------------------------------
// E2: the RAE common-case tax
// ---------------------------------------------------------------------

/// E2: ops/s of the raw base vs the RAE-wrapped base with no faults
/// armed — the price of operation recording, outcome capture, panic
/// catching, and log trimming on the common path.
#[must_use]
pub fn e2_rae_overhead(scale: Scale) -> String {
    let mut out = String::from(
        "E2: RAE common-case overhead (no faults armed)\n\
         profile      base_ops_s  rae_ops_s   overhead\n",
    );
    for profile in [Profile::Varmail, Profile::FileServer, Profile::WebServer] {
        let script = generate_script(profile, 7, scale.steps);

        let dev = fresh_latency_device();
        let base = mount_base(dev as Arc<dyn BlockDevice>, FaultRegistry::new());
        let (_, d_base) = timed(|| run_script(&base, &script));

        let dev = fresh_latency_device();
        let rae = mount_rae(dev as Arc<dyn BlockDevice>, RaeConfig::default());
        let (_, d_rae) = timed(|| run_script(&rae, &script));
        assert_eq!(rae.stats().recoveries, 0);

        let base_ops = ops_per_sec(script.len(), d_base);
        let rae_ops = ops_per_sec(script.len(), d_rae);
        let _ = writeln!(
            out,
            "{:<12} {:>11.0} {:>10.0} {:>9.1}%",
            profile.name(),
            base_ops,
            rae_ops,
            (base_ops / rae_ops - 1.0) * 100.0
        );
    }
    out
}

// ---------------------------------------------------------------------
// E3: recovery latency vs operation-log length
// ---------------------------------------------------------------------

/// E3: wall-clock recovery time as a function of the retained operation
/// log length, split by whether the shadow validates the whole image
/// first (§4.3: "the time required for recovery … does impact the
/// expected response time observed by applications").
#[must_use]
pub fn e3_recovery_latency(scale: Scale) -> String {
    let mut out = String::from(
        "E3: recovery latency vs retained log length\n\
         (phase columns from the validated run: contained reboot,\n\
         shadow load incl. fsck, constrained replay, hand-off)\n\
         log_len  replayed  total_ms(validated)  total_ms(unvalidated)  reboot  load  replay  handoff\n",
    );
    for &len in scale.log_lengths {
        let mut cells = [Duration::ZERO, Duration::ZERO];
        let mut phases = [Duration::ZERO; 4];
        let mut replayed = 0;
        for (i, validate) in [true, false].into_iter().enumerate() {
            let dev = fresh_device();
            let faults = FaultRegistry::new();
            let config = RaeConfig {
                base: BaseFsConfig {
                    faults: faults.clone(),
                    ..BaseFsConfig::default()
                },
                shadow: ShadowOpts {
                    validate_image: validate,
                    ..ShadowOpts::default()
                },
                max_log_records: usize::MAX,
                ..RaeConfig::default()
            };
            let fs = mount_rae(dev as Arc<dyn BlockDevice>, config);
            // build a log of `len` unsynced mutations
            for k in 0..len {
                let fd = fs
                    .open(&format!("/f{k:05}"), OpenFlags::RDWR | OpenFlags::CREATE)
                    .unwrap();
                fs.write(fd, 0, &[k as u8; 512]).unwrap();
                fs.close(fd).unwrap();
            }
            // one more op trips a planted bug -> recovery
            faults.arm(BugSpec::new(
                9000,
                "trigger",
                Site::Alloc,
                Trigger::Always,
                Effect::DetectedError,
            ));
            fs.mkdir("/trigger").unwrap();
            let reports = fs.recovery_reports();
            assert_eq!(reports.len(), 1);
            cells[i] = reports[0].duration;
            replayed = reports[0].records_replayed;
            if validate {
                phases = [
                    reports[0].reboot_time,
                    reports[0].shadow_load_time,
                    reports[0].replay_time,
                    reports[0].handoff_time,
                ];
            }
        }
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let _ = writeln!(
            out,
            "{:>7} {:>9} {:>20.2} {:>22.2} {:>7.1} {:>5.1} {:>7.1} {:>8.1}",
            len,
            replayed,
            ms(cells[0]),
            ms(cells[1]),
            ms(phases[0]),
            ms(phases[1]),
            ms(phases[2]),
            ms(phases[3]),
        );
    }
    out
}

/// E3b: warm-standby handover vs cold replay at the same retained log
/// length. The cold column grows with the log; the warm column only
/// pays the contained reboot, the in-flight tail drain and the
/// hand-off, so it should stay ~flat — the O(retained log) vs
/// O(in-flight) separation the standby subsystem exists for.
#[must_use]
pub fn e3b_warm_recovery(scale: Scale) -> String {
    let mut out = String::from(
        "E3b: cold replay vs warm standby handover\n\
         (unvalidated shadow; warm waits for the standby to catch up\n\
         before the bug fires, so the drain is the in-flight tail only)\n\
         log_len  cold_ms  cold_replayed  warm_ms  warm_drained\n",
    );
    for &len in scale.log_lengths {
        let mut total = [Duration::ZERO; 2];
        let mut replayed = [0u64; 2];
        for (i, warm) in [false, true].into_iter().enumerate() {
            let dev = fresh_device();
            let faults = FaultRegistry::new();
            let config = RaeConfig {
                base: BaseFsConfig {
                    faults: faults.clone(),
                    ..BaseFsConfig::default()
                },
                shadow: ShadowOpts {
                    validate_image: false,
                    ..ShadowOpts::default()
                },
                max_log_records: usize::MAX,
                standby: StandbyOpts {
                    enabled: warm,
                    ..StandbyOpts::default()
                },
                ..RaeConfig::default()
            };
            let fs = mount_rae(dev as Arc<dyn BlockDevice>, config);
            for k in 0..len {
                let fd = fs
                    .open(&format!("/f{k:05}"), OpenFlags::RDWR | OpenFlags::CREATE)
                    .unwrap();
                fs.write(fd, 0, &[k as u8; 512]).unwrap();
                fs.close(fd).unwrap();
            }
            if warm {
                while fs.stats().standby_lag > 0 {
                    std::thread::yield_now();
                }
            }
            faults.arm(BugSpec::new(
                9000,
                "trigger",
                Site::Alloc,
                Trigger::Always,
                Effect::DetectedError,
            ));
            fs.mkdir("/trigger").unwrap();
            let reports = fs.recovery_reports();
            assert_eq!(reports.len(), 1);
            assert_eq!(
                reports[0].path,
                if warm {
                    RecoveryPath::Warm
                } else {
                    RecoveryPath::Cold
                }
            );
            total[i] = reports[0].duration;
            replayed[i] = reports[0].records_replayed;
        }
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let _ = writeln!(
            out,
            "{:>7} {:>8.2} {:>13} {:>8.2} {:>12}",
            len,
            ms(total[0]),
            replayed[0],
            ms(total[1]),
            replayed[1],
        );
    }
    out
}

// ---------------------------------------------------------------------
// E4: availability campaign
// ---------------------------------------------------------------------

/// E4: the same fault-riddled workload under the three recovery
/// policies. RAE must mask every detected bug (zero app-visible runtime
/// errors); crash-remount turns each into application-visible failures
/// plus lost descriptors; error-return leaks raw errors.
#[must_use]
pub fn e4_availability(scale: Scale) -> String {
    let mut out = String::from(
        "E4: availability under the standard bug corpus\n\
         policy        ok_ops  app_errors  recoveries  downtime_ms  masked\n",
    );
    for (label, mode) in [
        ("rae", RecoveryMode::Rae),
        ("crash-remount", RecoveryMode::CrashRemount),
        ("error-return", RecoveryMode::ErrorReturn),
    ] {
        let script = generate_script(Profile::FileServer, 1234, scale.campaign_steps);
        let dev = fresh_device();
        let faults = FaultRegistry::with_seed(7);
        for bug in standard_bug_corpus() {
            // skip the always-on mount bug (mount must succeed to run)
            if bug.site == Site::MountImage {
                continue;
            }
            faults.arm(bug);
        }
        let config = RaeConfig {
            base: BaseFsConfig {
                faults: faults.clone(),
                ..BaseFsConfig::default()
            },
            mode,
            shadow: ShadowOpts {
                validate_image: false, // campaign speed; checks stay on
                ..ShadowOpts::default()
            },
            ..RaeConfig::default()
        };
        let fs = mount_rae(dev as Arc<dyn BlockDevice>, config);
        let outcome = run_script(&fs, &script);

        // separate the spec errors the workload legitimately produces
        // (ENOENT on a random path…) from runtime-error leakage: count
        // errno 117 (EUCLEAN) and errno 5 (EIO) as app-visible failures
        let app_errors = outcome
            .steps
            .iter()
            .filter(|s| matches!(s, rae_workloads::StepResult::Errno(5 | 117 | 9)))
            .count();
        let stats = fs.stats();
        let _ = writeln!(
            out,
            "{:<13} {:>6} {:>11} {:>11} {:>12.2} {:>7}",
            label,
            script.len() - outcome.errors as usize,
            app_errors,
            stats.recoveries,
            stats.recovery_time_ns as f64 / 1e6,
            stats.ops_masked,
        );
    }
    out
}

// ---------------------------------------------------------------------
// E5: the shadow's check battery
// ---------------------------------------------------------------------

/// E4b: client-observed operation latency under a recurring
/// deterministic bug — the paper's §4.3 point that recovery time shows
/// up as response-time tail for applications with in-flight
/// operations. Percentiles over create+write+close transactions.
#[must_use]
pub fn e4b_latency_tail(scale: Scale) -> String {
    use std::time::Instant;
    let ops = scale.campaign_steps.min(2000);
    let mut out = String::from(
        "E4b: client-observed latency with a recurring masked bug\n\
         policy        p50_us    p99_us     max_us  recoveries\n",
    );
    for (label, bug_every) in [("no-faults", 0u64), ("bug-every-300", 300)] {
        let dev = fresh_device();
        let faults = FaultRegistry::new();
        if bug_every > 0 {
            faults.arm(BugSpec::new(
                9100,
                "recurring",
                Site::Alloc,
                Trigger::EveryNth(bug_every),
                Effect::DetectedError,
            ));
        }
        let config = RaeConfig {
            base: BaseFsConfig {
                faults,
                ..BaseFsConfig::default()
            },
            shadow: ShadowOpts {
                validate_image: false,
                ..ShadowOpts::default()
            },
            ..RaeConfig::default()
        };
        let fs = mount_rae(dev as Arc<dyn BlockDevice>, config);
        let mut lat_us: Vec<f64> = Vec::with_capacity(ops);
        for i in 0..ops {
            let t0 = Instant::now();
            let fd = fs
                .open(&format!("/f{i:06}"), OpenFlags::RDWR | OpenFlags::CREATE)
                .expect("open");
            fs.write(fd, 0, &[7u8; 256]).expect("write");
            fs.close(fd).expect("close");
            lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        lat_us.sort_by(f64::total_cmp);
        let pick = |q: f64| lat_us[(q * (lat_us.len() - 1) as f64) as usize];
        let _ = writeln!(
            out,
            "{:<13} {:>7.1} {:>9.1} {:>10.1} {:>11}",
            label,
            pick(0.50),
            pick(0.99),
            lat_us.last().unwrap(),
            fs.stats().recoveries,
        );
    }
    out
}

// ---------------------------------------------------------------------
// E4c: concurrent read scaling
// ---------------------------------------------------------------------

const E4C_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Workload shape per mix. The read-miss set (64 × 32 KiB = 512 data
/// blocks) is sized against a deliberately small page cache so a large
/// fraction of reads touch the latency-modelled device.
fn e4c_mix_config(mix: ReadMix, scale: Scale) -> ReadMixConfig {
    match mix {
        ReadMix::ReadHit | ReadMix::Mixed90R10W => ReadMixConfig {
            nfiles: 32,
            file_size: 16 * 1024,
            read_size: 1024,
            ops_per_thread: scale.steps,
            seed: 0xE4C,
            mix,
        },
        ReadMix::ReadMiss => ReadMixConfig {
            nfiles: 64,
            file_size: 32 * 1024,
            read_size: 4096,
            ops_per_thread: (scale.steps / 2).max(100),
            seed: 0xE4C,
            mix,
        },
    }
}

fn e4c_base_config(serial: bool, mix: ReadMix) -> BaseFsConfig {
    BaseFsConfig {
        page_cache_blocks: if matches!(mix, ReadMix::ReadMiss) {
            256 // half the read-miss working set: forces device reads
        } else {
            2048
        },
        serial_reads: serial,
        cache_shards: if serial { Some(1) } else { None },
        ..BaseFsConfig::default()
    }
}

/// One (mix, mode) sweep: mount, populate, then run the thread ladder
/// on the same warm mount. Returns `(threads, ops/s)` per rung.
fn e4c_measure(mix: ReadMix, serial: bool, scale: Scale) -> Vec<(usize, f64)> {
    let cfg = e4c_mix_config(mix, scale);
    // 50 µs reads: slow enough that misses are genuinely I/O-bound and
    // their latency overlaps across reader threads (see harness docs)
    let dev = crate::harness::fresh_custom_latency_device(50_000, 16_000);
    let fs = Arc::new(
        BaseFs::mount(dev as Arc<dyn BlockDevice>, e4c_base_config(serial, mix))
            .expect("mount base"),
    );
    populate_read_set(fs.as_ref(), &cfg).expect("populate read set");
    // untimed warm-up: fill the cache to steady state and spin up the
    // CPU before the first timed rung
    let warm = ReadMixConfig {
        ops_per_thread: cfg.ops_per_thread / 2,
        ..cfg
    };
    let _ = run_reader_mix(&fs, &warm, 2).expect("warm-up");
    E4C_THREADS
        .iter()
        .map(|&threads| {
            let report = run_reader_mix(&fs, &cfg, threads).unwrap_or_else(|e| {
                panic!(
                    "reader mix failed: mix={} serial={serial} threads={threads}: {e:?}",
                    cfg.mix.label()
                )
            });
            (threads, report.ops_per_sec())
        })
        .collect()
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One E4c sweep: (mix label, mode label, per-thread-count ops/s).
type E4cRow = (&'static str, &'static str, Vec<(usize, f64)>);

fn e4c_render_json(rows: &[E4cRow]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"e4c_read_scaling\",\n");
    json.push_str("  \"threads\": [1, 2, 4, 8],\n");
    let _ = writeln!(json, "  \"host_cpus\": {},", host_cpus());
    json.push_str("  \"results\": [\n");
    for (i, (mix, mode, ladder)) in rows.iter().enumerate() {
        let ops: Vec<String> = ladder.iter().map(|(_, o)| format!("{o:.0}")).collect();
        let speedup = ladder.last().expect("ladder").1 / ladder[0].1.max(f64::MIN_POSITIVE);
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mix\": \"{mix}\", \"mode\": \"{mode}\", \"ops_per_sec\": [{}], \"speedup_8t_over_1t\": {speedup:.2}}}{comma}",
            ops.join(", "),
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// E4c: throughput of 1–8 reader threads against one mounted base, for
/// cache-resident reads, device-bound reads, and a 90:10 read/write
/// mix. The pre-concurrency configuration (`serial_reads` plus a
/// single page-cache shard) runs as the in-tree baseline, so the
/// before/after comparison is measured live rather than quoted.
///
/// Side effect: writes `BENCH_concurrency.json` into the working
/// directory (the committed artifact at the repo root).
#[must_use]
pub fn e4c_read_scaling(scale: Scale) -> String {
    let mut out = String::new();
    let shards = BaseFs::mount(
        fresh_device() as Arc<dyn BlockDevice>,
        e4c_base_config(false, ReadMix::ReadHit),
    )
    .expect("mount base")
    .cache_shard_count();
    let _ = writeln!(
        out,
        "E4c: concurrent read scaling ({} ops/thread, {shards} cache shards when concurrent, {} host CPUs)",
        scale.steps,
        host_cpus()
    );
    let _ = writeln!(
        out,
        "(cache-resident mixes are CPU-bound: their scaling ceiling is the host CPU count;"
    );
    let _ = writeln!(
        out,
        " the read-miss mix is I/O-bound and scales with overlapped device latency)"
    );
    let _ = writeln!(
        out,
        "{:<13} {:<16} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "mix", "mode", "1t", "2t", "4t", "8t", "8t/1t"
    );
    let mut rows: Vec<E4cRow> = Vec::new();
    for mix in [ReadMix::ReadHit, ReadMix::ReadMiss, ReadMix::Mixed90R10W] {
        for (mode, serial) in [("serial_baseline", true), ("concurrent", false)] {
            let ladder = e4c_measure(mix, serial, scale);
            let speedup = ladder.last().expect("ladder").1 / ladder[0].1.max(f64::MIN_POSITIVE);
            let _ = writeln!(
                out,
                "{:<13} {:<16} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>6.2}x",
                mix.label(),
                mode,
                ladder[0].1,
                ladder[1].1,
                ladder[2].1,
                ladder[3].1,
                speedup
            );
            rows.push((mix.label(), mode, ladder));
        }
    }
    let json = e4c_render_json(&rows);
    match std::fs::write("BENCH_concurrency.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote BENCH_concurrency.json");
        }
        Err(e) => {
            let _ = writeln!(out, "(could not write BENCH_concurrency.json: {e})");
        }
    }
    out
}

// ---------------------------------------------------------------------
// E11: concurrent write scaling (group commit + inode sharding)
// ---------------------------------------------------------------------

const E11_THREADS: [usize; 4] = [1, 2, 4, 8];

fn e11_mix_config(mix: WriteMix, scale: Scale, smoke: bool) -> WriteMixConfig {
    WriteMixConfig {
        nfiles: 32,
        file_size: 32 * 1024,
        write_size: 4096,
        ops_per_thread: if smoke {
            200
        } else {
            (scale.steps / 2).max(200)
        },
        seed: 0xE11,
        mix,
        // periodic per-thread fsyncs: the commit pressure that group
        // commit coalesces when threads overlap
        fsync_every: 8,
    }
}

fn e11_base_config(serial: bool, telemetry: Arc<rae_telemetry::Telemetry>) -> BaseFsConfig {
    BaseFsConfig {
        serial_writes: serial,
        // small leader wait so overlapping fsyncs reliably share a
        // batch instead of racing past each other on a fast device
        group_commit_leader_wait_us: 50,
        telemetry: Some(telemetry),
        ..BaseFsConfig::default()
    }
}

/// One (mix, mode) sweep on a fresh write-latency-heavy device:
/// populate, warm up, then run the thread ladder on the same warm
/// mount. Returns `(threads, ops/s, mean commit batch)` per rung — the
/// batch mean comes from the telemetry histogram delta across the
/// rung, so each rung reports its own contention level.
fn e11_measure(mix: WriteMix, serial: bool, scale: Scale, smoke: bool) -> Vec<(usize, f64, f64)> {
    let cfg = e11_mix_config(mix, scale, smoke);
    // 50 µs writes: the journal flush is genuinely I/O-bound, so
    // coalescing N fsyncs into one flush shows up as throughput
    let dev = crate::harness::fresh_custom_latency_device(16_000, 50_000);
    let telemetry = rae_telemetry::Telemetry::new();
    let fs = Arc::new(
        BaseFs::mount(
            dev as Arc<dyn BlockDevice>,
            e11_base_config(serial, Arc::clone(&telemetry)),
        )
        .expect("mount base"),
    );
    populate_write_set(fs.as_ref(), &cfg).expect("populate write set");
    let warm = WriteMixConfig {
        ops_per_thread: cfg.ops_per_thread / 2,
        ..cfg
    };
    let _ = run_writer_mix(&fs, &warm, 2).expect("warm-up");
    E11_THREADS
        .iter()
        .map(|&threads| {
            let before = telemetry.snapshot().commit_batch;
            let report = run_writer_mix(&fs, &cfg, threads).unwrap_or_else(|e| {
                panic!(
                    "writer mix failed: mix={} serial={serial} threads={threads}: {e:?}",
                    cfg.mix.label()
                )
            });
            let after = telemetry.snapshot().commit_batch;
            let commits = after.count.saturating_sub(before.count);
            let batch_mean = if commits == 0 {
                0.0
            } else {
                after.sum.saturating_sub(before.sum) as f64 / commits as f64
            };
            (threads, report.ops_per_sec(), batch_mean)
        })
        .collect()
}

/// One E11 sweep: (mix label, mode label, per-rung (threads, ops/s,
/// batch mean)).
type E11Row = (&'static str, &'static str, Vec<(usize, f64, f64)>);

fn e11_render_json(rows: &[E11Row]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"e11_write_scaling\",\n");
    json.push_str("  \"threads\": [1, 2, 4, 8],\n");
    let _ = writeln!(json, "  \"host_cpus\": {},", host_cpus());
    json.push_str("  \"results\": [\n");
    for (i, (mix, mode, ladder)) in rows.iter().enumerate() {
        let ops: Vec<String> = ladder.iter().map(|(_, o, _)| format!("{o:.0}")).collect();
        let batches: Vec<String> = ladder.iter().map(|(_, _, b)| format!("{b:.2}")).collect();
        let speedup = ladder.last().expect("ladder").1 / ladder[0].1.max(f64::MIN_POSITIVE);
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"mix\": \"{mix}\", \"mode\": \"{mode}\", \"ops_per_sec\": [{}], \"commit_batch_mean\": [{}], \"speedup_8t_over_1t\": {speedup:.2}}}{comma}",
            ops.join(", "),
            batches.join(", "),
        );
    }
    json.push_str("  ]\n}\n");
    json
}

/// E11: throughput of 1–8 writer threads against one mounted base, for
/// a write-heavy mix and two read/write blends, with periodic fsyncs
/// supplying commit pressure. The pre-sharding configuration
/// (`serial_writes`: every mutation takes the filesystem-wide
/// exclusive lock) runs as the in-tree baseline, so the before/after
/// comparison is measured live rather than quoted. The mean journal
/// commit batch per rung (from the telemetry histogram) shows group
/// commit engaging as contention rises.
///
/// Side effect: writes `BENCH_write_scaling.json` into the working
/// directory (the committed artifact at the repo root).
#[must_use]
pub fn e11_write_scaling(scale: Scale, smoke: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E11: concurrent write scaling ({} ops/thread, fsync every 8 writes, {} host CPUs)",
        e11_mix_config(WriteMix::WriteHeavy, scale, smoke).ops_per_thread,
        host_cpus()
    );
    let _ = writeln!(
        out,
        "(serial_baseline: whole-FS exclusive mutations; concurrent: per-inode stripes +"
    );
    let _ = writeln!(
        out,
        " group commit. batch = mean ops per journal commit at that thread count)"
    );
    let _ = writeln!(
        out,
        "{:<13} {:<16} {:>8} {:>8} {:>8} {:>8} {:>7} {:>9}",
        "mix", "mode", "1t", "2t", "4t", "8t", "8t/1t", "batch@8t"
    );
    let mut rows: Vec<E11Row> = Vec::new();
    for mix in [
        WriteMix::WriteHeavy,
        WriteMix::Mixed10R90W,
        WriteMix::Mixed50R50W,
    ] {
        for (mode, serial) in [("serial_baseline", true), ("concurrent", false)] {
            let ladder = e11_measure(mix, serial, scale, smoke);
            let speedup = ladder.last().expect("ladder").1 / ladder[0].1.max(f64::MIN_POSITIVE);
            let _ = writeln!(
                out,
                "{:<13} {:<16} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>6.2}x {:>9.2}",
                mix.label(),
                mode,
                ladder[0].1,
                ladder[1].1,
                ladder[2].1,
                ladder[3].1,
                speedup,
                ladder.last().expect("ladder").2,
            );
            rows.push((mix.label(), mode, ladder));
        }
    }
    let json = e11_render_json(&rows);
    match std::fs::write("BENCH_write_scaling.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote BENCH_write_scaling.json");
        }
        Err(e) => {
            let _ = writeln!(out, "(could not write BENCH_write_scaling.json: {e})");
        }
    }
    out
}

/// Build a recorded operation sequence by running ops through an
/// autonomous shadow (a stand-in for the base's recorder, entirely
/// in-memory).
fn build_records(dev: &Arc<MemDisk>, n: usize) -> Vec<OpRecord> {
    let mut generator = ShadowFs::load(
        dev.clone() as Arc<dyn BlockDevice>,
        ShadowOpts {
            validate_image: false,
            paranoid_checks: false,
            refinement_check: false,
        },
    )
    .expect("generator load");
    let mut records = Vec::with_capacity(n * 3);
    let mut seq = 0u64;
    let mut push = |records: &mut Vec<OpRecord>, generator: &mut ShadowFs, op: FsOp| {
        let outcome = generator.execute_autonomous(&op).expect("generate");
        seq += 1;
        let mut rec = OpRecord::new(seq, op);
        rec.complete(outcome);
        records.push(rec);
    };
    for k in 0..n {
        push(
            &mut records,
            &mut generator,
            FsOp::Create {
                path: format!("/e5-{k:05}"),
                flags: OpenFlags::RDWR | OpenFlags::CREATE,
            },
        );
        push(
            &mut records,
            &mut generator,
            FsOp::Write {
                fd: rae_vfs::Fd(3),
                offset: 0,
                data: vec![k as u8; 2048].into(),
            },
        );
        push(
            &mut records,
            &mut generator,
            FsOp::Close { fd: rae_vfs::Fd(3) },
        );
    }
    records
}

/// E5: replay cost of the same record sequence under the shadow's
/// check configurations — the "extensive runtime checks" are free at
/// common-case time (they only run during recovery) but not free at
/// recovery time; this quantifies them.
#[must_use]
pub fn e5_check_cost(scale: Scale) -> String {
    let n = (scale.steps / 6).max(50);
    let dev = fresh_device();
    let records = build_records(&dev, n);

    let configs: [(&str, ShadowOpts); 4] = [
        (
            "minimal",
            ShadowOpts {
                validate_image: false,
                paranoid_checks: false,
                refinement_check: false,
            },
        ),
        (
            "paranoid",
            ShadowOpts {
                validate_image: false,
                paranoid_checks: true,
                refinement_check: false,
            },
        ),
        (
            "paranoid+fsck",
            ShadowOpts {
                validate_image: true,
                paranoid_checks: true,
                refinement_check: false,
            },
        ),
        (
            "paranoid+fsck+model",
            ShadowOpts {
                validate_image: true,
                paranoid_checks: true,
                refinement_check: true,
            },
        ),
    ];
    let mut out = String::from(
        "E5: shadow check-battery cost (constrained replay of the same log)\n\
         config                records  checks_run  replay_ms\n",
    );
    for (label, opts) in configs {
        // min of three runs: replay is short enough to be noisy
        let mut best = Duration::MAX;
        let mut checks = 0;
        for _ in 0..3 {
            let mut shadow =
                ShadowFs::load(dev.clone() as Arc<dyn BlockDevice>, opts).expect("shadow load");
            let (report, d) = timed(|| shadow.replay_constrained(&records).expect("replay"));
            assert!(report.is_clean(), "{label}: {:?}", report.discrepancies);
            best = best.min(d);
            checks = shadow.checks_performed();
        }
        let _ = writeln!(
            out,
            "{:<21} {:>8} {:>11} {:>10.2}",
            label,
            records.len(),
            checks,
            best.as_secs_f64() * 1e3
        );
    }
    out
}

// ---------------------------------------------------------------------
// E6: differential testing (the shadow as a post-error testing tool)
// ---------------------------------------------------------------------

/// E6: arm each *silent* bug from the corpus on the base and run the
/// same chaos script against the base and the executable spec; count
/// divergences. Silent wrong results are invisible to the application
/// and to error detection — only cross-checking finds them (§4.3).
#[must_use]
pub fn e6_differential(scale: Scale) -> String {
    let mut out = String::from(
        "E6: differential detection of silent bugs (base vs spec)\n\
         (MISSED is possible when the corrupted evidence was itself\n\
         overwritten or deleted before any read or the final tree dump)\n\
         bug                          fired  divergent_steps  tree_diffs  detected\n",
    );
    let silent_bugs: Vec<BugSpec> = standard_bug_corpus()
        .into_iter()
        .filter(|b| b.effect == Effect::SilentWrongResult)
        .collect();
    // plus a hand-rolled always-on silent bug for a guaranteed positive
    let mut bugs = silent_bugs;
    bugs.push(BugSpec::new(
        9001,
        "always-silent-write",
        Site::Write,
        Trigger::EveryNth(5),
        Effect::SilentWrongResult,
    ));

    let script = generate_script(Profile::Chaos, 99, scale.campaign_steps);
    let reference_model = ModelFs::new();
    let reference = run_script(&reference_model, &script);
    let reference_tree = rae_workloads::dump_tree(&reference_model).expect("tree");

    for bug in bugs {
        let dev = fresh_device();
        let faults = FaultRegistry::with_seed(3);
        let name = bug.name.clone();
        faults.arm(bug);
        let base = mount_base(dev as Arc<dyn BlockDevice>, faults.clone());
        let outcome = run_script(&base, &script);
        let divergences = compare_outcomes(&reference, &outcome);
        // final-state cross-check: catches corruption no read observed
        let base_tree = rae_workloads::dump_tree(&base).expect("tree");
        let tree_diffs = rae_workloads::diff_trees(&reference_tree, &base_tree);
        let fired = faults.total_fired();
        let _ = writeln!(
            out,
            "{:<28} {:>5} {:>16} {:>10} {:>9}",
            name,
            fired,
            divergences.len(),
            tree_diffs.len(),
            if fired == 0 {
                "n/a (never fired)"
            } else if divergences.is_empty() && tree_diffs.is_empty() {
                "MISSED"
            } else {
                "yes"
            }
        );
    }
    // control: no bugs armed -> zero divergence
    let dev = fresh_device();
    let base = mount_base(dev as Arc<dyn BlockDevice>, FaultRegistry::new());
    let outcome = run_script(&base, &script);
    let clean = compare_outcomes(&reference, &outcome);
    let base_tree = rae_workloads::dump_tree(&base).expect("tree");
    let clean_tree = rae_workloads::diff_trees(&reference_tree, &base_tree);
    let _ = writeln!(
        out,
        "{:<28} {:>5} {:>16} {:>10} {:>9}",
        "(control: no bugs)",
        0,
        clean.len(),
        clean_tree.len(),
        if clean.is_empty() && clean_tree.is_empty() {
            "clean"
        } else {
            "FALSE POSITIVE"
        }
    );
    out
}

// ---------------------------------------------------------------------
// E7: crafted images
// ---------------------------------------------------------------------

/// E7: the crafted-image corpus against (a) a plain base mount + ops
/// and (b) the shadow's validated load. The shadow must reject every
/// image cleanly (an error, never a crash); the base accepts several
/// latently and only notices — at best — when the corruption is
/// touched.
#[must_use]
pub fn e7_crafted_images() -> String {
    use rae_fsformat::{apply_corruption, CraftedImage};
    let mut out = String::from(
        "E7: crafted images — unvalidated base vs validated shadow load\n\
         case                    base_mount+ops       shadow_validated_load\n",
    );

    // pristine populated image to corrupt
    let pristine = fresh_device();
    {
        let base = mount_base(
            pristine.clone() as Arc<dyn BlockDevice>,
            FaultRegistry::new(),
        );
        populate_small_tree(&base).expect("populate");
        base.unmount().expect("unmount");
    }
    let baseline = pristine.snapshot();
    let corpus = CraftedImage::standard_corpus(pristine.as_ref()).expect("corpus");

    for case in corpus {
        let dev = Arc::new(MemDisk::from_image(&baseline));
        apply_corruption(dev.as_ref(), &case.corruption).expect("apply");

        // (a) base: mount + drive a few operations, under catch_unwind
        let base_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let base = rae_basefs::BaseFs::mount(
                dev.clone() as Arc<dyn BlockDevice>,
                rae_basefs::BaseFsConfig::default(),
            )?;
            base.readdir("/")?;
            base.readdir("/docs")?;
            let fd = base.open("/docs/file0", OpenFlags::RDONLY)?;
            base.read(fd, 0, 100)?;
            base.close(fd)?;
            base.mkdir("/new")?;
            Ok::<(), rae_vfs::FsError>(())
        }));
        let base_cell = match base_result {
            Err(_) => "PANIC".to_string(),
            Ok(Ok(())) => "accepted (latent!)".to_string(),
            Ok(Err(e)) if e.is_runtime_error() => "detected late".to_string(),
            Ok(Err(_)) => "rejected at mount".to_string(),
        };

        // (b) shadow: validated load
        let shadow_result = ShadowFs::load(dev as Arc<dyn BlockDevice>, ShadowOpts::default());
        let shadow_cell = match shadow_result {
            Err(e) if e.is_runtime_error() => "rejected cleanly".to_string(),
            Err(_) => "rejected (spec error)".to_string(),
            Ok(_) => "ACCEPTED (bad!)".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<23} {:<20} {:<22}",
            case.name, base_cell, shadow_cell
        );
    }
    out
}

// ---------------------------------------------------------------------
// E8: recovery resilience (nested-fault campaign)
// ---------------------------------------------------------------------

/// One nested-fault scenario: a fault armed to fire *while recovery
/// itself runs*, either through the registry's recovery sites or as a
/// phase-scoped device-error plan.
struct E8Scenario {
    name: String,
    /// Fault class: `control`, `detected`, `panic`, `device`.
    class: &'static str,
    /// Recovery phase the fault targets: `reboot`, `replay`, `absorb`,
    /// `device` (phase-global plan), or `-` for the control.
    phase: &'static str,
    bug: Option<BugSpec>,
    plan: Option<rae_blockdev::DiskFaultPlan>,
}

/// The scenario matrix: fault class × recovery phase × persistence.
/// One-shot faults are the transient class the retry rung must absorb;
/// `Always` faults are persistent and must end degraded (when the bare
/// reboot still works) or offline (when it does not).
fn e8_scenarios(smoke: bool) -> Vec<E8Scenario> {
    use rae_blockdev::{DiskFaultPlan, FaultTarget, TriggerMode};
    let mut scenarios = vec![E8Scenario {
        name: "control".into(),
        class: "control",
        phase: "-",
        bug: None,
        plan: None,
    }];
    let mut id = 8100;
    for (site, phase) in [
        (Site::RecoveryReboot, "reboot"),
        (Site::RecoveryReplay, "replay"),
        (Site::RecoveryAbsorb, "absorb"),
    ] {
        for (effect, class) in [
            (Effect::DetectedError, "detected"),
            (Effect::Panic, "panic"),
        ] {
            for (trigger, persistence) in
                [(Trigger::NthMatch(1), "once"), (Trigger::Always, "always")]
            {
                id += 1;
                if smoke && !(phase == "replay" || (phase == "reboot" && persistence == "once")) {
                    continue;
                }
                scenarios.push(E8Scenario {
                    name: format!("{class}-{phase}-{persistence}"),
                    class,
                    phase,
                    bug: Some(BugSpec::new(id, "e8-nested", site, trigger.clone(), effect)),
                    plan: None,
                });
            }
        }
    }
    let device_plans: Vec<(&str, DiskFaultPlan)> = vec![
        (
            "dev-read-once",
            DiskFaultPlan::new().fail_reads(FaultTarget::Any, TriggerMode::Nth(1)),
        ),
        (
            "dev-read-twice",
            DiskFaultPlan::new()
                .fail_reads(FaultTarget::Any, TriggerMode::Nth(1))
                .fail_reads(FaultTarget::Any, TriggerMode::Nth(2)),
        ),
        (
            "dev-write-once",
            DiskFaultPlan::new().fail_writes(FaultTarget::Any, TriggerMode::Nth(1)),
        ),
        (
            "dev-read-always",
            DiskFaultPlan::new().fail_reads(FaultTarget::Any, TriggerMode::Always),
        ),
        (
            "dev-write-always",
            DiskFaultPlan::new().fail_writes(FaultTarget::Any, TriggerMode::Always),
        ),
    ];
    for (name, plan) in device_plans {
        if smoke && !(name == "dev-read-once" || name == "dev-read-always") {
            continue;
        }
        scenarios.push(E8Scenario {
            name: name.into(),
            class: "device",
            phase: "device",
            bug: None,
            plan: Some(plan),
        });
    }
    scenarios
}

/// The workload every E8 scenario runs before the trigger fires: a
/// durable (synced) tree plus an unsynced tail the cold replay must
/// reproduce.
fn e8_workload(fs: &dyn FileSystem) -> Result<(), rae_vfs::FsError> {
    populate_small_tree(fs)?; // ends with sync -> durable prefix
    fs.mkdir("/work")?;
    let fd = fs.open("/work/data", OpenFlags::RDWR | OpenFlags::CREATE)?;
    fs.write(fd, 0, b"unsynced tail")?;
    fs.close(fd)?;
    Ok(())
}

/// Result of one E8 scenario run.
struct E8Row {
    name: String,
    class: &'static str,
    phase: &'static str,
    /// `recovered`, `degraded`, `offline` — or `unexpected` when the
    /// run violated the ladder contract (panic across the API, wrong
    /// error, out-of-order rungs, wrong tree).
    outcome: &'static str,
    rung: String,
    failed_rungs: Vec<String>,
    device_retries: u64,
    device_faults_absorbed: u64,
    device_retries_exhausted: u64,
    tree_ok: bool,
    note: String,
}

fn e8_rung_rank(r: rae::LadderRung) -> usize {
    use rae::LadderRung as L;
    match r {
        L::Warm => 0,
        L::Cold => 1,
        L::ColdRetry => 2,
        L::Degraded => 3,
        L::Offline => 4,
    }
}

/// Run one scenario end to end and classify the outcome.
fn e8_run_scenario(scenario: &E8Scenario) -> E8Row {
    use rae_blockdev::FaultyDisk;
    let mem = MemDisk::new(16384);
    rae_fsformat::mkfs(&mem, crate::harness::experiment_params()).expect("mkfs");
    let disk = Arc::new(FaultyDisk::new(mem));

    let faults = FaultRegistry::new();
    // the trigger that pulls recovery: a detected bug on the /boom op
    faults.arm(BugSpec::new(
        8000,
        "e8-trigger",
        Site::DirModify,
        Trigger::PathContains("boom".into()),
        Effect::DetectedError,
    ));
    if let Some(bug) = &scenario.bug {
        faults.arm(bug.clone());
    }
    if let Some(plan) = &scenario.plan {
        // phase-scoped: arms with fresh counters when recovery enters
        disk.stage_recovery_plan(plan.clone());
    }
    let config = RaeConfig {
        base: BaseFsConfig {
            faults,
            ..BaseFsConfig::default()
        },
        shadow: ShadowOpts {
            validate_image: false,
            ..ShadowOpts::default()
        },
        retry: rae::RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 100,
            max_backoff_ns: 10_000,
            seed: 0,
        },
        ..RaeConfig::default()
    };
    let fs = mount_rae(Arc::clone(&disk) as Arc<dyn BlockDevice>, config);
    let model = ModelFs::new();
    e8_workload(&fs).expect("e8 workload");
    e8_workload(&model).expect("e8 model workload");

    // the trigger operation: a panic crossing the API boundary here is
    // a contract violation, so run it under catch_unwind
    let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fs.mkdir("/boom")));

    let stats = fs.stats();
    let reports = fs.recovery_reports();
    let last = reports.last();
    let rung = last.map_or_else(|| "-".to_string(), |r| r.rung.as_str().to_string());
    let failed_rungs: Vec<String> = last.map_or_else(Vec::new, |r| {
        r.failed_rungs
            .iter()
            .map(|f| f.rung.as_str().to_string())
            .collect()
    });

    // ladder-order invariant: failed rungs strictly ascend and all
    // precede the final rung
    let ladder_ordered = last.is_none_or(|r| {
        let ranks: Vec<usize> = r
            .failed_rungs
            .iter()
            .map(|f| e8_rung_rank(f.rung))
            .collect();
        ranks.windows(2).all(|w| w[0] < w[1]) && ranks.iter().all(|&x| x < e8_rung_rank(r.rung))
    });

    let mut note = String::new();
    let (outcome, tree_ok) = match (&hit, fs.status()) {
        (Err(_), _) => {
            note = "panic escaped the API boundary".into();
            ("unexpected", false)
        }
        (Ok(Ok(())), rae_vfs::FsStatus::Active) => {
            // full recovery: the tree must equal the model's, /boom
            // included — never silently wrong
            model.mkdir("/boom").expect("model boom");
            let tree = rae_workloads::dump_tree(&fs).expect("dump tree");
            let model_tree = rae_workloads::dump_tree(&model).expect("model tree");
            let diffs = rae_workloads::diff_trees(&model_tree, &tree);
            if diffs.is_empty() {
                ("recovered", true)
            } else {
                note = format!("{} tree diffs after recovery", diffs.len());
                ("unexpected", false)
            }
        }
        (Ok(Err(rae_vfs::FsError::ReadOnly)), rae_vfs::FsStatus::Degraded) => {
            // read-only degraded: reads must answer off the durable
            // (synced) prefix without error — spot-check content
            let fd = fs.open("/docs/file0", OpenFlags::RDONLY);
            let ok = match fd {
                Err(rae_vfs::FsError::ReadOnly) => {
                    // descriptor allocation counts as a mutation; fall
                    // back to path reads only
                    fs.stat("/docs/file0").is_ok()
                        && fs.readdir("/docs").is_ok()
                        && fs.readlink("/docs/link").is_ok()
                }
                _ => false,
            };
            if !ok {
                note = "degraded base could not serve reads".into();
            }
            ("degraded", ok)
        }
        (Ok(Err(rae_vfs::FsError::RecoveryFailed { .. })), rae_vfs::FsStatus::Failed) => {
            ("offline", true) // nothing to read; offline is a valid terminal
        }
        (Ok(r), status) => {
            note = format!("unexpected result {r:?} with status {status:?}");
            ("unexpected", false)
        }
    };
    let outcome = if ladder_ordered {
        outcome
    } else {
        note = format!("ladder out of order: {failed_rungs:?} then {rung}; {note}");
        "unexpected"
    };

    E8Row {
        name: scenario.name.clone(),
        class: scenario.class,
        phase: scenario.phase,
        outcome,
        rung,
        failed_rungs,
        device_retries: stats.device_retries,
        device_faults_absorbed: stats.device_faults_absorbed,
        device_retries_exhausted: stats.device_retries_exhausted,
        tree_ok,
        note,
    }
}

fn e8_render_json(rows: &[E8Row], smoke: bool) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"e8_recovery_resilience\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let failed: Vec<String> = r.failed_rungs.iter().map(|f| format!("\"{f}\"")).collect();
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"class\": \"{}\", \"phase\": \"{}\", \"outcome\": \"{}\", \"rung\": \"{}\", \"failed_rungs\": [{}], \"device_retries\": {}, \"device_faults_absorbed\": {}, \"device_retries_exhausted\": {}, \"tree_ok\": {}}}{comma}",
            r.name,
            r.class,
            r.phase,
            r.outcome,
            r.rung,
            failed.join(", "),
            r.device_retries,
            r.device_faults_absorbed,
            r.device_retries_exhausted,
            r.tree_ok,
        );
    }
    json.push_str("  ],\n");
    let total = rows.len();
    let count = |o: &str| rows.iter().filter(|r| r.outcome == o).count();
    let rate = |n: usize| n as f64 / total.max(1) as f64;
    let (rec, deg, off, unx) = (
        count("recovered"),
        count("degraded"),
        count("offline"),
        count("unexpected"),
    );
    let _ = writeln!(
        json,
        "  \"summary\": {{\"total\": {total}, \"recovered\": {rec}, \"degraded\": {deg}, \"offline\": {off}, \"unexpected\": {unx}, \"survival_rate\": {:.3}, \"degraded_rate\": {:.3}, \"offline_rate\": {:.3}}}",
        rate(rec),
        rate(deg),
        rate(off),
    );
    json.push_str("}\n");
    json
}

/// E8: the nested-fault campaign — faults that fire *while recovery
/// itself is running*, swept over fault class (detected error, panic,
/// transient and persistent device errors) × recovery phase (reboot,
/// replay, absorb, device-wide) × persistence. Every scenario must end
/// in one of the ladder's terminal states — recovered, read-only
/// degraded, or offline — with the rungs tried strictly in order,
/// no panic crossing the API, and no silently-wrong tree.
///
/// Side effect: writes `BENCH_recovery_resilience.json` into the
/// working directory (the committed artifact at the repo root).
#[must_use]
pub fn e8_recovery_resilience(smoke: bool) -> String {
    let scenarios = e8_scenarios(smoke);
    let rows: Vec<E8Row> = scenarios.iter().map(e8_run_scenario).collect();

    let mut out = format!(
        "E8: recovery resilience under nested faults ({} scenarios{})\n\
         scenario                 class     phase    outcome    rung        failed_rungs         retries absorbed\n",
        rows.len(),
        if smoke { ", smoke subset" } else { "" },
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<24} {:<9} {:<8} {:<10} {:<11} {:<20} {:>7} {:>8}{}",
            r.name,
            r.class,
            r.phase,
            r.outcome,
            r.rung,
            r.failed_rungs.join(">"),
            r.device_retries,
            r.device_faults_absorbed,
            if r.note.is_empty() {
                String::new()
            } else {
                format!("  [{}]", r.note)
            },
        );
    }
    let total = rows.len();
    let count = |o: &str| rows.iter().filter(|r| r.outcome == o).count();
    let _ = writeln!(
        out,
        "terminal states: {} recovered, {} degraded, {} offline, {} unexpected (of {total})",
        count("recovered"),
        count("degraded"),
        count("offline"),
        count("unexpected"),
    );
    let json = e8_render_json(&rows, smoke);
    match std::fs::write("BENCH_recovery_resilience.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote BENCH_recovery_resilience.json");
        }
        Err(e) => {
            let _ = writeln!(out, "(could not write BENCH_recovery_resilience.json: {e})");
        }
    }
    out
}

// ---------------------------------------------------------------------
// E9: observed tail latency under fault (telemetry-instrumented)
// ---------------------------------------------------------------------

struct E9Window {
    name: &'static str,
    count: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
}

fn e9_window(name: &'static str, mut lat_us: Vec<f64>) -> E9Window {
    lat_us.sort_by(f64::total_cmp);
    let pick = |q: f64| {
        if lat_us.is_empty() {
            0.0
        } else {
            lat_us[(q * (lat_us.len() - 1) as f64) as usize]
        }
    };
    E9Window {
        name,
        count: lat_us.len(),
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        p999_us: pick(0.999),
        max_us: lat_us.last().copied().unwrap_or(0.0),
    }
}

/// Telemetry-overhead probe: ns per cache-hit read — the cheapest op
/// RAE serves, so the worst relative case for always-on instrumentation
/// — with the telemetry gate on vs off on the same mount. Min of
/// `rounds` interleaved rounds per setting to shed scheduler noise.
fn e9_cache_hit_ns_per_op(reads: usize, rounds: usize) -> (f64, f64) {
    let tele = rae_telemetry::Telemetry::new();
    let config = RaeConfig {
        telemetry: Some(Arc::clone(&tele)),
        ..RaeConfig::default()
    };
    let fs = mount_rae(fresh_device() as Arc<dyn BlockDevice>, config);
    let fd = fs
        .open("/hot", OpenFlags::RDWR | OpenFlags::CREATE)
        .expect("create");
    fs.write(fd, 0, &[42u8; 4096]).expect("write");
    for _ in 0..reads / 4 {
        fs.read(fd, 0, 4096).expect("warm-up read");
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..rounds {
        for (slot, on) in [(0usize, true), (1usize, false)] {
            tele.set_enabled(on);
            let ((), d) = timed(|| {
                for _ in 0..reads {
                    fs.read(fd, 0, 4096).expect("read");
                }
            });
            best[slot] = best[slot].min(d.as_nanos() as f64 / reads as f64);
        }
    }
    tele.set_enabled(true);
    (best[0], best[1])
}

/// E9: the latency a client actually observes across a masked fault,
/// measured through the always-on telemetry layer. One deterministic
/// bug fires mid-run; the flight recorder's `RecoveryStarted` /
/// `RecoveryDone` timestamps carve the per-op samples into before /
/// during / after windows, and the histogram percentiles quantify how
/// recovery shows up as response-time tail. A second probe gates the
/// telemetry off to price the instrumentation itself.
///
/// Side effect: writes `BENCH_tail_latency.json` into the working
/// directory (the committed artifact at the repo root).
#[must_use]
pub fn e9_tail_latency(scale: Scale, smoke: bool) -> String {
    use std::time::Instant;
    const OVERHEAD_BUDGET_PCT: f64 = 15.0;
    let ops = if smoke {
        400
    } else {
        scale.campaign_steps.min(2000)
    };
    let fault_at = ops / 2;
    let (reads, rounds) = if smoke { (20_000, 2) } else { (100_000, 3) };

    let tele = rae_telemetry::Telemetry::new();
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        9200,
        "mid-run",
        Site::DirModify,
        Trigger::PathContains(format!("f{fault_at:06}")),
        Effect::DetectedError,
    ));
    let config = RaeConfig {
        base: BaseFsConfig {
            faults,
            ..BaseFsConfig::default()
        },
        shadow: ShadowOpts {
            validate_image: false,
            ..ShadowOpts::default()
        },
        telemetry: Some(Arc::clone(&tele)),
        ..RaeConfig::default()
    };
    let dev = fresh_latency_device();
    dev.set_telemetry(Arc::clone(&tele));
    let fs = mount_rae(dev as Arc<dyn BlockDevice>, config);

    // per-op (start_ns, latency_us) through create+write+close
    // transactions — the e4b workload, now timestamped on the
    // telemetry clock so samples line up with flight-recorder events
    let mut samples: Vec<(u64, u64, f64)> = Vec::with_capacity(ops);
    for i in 0..ops {
        let start_ns = tele.now_ns();
        let t0 = Instant::now();
        let fd = fs
            .open(&format!("/f{i:06}"), OpenFlags::RDWR | OpenFlags::CREATE)
            .expect("open");
        fs.write(fd, 0, &[7u8; 256]).expect("write");
        fs.close(fd).expect("close");
        let end_ns = tele.now_ns();
        samples.push((start_ns, end_ns, t0.elapsed().as_secs_f64() * 1e6));
    }
    let stats = fs.stats();
    assert_eq!(stats.recoveries, 1, "exactly one mid-run recovery");

    let (events, _dropped) = tele.timeline();
    let rec_start = events
        .iter()
        .rev()
        .find(|e| e.kind == rae_telemetry::EventKind::RecoveryStarted)
        .map(|e| e.ts_ns)
        .expect("recovery started event");
    let rec_done = events
        .iter()
        .rev()
        .find(|e| e.kind == rae_telemetry::EventKind::RecoveryDone)
        .map(|e| e.ts_ns)
        .expect("recovery done event");
    let rung = fs
        .recovery_reports()
        .last()
        .map_or("none", |r| r.rung.as_str());

    let mut before = Vec::new();
    let mut during = Vec::new();
    let mut after = Vec::new();
    for &(s, e, us) in &samples {
        if e <= rec_start {
            before.push(us);
        } else if s >= rec_done {
            after.push(us);
        } else {
            // the op's window overlaps the recovery (the triggering op
            // itself blocks across the whole incident)
            during.push(us);
        }
    }
    let windows = [
        e9_window("before", before),
        e9_window("during", during),
        e9_window("after", after),
    ];

    let (on_ns, off_ns) = e9_cache_hit_ns_per_op(reads, rounds);
    let overhead_pct = (on_ns - off_ns) / off_ns.max(f64::MIN_POSITIVE) * 100.0;
    let within_budget = overhead_pct <= OVERHEAD_BUDGET_PCT;

    let mut out = format!(
        "E9: observed tail latency across a masked mid-run fault ({ops} ops, rung={rung})\n\
         window     count    p50_us    p99_us   p999_us    max_us\n"
    );
    for w in &windows {
        let _ = writeln!(
            out,
            "{:<9} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            w.name, w.count, w.p50_us, w.p99_us, w.p999_us, w.max_us
        );
    }
    let _ = writeln!(
        out,
        "recovery window: {:.2} ms ({} -> {} on the telemetry clock)",
        (rec_done - rec_start) as f64 / 1e6,
        rec_start,
        rec_done
    );
    let _ = writeln!(
        out,
        "telemetry overhead on cache-hit reads: on={on_ns:.0} ns/op off={off_ns:.0} ns/op \
         ({overhead_pct:+.1}%, budget {OVERHEAD_BUDGET_PCT:.0}%, within={within_budget})"
    );

    let mut json = String::from("{\n  \"experiment\": \"e9_tail_latency\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"ops\": {ops},");
    let _ = writeln!(json, "  \"fault_op_index\": {fault_at},");
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"rung\": \"{rung}\", \"start_ns\": {rec_start}, \"done_ns\": {rec_done}, \"duration_ms\": {:.3}}},",
        (rec_done - rec_start) as f64 / 1e6
    );
    json.push_str("  \"windows\": [\n");
    for (i, w) in windows.iter().enumerate() {
        let comma = if i + 1 < windows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"window\": \"{}\", \"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}}}{comma}",
            w.name, w.count, w.p50_us, w.p99_us, w.p999_us, w.max_us
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"telemetry_on_ns_per_op\": {on_ns:.0}, \"telemetry_off_ns_per_op\": {off_ns:.0}, \"overhead_pct\": {overhead_pct:.2}, \"budget_pct\": {OVERHEAD_BUDGET_PCT:.1}, \"within_budget\": {within_budget}}}"
    );
    json.push_str("}\n");
    match std::fs::write("BENCH_tail_latency.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote BENCH_tail_latency.json");
        }
        Err(e) => {
            let _ = writeln!(out, "(could not write BENCH_tail_latency.json: {e})");
        }
    }
    out
}

// ---------------------------------------------------------------------
// E10: multi-tenant server under fault (the server subsystem end to
// end — real sockets, Zipfian tenants, faults injected mid-traffic)
// ---------------------------------------------------------------------

/// E10: run the fault ladder against a *live* multi-tenant server.
///
/// Four volumes behind one `rae-server` on a loopback socket, hundreds
/// of logical clients multiplexed over real TCP connections with
/// Zipf-skewed file popularity, one tenant on a deliberately tight op
/// quota. At ~30% progress two fault classes land mid-traffic — a
/// panic in vol0's path-lookup and a detected error in vol1's write
/// path. RAE must mask both while traffic continues; the interesting
/// numbers are the per-tenant tail latencies and the *client-observed
/// unavailability window* around each fault (gap between the last
/// success before and the first success after, as seen from the
/// socket side).
///
/// Side effect: writes `BENCH_server_traffic.json` into the working
/// directory (the committed artifact at the repo root).
///
/// # Panics
///
/// Panics if the server cannot bind, a connection drops, a fault
/// escapes masking, or a volume ends the run wedged (neither Active
/// nor Degraded).
#[must_use]
pub fn e10_server_traffic(smoke: bool) -> String {
    use rae_server::{Client, Server, ServerConfig, VolumeManager};
    use rae_workloads::{populate_volumes, start_load, unavailability_window, LoadGenConfig};
    use std::time::Instant;

    // wire codes: Site::ALL index / effect table index
    const SITE_PATH_LOOKUP: u8 = 1;
    const SITE_WRITE: u8 = 4;
    const EFFECT_DETECTED_ERROR: u8 = 0;
    const EFFECT_PANIC: u8 = 1;

    let (connections, clients_per_connection, ops_per_client) =
        if smoke { (16, 4, 80) } else { (64, 16, 40) };
    let volumes_wanted = 4usize;
    let files_per_volume = 32usize;
    let file_size = 16 * 1024usize;

    // populate cost per volume: mkdir + per-file (open + 2 chunked
    // writes) + sync — the quota must leave room for it
    let populate_ops = 2 + files_per_volume as u64 * 3;
    let traffic_per_volume =
        (connections * clients_per_connection * ops_per_client / volumes_wanted) as u64;
    // the metered tenant gets half its fair share of traffic
    let metered_quota = populate_ops + traffic_per_volume / 2;

    let manager = Arc::new(VolumeManager::new());
    let config = ServerConfig {
        // connection-per-worker: every loadgen connection plus the
        // admin/populate clients need a slot, with headroom
        workers: connections + 8,
        queue: connections + 8,
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&manager), &config).expect("bind server");
    let addr = server.local_addr().to_string();

    let mut admin = Client::connect(addr.as_str()).expect("admin connect");
    let mut volume_ids = Vec::new();
    for i in 0..volumes_wanted {
        let quota = if i == 3 { metered_quota } else { 0 };
        let id = admin
            .create_volume(&format!("vol{i}"), 4096, 1024, 256, quota, 0)
            .expect("create volume");
        volume_ids.push(id);
    }
    drop(admin);
    // volume creation also works from the manager side; assert the two
    // views agree before traffic starts
    assert_eq!(manager.len(), volumes_wanted);

    let cfg = LoadGenConfig {
        addr: addr.clone(),
        volumes: volume_ids.clone(),
        connections,
        clients_per_connection,
        ops_per_client,
        write_pct: 30,
        zipf_exponent: 0.99,
        files_per_volume,
        file_size,
        read_size: 1024,
        seed: 0xE10,
        trace: false,
    };
    let fds = populate_volumes(&cfg).expect("populate volumes");

    let epoch = Instant::now();
    let run = start_load(&cfg, &fds, epoch).expect("start load");
    while run.progress() < 0.3 {
        std::thread::sleep(Duration::from_micros(200));
    }
    // two fault classes, two different tenants, mid-traffic
    let mut admin = Client::connect(addr.as_str()).expect("admin reconnect");
    let fault_a_ns = run.now_ns();
    admin
        .inject_fault(volume_ids[0], SITE_PATH_LOOKUP, EFFECT_PANIC, 1)
        .expect("inject panic fault");
    let fault_b_ns = run.now_ns();
    admin
        .inject_fault(volume_ids[1], SITE_WRITE, EFFECT_DETECTED_ERROR, 1)
        .expect("inject detected-error fault");
    let injected_at = run.progress();
    let report = run.join();

    assert_eq!(
        report.total_ops,
        (connections * clients_per_connection * ops_per_client) as u64
    );
    assert_eq!(report.total_io_errors, 0, "no connection may drop");
    assert_eq!(report.total_errors, 0, "every fault must be masked");
    assert!(
        report.per_volume[3].refusals > 0,
        "the metered tenant must hit its quota"
    );

    let faults = [
        ("vol0", volume_ids[0], "path_lookup", "panic", fault_a_ns),
        ("vol1", volume_ids[1], "write", "detected_error", fault_b_ns),
    ];
    let windows: Vec<(&str, u32, &str, &str, f64)> = faults
        .iter()
        .map(|&(name, id, site, effect, at_ns)| {
            let vol = report
                .per_volume
                .iter()
                .find(|v| v.volume == id)
                .expect("faulted volume in report");
            let w = unavailability_window(&vol.timeline, at_ns)
                .expect("faulted volume must serve successes on both sides of the fault");
            (name, id, site, effect, w as f64 / 1e6)
        })
        .collect();

    // server-side ground truth: both faulted volumes recovered, and
    // every volume ends Active or Degraded — never wedged
    let mut recoveries = 0u64;
    let mut statuses = Vec::new();
    for (i, &id) in volume_ids.iter().enumerate() {
        let vol = manager.get(id).expect("volume still mounted");
        let stats = vol.fs().stats();
        if i < 2 {
            recoveries += stats.recoveries;
        }
        statuses.push(format!("{:?}", vol.fs().status()));
        assert!(
            matches!(
                vol.fs().status(),
                rae_vfs::FsStatus::Active | rae_vfs::FsStatus::Degraded
            ),
            "vol{i} ended {:?}",
            vol.fs().status()
        );
    }
    assert!(recoveries >= 2, "both injected faults must recover");

    let quota_rejections = manager
        .get(volume_ids[3])
        .map_or(0, |v| v.quota_rejections());

    let shutdown = server.shutdown().expect("graceful shutdown");
    assert_eq!(shutdown.volumes_unmounted, volumes_wanted);
    assert!(shutdown.all_clean, "all volumes must unmount cleanly");

    let mut out = format!(
        "E10: multi-tenant server under fault ({} volumes, {} connections x {} clients, \
         {} ops, {:.0} ops/s, faults at {:.0}% progress)\n\
         tenant   ops      p50_us   p99_us  p999_us   max_us  refused\n",
        volumes_wanted,
        connections,
        clients_per_connection,
        report.total_ops,
        report.ops_per_sec(),
        injected_at * 100.0
    );
    for (i, v) in report.per_volume.iter().enumerate() {
        let _ = writeln!(
            out,
            "vol{i}   {:>6}  {:>8.1} {:>8.1} {:>8.1} {:>8.1}  {:>6}",
            v.ops,
            v.p50_ns as f64 / 1e3,
            v.p99_ns as f64 / 1e3,
            v.p999_ns as f64 / 1e3,
            v.max_ns as f64 / 1e3,
            v.refusals
        );
    }
    for &(name, _, site, effect, ms) in &windows {
        let _ = writeln!(
            out,
            "{name}: {effect}@{site} masked; client-observed unavailability {ms:.2} ms"
        );
    }
    let _ = writeln!(
        out,
        "statuses: [{}]; recoveries(faulted)={recoveries}; quota rejections={quota_rejections}; \
         shutdown: {} requests / {} connections, clean={}",
        statuses.join(", "),
        shutdown.requests,
        shutdown.connections,
        shutdown.all_clean
    );

    let mut json = String::from("{\n  \"experiment\": \"e10_server_traffic\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"load\": {{\"volumes\": {volumes_wanted}, \"connections\": {connections}, \
         \"clients_per_connection\": {clients_per_connection}, \"ops\": {}, \
         \"ops_per_sec\": {:.0}, \"write_pct\": 30, \"zipf_exponent\": 0.99}},",
        report.total_ops,
        report.ops_per_sec()
    );
    json.push_str("  \"tenants\": [\n");
    for (i, v) in report.per_volume.iter().enumerate() {
        let comma = if i + 1 < report.per_volume.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"tenant\": \"vol{i}\", \"ops\": {}, \"errors\": {}, \"refusals\": {}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}, \
             \"status\": \"{}\"}}{comma}",
            v.ops,
            v.errors,
            v.refusals,
            v.p50_ns as f64 / 1e3,
            v.p99_ns as f64 / 1e3,
            v.p999_ns as f64 / 1e3,
            v.max_ns as f64 / 1e3,
            statuses[i]
        );
    }
    json.push_str("  ],\n  \"faults\": [\n");
    for (i, &(name, _, site, effect, ms)) in windows.iter().enumerate() {
        let comma = if i + 1 < windows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tenant\": \"{name}\", \"site\": \"{site}\", \"effect\": \"{effect}\", \
             \"masked\": true, \"unavailability_ms\": {ms:.3}}}{comma}"
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"quota\": {{\"tenant\": \"vol3\", \"max_ops\": {metered_quota}, \"rejections\": {quota_rejections}}},"
    );
    let _ = writeln!(
        json,
        "  \"shutdown\": {{\"requests\": {}, \"connections\": {}, \"volumes_unmounted\": {}, \"all_clean\": {}}}",
        shutdown.requests, shutdown.connections, shutdown.volumes_unmounted, shutdown.all_clean
    );
    json.push_str("}\n");
    match std::fs::write("BENCH_server_traffic.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote BENCH_server_traffic.json");
        }
        Err(e) => {
            let _ = writeln!(out, "(could not write BENCH_server_traffic.json: {e})");
        }
    }
    out
}

// ---------------------------------------------------------------------
// E12: tail-latency attribution under multi-tenant traffic (which
// *layer* owns the tail, before / during / after a masked fault)
// ---------------------------------------------------------------------

/// One window's merged attribution view: the end-to-end op histogram
/// delta plus the per-layer attribution deltas over the same interval.
struct E12Window {
    name: &'static str,
    e2e: rae_telemetry::HistogramSummary,
    layers: Vec<(&'static str, rae_telemetry::HistogramSummary)>,
    attr_sum_ns: u64,
    e2e_sum_ns: u64,
}

impl E12Window {
    /// Attribution-mass-to-end-to-end ratio; 1.0 when the per-layer
    /// vectors account for exactly the recorded op time.
    fn ratio(&self) -> f64 {
        if self.e2e_sum_ns == 0 {
            return 1.0;
        }
        self.attr_sum_ns as f64 / self.e2e_sum_ns as f64
    }
}

/// Frozen dump of every histogram E12 windows over: the API-boundary
/// op histograms (all classes merged) and the six attribution layers,
/// each merged across all volumes.
struct E12Snap {
    e2e: rae_telemetry::HistDump,
    layers: Vec<rae_telemetry::HistDump>,
}

fn e12_snap(teles: &[Arc<rae_telemetry::Telemetry>]) -> E12Snap {
    let mut e2e = rae_telemetry::HistDump::empty();
    for t in teles {
        for &class in rae_telemetry::OpClass::ALL.iter() {
            e2e.merge(&t.op_histogram(class).dump());
        }
    }
    let layers = rae_telemetry::SpanLayer::ALL
        .iter()
        .map(|&layer| {
            let mut d = rae_telemetry::HistDump::empty();
            for t in teles {
                d.merge(&t.attr_histogram(layer).dump());
            }
            d
        })
        .collect();
    E12Snap { e2e, layers }
}

fn e12_window(name: &'static str, later: &E12Snap, earlier: &E12Snap) -> E12Window {
    let e2e = later.e2e.delta(&earlier.e2e);
    let layers: Vec<(&'static str, rae_telemetry::HistogramSummary)> =
        rae_telemetry::SpanLayer::ALL
            .iter()
            .zip(later.layers.iter().zip(earlier.layers.iter()))
            .map(|(&layer, (l, e))| (layer.name(), l.delta(e).summary()))
            .collect();
    let attr_sum_ns = rae_telemetry::SpanLayer::ALL
        .iter()
        .zip(later.layers.iter().zip(earlier.layers.iter()))
        .map(|(_, (l, e))| l.delta(e).sum())
        .sum();
    E12Window {
        name,
        e2e_sum_ns: e2e.sum(),
        e2e: e2e.summary(),
        layers,
        attr_sum_ns,
    }
}

/// E12: decompose the client-visible latency distribution into
/// per-layer contributions, across a masked mid-traffic fault.
///
/// The E10 traffic shape (multi-tenant server on a loopback socket,
/// Zipf-skewed clients, trace contexts minted per op) runs while the
/// API-boundary op histograms and the six span-attribution histograms
/// are dumped at three instants, carving the run into *before* /
/// *during* / *after* windows around a panic injected into vol0's
/// path lookup. Each window reports the end-to-end percentiles next
/// to per-layer percentiles, and the invariant that makes the
/// attribution trustworthy: the per-layer mass must sum to the
/// recorded end-to-end mass (ratio within 10%; it is 1.0 by
/// construction, since the unattributed remainder is booked as
/// `other`). A final probe prices the whole tracing plane on
/// cache-hit reads against a 5% budget.
///
/// Side effect: writes `BENCH_tail_attribution.json` into the working
/// directory (the committed artifact at the repo root).
///
/// # Panics
///
/// Panics if the server cannot bind, the fault escapes masking, a
/// window records nothing, or the attribution mass drifts more than
/// 10% from the end-to-end mass.
#[must_use]
pub fn e12_tail_attribution(smoke: bool) -> String {
    use rae_server::{Client, Server, ServerConfig, VolumeManager};
    use rae_workloads::{populate_volumes, start_load, LoadGenConfig};
    use std::time::Instant;

    const OVERHEAD_BUDGET_PCT: f64 = 5.0;
    const SITE_PATH_LOOKUP: u8 = 1;
    const EFFECT_PANIC: u8 = 1;

    let (connections, clients_per_connection, ops_per_client) =
        if smoke { (8, 4, 150) } else { (32, 8, 150) };
    let volumes_wanted = 2usize;
    let files_per_volume = 32usize;

    let manager = Arc::new(VolumeManager::new());
    let config = ServerConfig {
        workers: connections + 8,
        queue: connections + 8,
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&manager), &config).expect("bind server");
    let addr = server.local_addr().to_string();

    let mut admin = Client::connect(addr.as_str()).expect("admin connect");
    let mut volume_ids = Vec::new();
    for i in 0..volumes_wanted {
        let id = admin
            .create_volume(&format!("vol{i}"), 4096, 1024, 256, 0, 0)
            .expect("create volume");
        volume_ids.push(id);
    }

    let cfg = LoadGenConfig {
        addr: addr.clone(),
        volumes: volume_ids.clone(),
        connections,
        clients_per_connection,
        ops_per_client,
        write_pct: 30,
        zipf_exponent: 0.99,
        files_per_volume,
        file_size: 16 * 1024,
        read_size: 1024,
        seed: 0xE12,
        trace: true,
    };
    let fds = populate_volumes(&cfg).expect("populate volumes");
    let teles: Vec<Arc<rae_telemetry::Telemetry>> = volume_ids
        .iter()
        .map(|&id| manager.get(id).expect("volume").fs().telemetry())
        .collect();

    let baseline = e12_snap(&teles);
    let run = start_load(&cfg, &fds, Instant::now()).expect("start load");
    while run.progress() < 0.33 {
        std::thread::sleep(Duration::from_micros(200));
    }
    let snap_before = e12_snap(&teles);
    admin
        .inject_fault(volume_ids[0], SITE_PATH_LOOKUP, EFFECT_PANIC, 1)
        .expect("inject panic fault");
    while run.progress() < 0.7 {
        std::thread::sleep(Duration::from_micros(200));
    }
    let snap_during = e12_snap(&teles);
    let report = run.join();
    let snap_after = e12_snap(&teles);

    assert_eq!(report.total_errors, 0, "the injected panic must be masked");
    assert_eq!(report.total_io_errors, 0, "no connection may drop");
    let recoveries = manager
        .get(volume_ids[0])
        .map_or(0, |v| v.fs().stats().recoveries);
    assert!(recoveries >= 1, "vol0 must have recovered");

    let windows = [
        e12_window("before", &snap_before, &baseline),
        e12_window("during", &snap_during, &snap_before),
        e12_window("after", &snap_after, &snap_during),
    ];
    for w in &windows {
        assert!(w.e2e.count > 0, "window '{}' recorded nothing", w.name);
        let r = w.ratio();
        assert!(
            (0.9..=1.1).contains(&r),
            "window '{}': attribution mass {} vs e2e mass {} (ratio {r:.3})",
            w.name,
            w.attr_sum_ns,
            w.e2e_sum_ns
        );
    }

    let scrape = manager.scrape_prometheus();
    assert!(
        scrape.contains("rae_attr_ns"),
        "metrics plane exports attribution"
    );

    let shutdown = server.shutdown().expect("graceful shutdown");
    assert!(shutdown.all_clean, "all volumes must unmount cleanly");

    // price the tracing plane itself on the cheapest op RAE serves
    let (reads, rounds) = if smoke { (20_000, 3) } else { (100_000, 3) };
    let (on_ns, off_ns) = e9_cache_hit_ns_per_op(reads, rounds);
    let overhead_pct = (on_ns - off_ns) / off_ns.max(f64::MIN_POSITIVE) * 100.0;
    let within_budget = overhead_pct <= OVERHEAD_BUDGET_PCT;

    let mut out = format!(
        "E12: tail-latency attribution across a masked fault ({} volumes, \
         {} connections x {} clients, {} ops, {:.0} ops/s)\n",
        volumes_wanted,
        connections,
        clients_per_connection,
        report.total_ops,
        report.ops_per_sec()
    );
    for w in &windows {
        let _ = writeln!(
            out,
            "window {:<7} e2e: n={:<6} p50={:>7}ns p99={:>9}ns p999={:>9}ns  (attr/e2e {:.3})",
            w.name,
            w.e2e.count,
            w.e2e.p50,
            w.e2e.p99,
            w.e2e.p999,
            w.ratio()
        );
        for (name, s) in &w.layers {
            if s.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<12} n={:<6} p50={:>7}ns p99={:>9}ns p999={:>9}ns sum={}ns",
                name, s.count, s.p50, s.p99, s.p999, s.sum
            );
        }
    }
    let _ = writeln!(
        out,
        "tracing overhead on cache-hit reads: on={on_ns:.0} ns/op off={off_ns:.0} ns/op \
         ({overhead_pct:+.1}%, budget {OVERHEAD_BUDGET_PCT:.0}%, within={within_budget})"
    );

    let mut json = String::from("{\n  \"experiment\": \"e12_tail_attribution\",\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"load\": {{\"volumes\": {volumes_wanted}, \"connections\": {connections}, \
         \"clients_per_connection\": {clients_per_connection}, \"ops\": {}, \
         \"ops_per_sec\": {:.0}, \"write_pct\": 30, \"traced\": true}},",
        report.total_ops,
        report.ops_per_sec()
    );
    let _ = writeln!(
        json,
        "  \"fault\": {{\"tenant\": \"vol0\", \"site\": \"path_lookup\", \"effect\": \"panic\", \
         \"masked\": true, \"recoveries\": {recoveries}}},"
    );
    json.push_str("  \"windows\": [\n");
    for (i, w) in windows.iter().enumerate() {
        let comma = if i + 1 < windows.len() { "," } else { "" };
        let _ = writeln!(json, "    {{\"window\": \"{}\",", w.name);
        let _ = writeln!(
            json,
            "     \"e2e\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"max_ns\": {}}},",
            w.e2e.count, w.e2e.sum, w.e2e.p50, w.e2e.p99, w.e2e.p999, w.e2e.max
        );
        json.push_str("     \"layers\": {");
        let mut first = true;
        for (name, s) in &w.layers {
            if !first {
                json.push_str(", ");
            }
            first = false;
            let _ = write!(
                json,
                "\"{name}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"p999_ns\": {}}}",
                s.count, s.sum, s.p50, s.p99, s.p999
            );
        }
        json.push_str("},\n");
        let _ = writeln!(
            json,
            "     \"attribution_sum_ns\": {}, \"e2e_sum_ns\": {}, \"attr_to_e2e_ratio\": {:.4}, \
             \"ratio_within_10pct\": {}}}{comma}",
            w.attr_sum_ns,
            w.e2e_sum_ns,
            w.ratio(),
            (0.9..=1.1).contains(&w.ratio())
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"tracing_on_ns_per_op\": {on_ns:.0}, \"tracing_off_ns_per_op\": {off_ns:.0}, \
         \"overhead_pct\": {overhead_pct:.2}, \"budget_pct\": {OVERHEAD_BUDGET_PCT:.1}, \
         \"within_budget\": {within_budget}}}"
    );
    json.push_str("}\n");
    match std::fs::write("BENCH_tail_attribution.json", &json) {
        Ok(()) => {
            let _ = writeln!(out, "wrote BENCH_tail_attribution.json");
        }
        Err(e) => {
            let _ = writeln!(out, "(could not write BENCH_tail_attribution.json: {e})");
        }
    }
    out
}

// ---------------------------------------------------------------------
// Trusted-code accounting (§4.3: "We expect to quantify the code we
// trust (i.e., reused)")
// ---------------------------------------------------------------------

/// Walk the workspace sources and report lines of code per component,
/// classified by trust role: what must be correct for recovery to be
/// correct (the shadow, its spec, the shared format with fsck, and the
/// slim RAE runtime) versus the complex base the paper deliberately
/// does *not* trust.
#[must_use]
pub fn trust_accounting() -> String {
    // implementation lines only: counting stops at the first
    // `#[cfg(test)]` in each file (test modules sit at file ends)
    fn loc(dir: &std::path::Path) -> u64 {
        let mut total = 0;
        if let Ok(entries) = std::fs::read_dir(dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    total += loc(&p);
                } else if p.extension().is_some_and(|x| x == "rs") {
                    let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    if name.ends_with("tests.rs") {
                        continue; // dedicated test files
                    }
                    if let Ok(text) = std::fs::read_to_string(&p) {
                        total += text
                            .lines()
                            .take_while(|l| !l.contains("#[cfg(test)]"))
                            .count() as u64;
                    }
                }
            }
        }
        total
    }
    let ws = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates/")
        .to_path_buf();
    let rows: [(&str, &str, &str); 9] = [
        (
            "fsformat",
            "trusted",
            "shared ABI + fsck: both filesystems and recovery depend on it",
        ),
        (
            "fsmodel",
            "trusted",
            "executable spec (the verification analog)",
        ),
        (
            "shadowfs",
            "trusted",
            "the robust alternative implementation",
        ),
        ("core", "trusted", "RAE runtime: log, detection, hand-off"),
        ("vfs", "trusted", "shared types (passive)"),
        (
            "blockdev",
            "trusted",
            "device substrate (shared by both sides)",
        ),
        ("basefs", "untrusted", "the complex base RAE protects"),
        ("faults", "harness", "fault injection (test apparatus)"),
        ("workloads", "harness", "generators + differential driver"),
    ];
    let mut out = String::from(
        "Trusted-code accounting (implementation lines, tests excluded)\n\
         component   role       loc  note\n",
    );
    let mut trusted = 0u64;
    let mut untrusted = 0u64;
    for (name, role, note) in rows {
        let n = loc(&ws.join(name).join("src"));
        match role {
            "trusted" => trusted += n,
            "untrusted" => untrusted += n,
            _ => {}
        }
        let _ = writeln!(out, "{name:<11} {role:<9} {n:>5}  {note}");
    }
    let _ = writeln!(
        out,
        "\ntrusted total {trusted} loc vs untrusted base {untrusted} loc\n\
         (the paper's bet: the piece that must be *verified* — the shadow\n\
         and its spec — stays small and cache/concurrency-free, while the\n\
         passive shared substrate (types, format, fsck) is validated by\n\
         checksums, property tests, and the checker itself)"
    );
    out
}

/// Run everything, in experiment order.
#[must_use]
pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    for section in [
        table1(),
        figure1(),
        e1_base_vs_shadow(scale),
        e2_rae_overhead(scale),
        e3_recovery_latency(scale),
        e3b_warm_recovery(scale),
        e4_availability(scale),
        e4b_latency_tail(scale),
        e4c_read_scaling(scale),
        e5_check_cost(scale),
        e6_differential(scale),
        e7_crafted_images(),
        e8_recovery_resilience(false),
        e9_tail_latency(scale, false),
        e10_server_traffic(false),
        e11_write_scaling(scale, false),
        e12_tail_attribution(false),
        trust_accounting(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}
