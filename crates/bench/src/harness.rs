//! Shared harness utilities for benches and the reproduce binary.

use rae::{RaeConfig, RaeFs};
use rae_basefs::{BaseFs, BaseFsConfig};
use rae_blockdev::{BlockDevice, DiskFaultPlan, FaultyDisk, MemDisk};
use rae_faults::FaultRegistry;
use rae_fsformat::{mkfs, MkfsParams};
use rae_vfs::{FileSystem, FsResult, OpenFlags};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default experiment geometry: 64 MiB (16384 blocks), 4096 inodes.
#[must_use]
pub fn experiment_params() -> MkfsParams {
    MkfsParams {
        total_blocks: 16384,
        inode_count: 4096,
        journal_blocks: 512,
    }
}

/// A formatted `mkfs`-ed in-memory device.
#[must_use]
pub fn fresh_device() -> Arc<MemDisk> {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(dev.as_ref(), experiment_params()).expect("mkfs");
    dev
}

/// A formatted device wrapped with per-op latency, modelling an NVMe
/// SSD (8 µs 4K reads, 16 µs writes). The latency is what separates
/// cached from uncached designs in E1/E2.
#[must_use]
pub fn fresh_latency_device() -> Arc<FaultyDisk<MemDisk>> {
    let mem = MemDisk::new(16384);
    mkfs(&mem, experiment_params()).expect("mkfs");
    let plan = DiskFaultPlan::new()
        .read_latency_ns(8_000)
        .write_latency_ns(16_000);
    Arc::new(FaultyDisk::with_plan(mem, plan))
}

/// A formatted device with custom per-op latency. The concurrency
/// experiment (E4c) uses 50 µs reads — a networked/cloud block device —
/// so the read-miss mix is genuinely I/O-bound and the benefit of
/// overlapping misses across reader threads is visible rather than
/// drowned in lock-free CPU work.
#[must_use]
pub fn fresh_custom_latency_device(read_ns: u64, write_ns: u64) -> Arc<FaultyDisk<MemDisk>> {
    let mem = MemDisk::new(16384);
    mkfs(&mem, experiment_params()).expect("mkfs");
    let plan = DiskFaultPlan::new()
        .read_latency_ns(read_ns)
        .write_latency_ns(write_ns);
    Arc::new(FaultyDisk::with_plan(mem, plan))
}

/// Mount a base filesystem with `faults`.
#[must_use]
pub fn mount_base(dev: Arc<dyn BlockDevice>, faults: FaultRegistry) -> BaseFs {
    BaseFs::mount(
        dev,
        BaseFsConfig {
            faults,
            ..BaseFsConfig::default()
        },
    )
    .expect("mount base")
}

/// Mount a RAE filesystem with `config`.
#[must_use]
pub fn mount_rae(dev: Arc<dyn BlockDevice>, config: RaeConfig) -> RaeFs {
    RaeFs::mount(dev, config).expect("mount rae")
}

/// Populate a small tree (a few dirs/files) so crafted-image and
/// recovery experiments have structure to corrupt/recover.
///
/// # Errors
///
/// Filesystem errors.
pub fn populate_small_tree(fs: &dyn FileSystem) -> FsResult<()> {
    fs.mkdir("/docs")?;
    fs.mkdir("/docs/a")?;
    for i in 0..5 {
        let fd = fs.open(
            &format!("/docs/file{i}"),
            OpenFlags::RDWR | OpenFlags::CREATE,
        )?;
        fs.write(fd, 0, format!("contents of file {i}").as_bytes())?;
        fs.close(fd)?;
    }
    fs.symlink("/docs/file0", "/docs/link")?;
    fs.link("/docs/file1", "/docs/a/hard")?;
    fs.sync()?;
    Ok(())
}

/// Silence panic messages from *injected* bugs (the RAE runtime
/// catches the unwinds; the default hook would still spam stderr).
/// Real panics keep printing.
pub fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| {
                info.payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
            });
        if msg.is_some_and(|m| m.contains("injected filesystem bug")) {
            return;
        }
        default_hook(info);
    }));
}

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// ops/second, guarded against zero durations.
#[must_use]
pub fn ops_per_sec(ops: usize, d: Duration) -> f64 {
    ops as f64 / d.as_secs_f64().max(1e-9)
}
