//! Benchmark and reproduction harness.
//!
//! One module per experiment (see DESIGN.md §5 for the index):
//!
//! | id | what | paper artifact |
//! |----|------|----------------|
//! | T1/F1 | bug study | Table 1, Figure 1 |
//! | E1 | base vs shadow common-case throughput | "slow-but-correct" claim |
//! | E2 | RAE recording/detection tax | "high performance in the common case" |
//! | E3 | recovery latency vs log length | §4.3 recovery-time question |
//! | E4 | availability under injected bugs, RAE vs baselines | §1/§2 availability claim |
//! | E5 | cost of the shadow's check battery | "extensive runtime checks" |
//! | E6 | differential testing finds silent bugs | §4.3 post-error testing tool |
//! | E7 | crafted-image robustness | §2.1 bypass-FSCK attack class |
//!
//! `cargo run -p rae-bench --bin reproduce [--fast] [all|table1|fig1|e1..e7]`
//! regenerates everything and prints the tables EXPERIMENTS.md records.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;

pub use harness::{fresh_device, mount_base, mount_rae, populate_small_tree};
