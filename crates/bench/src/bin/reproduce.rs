//! Regenerate every table and figure.
//!
//! ```text
//! cargo run --release -p rae-bench --bin reproduce -- [--fast] [targets...]
//! targets: all (default) | table1 | fig1 | e1 | e2 | e3 | e3b | e4 | e4b | e4c | e5 | e6 | e7 | e8 | e9 | e10 | e11 | e12
//!
//! `e4` runs availability plus the read-scaling sweep (e4c); both
//! sub-targets can also be requested on their own. `--smoke` shrinks
//! the e8 nested-fault campaign to its CI subset, the e9 tail-
//! latency run to its CI size, the e10 server-traffic run to a
//! smaller client fleet, the e11 write-scaling ladder to CI-sized
//! rungs, and the e12 attribution run to a smaller traced fleet.
//! ```

use rae_bench::experiments::{self, Scale};

fn main() {
    rae_bench::harness::quiet_injected_panics();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if fast { Scale::fast() } else { Scale::full() };
    let mut targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        targets.push("all");
    }

    for target in targets {
        let output = match target {
            "all" => experiments::run_all(scale),
            "table1" | "t1" => experiments::table1(),
            "fig1" | "f1" => experiments::figure1(),
            "e1" => experiments::e1_base_vs_shadow(scale),
            "e2" => experiments::e2_rae_overhead(scale),
            "e3" => experiments::e3_recovery_latency(scale),
            "e3b" => experiments::e3b_warm_recovery(scale),
            "e4" => {
                let mut out = experiments::e4_availability(scale);
                out.push('\n');
                out.push_str(&experiments::e4c_read_scaling(scale));
                out
            }
            "e4b" => experiments::e4b_latency_tail(scale),
            "e4c" => experiments::e4c_read_scaling(scale),
            "e5" => experiments::e5_check_cost(scale),
            "e6" => experiments::e6_differential(scale),
            "e7" => experiments::e7_crafted_images(),
            "e8" => experiments::e8_recovery_resilience(smoke),
            "e9" => experiments::e9_tail_latency(scale, smoke),
            "e10" => experiments::e10_server_traffic(smoke),
            "e11" => experiments::e11_write_scaling(scale, smoke),
            "e12" => experiments::e12_tail_attribution(smoke),
            "trust" => experiments::trust_accounting(),
            other => {
                eprintln!("unknown target '{other}' (use all|table1|fig1|e1..e12|e3b|e4b|e4c)");
                std::process::exit(2);
            }
        };
        println!("{output}");
    }
}
