//! Criterion bench behind experiment E2: the RAE recording tax on the
//! common path (no faults armed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae::RaeConfig;
use rae_bench::harness::{fresh_latency_device, mount_base, mount_rae};
use rae_blockdev::BlockDevice;
use rae_faults::FaultRegistry;
use rae_workloads::{generate_script, run_script, Profile};
use std::sync::Arc;

fn bench_rae_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("rae_overhead");
    group.sample_size(10);

    for profile in [Profile::Varmail, Profile::FileServer] {
        let script = generate_script(profile, 7, 400);

        group.bench_with_input(
            BenchmarkId::new("base_raw", profile.name()),
            &script,
            |b, script| {
                b.iter_batched(
                    || {
                        mount_base(
                            fresh_latency_device() as Arc<dyn BlockDevice>,
                            FaultRegistry::new(),
                        )
                    },
                    |fs| run_script(&fs, script),
                    criterion::BatchSize::LargeInput,
                );
            },
        );

        group.bench_with_input(
            BenchmarkId::new("rae_wrapped", profile.name()),
            &script,
            |b, script| {
                b.iter_batched(
                    || {
                        mount_rae(
                            fresh_latency_device() as Arc<dyn BlockDevice>,
                            RaeConfig::default(),
                        )
                    },
                    |fs| run_script(&fs, script),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rae_overhead);
criterion_main!(benches);
