//! Criterion bench behind experiment E5: the cost of the shadow's
//! runtime check battery during constrained replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae_bench::harness::fresh_device;
use rae_blockdev::{BlockDevice, MemDisk};
use rae_shadowfs::{ShadowFs, ShadowOpts};
use rae_vfs::{Fd, FsOp, OpRecord, OpenFlags};
use std::sync::Arc;

fn build_records(dev: &Arc<MemDisk>, files: usize) -> Vec<OpRecord> {
    let mut generator = ShadowFs::load(
        dev.clone() as Arc<dyn BlockDevice>,
        ShadowOpts {
            validate_image: false,
            paranoid_checks: false,
            refinement_check: false,
        },
    )
    .unwrap();
    let mut records = Vec::new();
    let mut seq = 0u64;
    for k in 0..files {
        for op in [
            FsOp::Create {
                path: format!("/b{k:05}"),
                flags: OpenFlags::RDWR | OpenFlags::CREATE,
            },
            FsOp::Write {
                fd: Fd(3),
                offset: 0,
                data: vec![k as u8; 2048].into(),
            },
            FsOp::Close { fd: Fd(3) },
        ] {
            let outcome = generator.execute_autonomous(&op).unwrap();
            seq += 1;
            let mut rec = OpRecord::new(seq, op);
            rec.complete(outcome);
            records.push(rec);
        }
    }
    records
}

fn bench_shadow_checks(c: &mut Criterion) {
    let dev = fresh_device();
    let records = build_records(&dev, 150);

    let configs: [(&str, ShadowOpts); 3] = [
        (
            "minimal",
            ShadowOpts {
                validate_image: false,
                paranoid_checks: false,
                refinement_check: false,
            },
        ),
        (
            "paranoid",
            ShadowOpts {
                validate_image: false,
                paranoid_checks: true,
                refinement_check: false,
            },
        ),
        (
            "paranoid_fsck",
            ShadowOpts {
                validate_image: true,
                paranoid_checks: true,
                refinement_check: false,
            },
        ),
    ];

    let mut group = c.benchmark_group("shadow_checks");
    group.sample_size(10);
    for (label, opts) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(label), &opts, |b, opts| {
            b.iter(|| {
                let mut shadow =
                    ShadowFs::load(dev.clone() as Arc<dyn BlockDevice>, *opts).unwrap();
                let report = shadow.replay_constrained(&records).unwrap();
                assert!(report.is_clean());
                shadow.checks_performed()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shadow_checks);
criterion_main!(benches);
