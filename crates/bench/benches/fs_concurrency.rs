//! Criterion bench behind experiment E4c: multi-threaded reader
//! throughput on the base filesystem, concurrent lock split vs the
//! single-mutex baseline (`serial_reads` + one page-cache shard).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae_basefs::{BaseFs, BaseFsConfig};
use rae_bench::harness::fresh_device;
use rae_blockdev::BlockDevice;
use rae_workloads::{populate_read_set, run_reader_mix, ReadMix, ReadMixConfig};
use std::sync::Arc;

fn bench_cfg(mix: ReadMix) -> ReadMixConfig {
    ReadMixConfig {
        nfiles: 32,
        file_size: 16 * 1024,
        read_size: 1024,
        ops_per_thread: 500,
        seed: 0xBE4C,
        mix,
    }
}

fn mount(serial: bool) -> Arc<BaseFs> {
    Arc::new(
        BaseFs::mount(
            fresh_device() as Arc<dyn BlockDevice>,
            BaseFsConfig {
                serial_reads: serial,
                cache_shards: if serial { Some(1) } else { None },
                ..BaseFsConfig::default()
            },
        )
        .expect("mount base"),
    )
}

fn bench_fs_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_concurrency");
    group.sample_size(10);
    for mix in [ReadMix::ReadHit, ReadMix::Mixed90R10W] {
        for (mode, serial) in [("serial", true), ("concurrent", false)] {
            let cfg = bench_cfg(mix);
            let fs = mount(serial);
            populate_read_set(fs.as_ref(), &cfg).expect("populate");
            for threads in [1usize, 4] {
                let id = format!("{}/{mode}/{threads}t", mix.label());
                group.bench_with_input(BenchmarkId::from_parameter(id), &threads, |b, &t| {
                    b.iter(|| {
                        let report = run_reader_mix(&fs, &cfg, t).expect("reader mix");
                        assert!(report.ops > 0);
                        report.ops
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fs_concurrency);
criterion_main!(benches);
