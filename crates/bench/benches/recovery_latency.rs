//! Criterion bench behind experiments E3/E3b: full recovery latency as
//! a function of the retained operation-log length, cold replay vs
//! warm standby handover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae::{RaeConfig, StandbyOpts};
use rae_basefs::BaseFsConfig;
use rae_bench::harness::{fresh_device, mount_rae};
use rae_blockdev::BlockDevice;
use rae_faults::{BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_shadowfs::ShadowOpts;
use rae_vfs::{FileSystem, OpenFlags};
use std::sync::Arc;

/// Build a RAE filesystem with `len` unsynced operations and a bug
/// armed to fire on the next allocation. With `warm` the standby is
/// enabled and caught up before the bug is armed, so the measured
/// recovery drains only the in-flight tail.
fn primed_fs(len: usize, warm: bool) -> rae::RaeFs {
    let faults = FaultRegistry::new();
    let config = RaeConfig {
        base: BaseFsConfig {
            faults: faults.clone(),
            ..BaseFsConfig::default()
        },
        shadow: ShadowOpts {
            validate_image: false,
            ..ShadowOpts::default()
        },
        max_log_records: usize::MAX,
        standby: StandbyOpts {
            enabled: warm,
            ..StandbyOpts::default()
        },
        ..RaeConfig::default()
    };
    let fs = mount_rae(fresh_device() as Arc<dyn BlockDevice>, config);
    // Cycle over 512 distinct files so the longest sweeps fit the
    // 4096-inode bench geometry; the log still retains `len` records.
    for k in 0..len {
        let fd = fs
            .open(
                &format!("/f{:05}", k % 512),
                OpenFlags::RDWR | OpenFlags::CREATE,
            )
            .unwrap();
        fs.write(fd, 0, &[k as u8; 512]).unwrap();
        fs.close(fd).unwrap();
    }
    if warm {
        while fs.stats().standby_lag > 0 {
            std::thread::yield_now();
        }
    }
    faults.arm(BugSpec::new(
        9000,
        "trigger",
        Site::Alloc,
        Trigger::Always,
        Effect::DetectedError,
    ));
    fs
}

fn bench_recovery_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_latency");
    group.sample_size(10);
    for len in [10usize, 100, 500, 1000, 5000] {
        for warm in [false, true] {
            let id = BenchmarkId::new(if warm { "warm" } else { "cold" }, len);
            group.bench_with_input(id, &len, |b, &len| {
                b.iter_batched(
                    || primed_fs(len, warm),
                    |fs| {
                        fs.mkdir("/trigger").unwrap(); // bug fires, recovery runs
                        assert_eq!(fs.stats().recoveries, 1);
                        fs
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_recovery_latency);
criterion_main!(benches);
