//! Criterion bench behind experiment E3: full recovery latency as a
//! function of the retained operation-log length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae::RaeConfig;
use rae_basefs::BaseFsConfig;
use rae_bench::harness::{fresh_device, mount_rae};
use rae_blockdev::BlockDevice;
use rae_faults::{BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_shadowfs::ShadowOpts;
use rae_vfs::{FileSystem, OpenFlags};
use std::sync::Arc;

/// Build a RAE filesystem with `len` unsynced operations and a bug
/// armed to fire on the next allocation.
fn primed_fs(len: usize) -> rae::RaeFs {
    let faults = FaultRegistry::new();
    let config = RaeConfig {
        base: BaseFsConfig {
            faults: faults.clone(),
            ..BaseFsConfig::default()
        },
        shadow: ShadowOpts {
            validate_image: false,
            ..ShadowOpts::default()
        },
        max_log_records: usize::MAX,
        ..RaeConfig::default()
    };
    let fs = mount_rae(fresh_device() as Arc<dyn BlockDevice>, config);
    for k in 0..len {
        let fd = fs
            .open(&format!("/f{k:05}"), OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        fs.write(fd, 0, &[k as u8; 512]).unwrap();
        fs.close(fd).unwrap();
    }
    faults.arm(BugSpec::new(
        9000,
        "trigger",
        Site::Alloc,
        Trigger::Always,
        Effect::DetectedError,
    ));
    fs
}

fn bench_recovery_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_latency");
    group.sample_size(10);
    for len in [10usize, 100, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter_batched(
                || primed_fs(len),
                |fs| {
                    fs.mkdir("/trigger").unwrap(); // bug fires, recovery runs
                    assert_eq!(fs.stats().recoveries, 1);
                    fs
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery_latency);
criterion_main!(benches);
