//! Criterion bench behind experiment E1: base vs shadow-as-primary
//! throughput on identical scripts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rae_bench::harness::{fresh_latency_device, mount_base};
use rae_blockdev::BlockDevice;
use rae_faults::FaultRegistry;
use rae_shadowfs::{ShadowAsPrimary, ShadowOpts};
use rae_workloads::{generate_script, run_script, Profile};
use std::sync::Arc;

fn bench_fs_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_throughput");
    group.sample_size(10);

    for profile in [Profile::Varmail, Profile::FileServer, Profile::WebServer] {
        let script = generate_script(profile, 42, 400);

        group.bench_with_input(
            BenchmarkId::new("base", profile.name()),
            &script,
            |b, script| {
                b.iter_batched(
                    || {
                        mount_base(
                            fresh_latency_device() as Arc<dyn BlockDevice>,
                            FaultRegistry::new(),
                        )
                    },
                    |fs| run_script(&fs, script),
                    criterion::BatchSize::LargeInput,
                );
            },
        );

        group.bench_with_input(
            BenchmarkId::new("shadow", profile.name()),
            &script,
            |b, script| {
                b.iter_batched(
                    || {
                        ShadowAsPrimary::load(
                            fresh_latency_device() as Arc<dyn BlockDevice>,
                            ShadowOpts {
                                validate_image: false,
                                ..ShadowOpts::default()
                            },
                        )
                        .expect("shadow load")
                    },
                    |fs| run_script(&fs, script),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fs_throughput);
criterion_main!(benches);
