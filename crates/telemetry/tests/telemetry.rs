//! Telemetry primitive tests: concurrent histogram recording with
//! exact-count invariants, quantile correctness against a sorted
//! reference, and ring-buffer wraparound/drain-order under concurrent
//! writers.

use rae_telemetry::{EventKind, EventRing, LatencyHistogram, Telemetry};
use std::sync::Arc;
use std::thread;

/// Deterministic xorshift64* — the crate has no dependencies, so the
/// tests roll their own randomness.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Arc::new(LatencyHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                let mut rng = XorShift(t + 1);
                let mut sum = 0u64;
                let mut max = 0u64;
                for _ in 0..PER_THREAD {
                    let v = rng.next() % 1_000_000;
                    hist.record(v);
                    sum += v;
                    max = max.max(v);
                }
                (sum, max)
            })
        })
        .collect();
    let mut expect_sum = 0u64;
    let mut expect_max = 0u64;
    for h in handles {
        let (sum, max) = h.join().expect("recorder thread");
        expect_sum += sum;
        expect_max = expect_max.max(max);
    }
    // exact-count invariants: no sample lost or double-counted
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    assert_eq!(hist.sum(), expect_sum);
    assert_eq!(hist.max(), expect_max);
    let s = hist.summary();
    assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
}

#[test]
fn quantiles_match_sorted_reference() {
    let mut rng = XorShift(42);
    let mut samples: Vec<u64> = Vec::with_capacity(50_000);
    let hist = LatencyHistogram::new();
    for _ in 0..50_000 {
        // mixed magnitudes: exercise exact buckets and high octaves
        let v = match rng.next() % 4 {
            0 => rng.next() % 32,
            1 => rng.next() % 10_000,
            2 => rng.next() % 10_000_000,
            _ => rng.next() % 10_000_000_000,
        };
        hist.record(v);
        samples.push(v);
    }
    samples.sort_unstable();
    for q in [0.5, 0.9, 0.99, 0.999] {
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let reference = samples[rank - 1];
        let got = hist.quantile(q);
        // the histogram reports the bucket's lower bound: never above
        // the reference, and within one sub-bucket (1/32) below it
        assert!(got <= reference, "q={q}: got {got} > reference {reference}");
        let tolerance = reference / 32 + 1;
        assert!(
            reference - got <= tolerance,
            "q={q}: got {got}, reference {reference}, tolerance {tolerance}"
        );
    }
    assert_eq!(hist.max(), *samples.last().unwrap());
}

#[test]
fn ring_wraparound_and_order_under_concurrent_writers() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    const CAP: usize = 512;
    let ring = Arc::new(EventRing::new(CAP));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // self-checking payload: c must equal a ^ b
                    ring.record(i, 0, t, i, t ^ i, 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let total = THREADS * PER_THREAD;
    assert_eq!(ring.recorded(), total);
    // wraparound losses are exact; collisions (a writer stalled a whole
    // lap) only add to the count
    assert!(ring.dropped() >= total - CAP as u64, "{}", ring.dropped());
    let (events, dropped) = ring.snapshot();
    assert_eq!(dropped, ring.dropped());
    // quiescent ring: every slot holds a fully-published event
    assert_eq!(events.len(), CAP);
    for pair in events.windows(2) {
        assert!(pair[0].ticket < pair[1].ticket, "drain order broken");
    }
    // Nearly every surviving ticket is from the newest lap: a slot can
    // keep an older one only when a stalled writer held its lock at the
    // exact moment the final lap's claim arrived, and at most
    // THREADS - 1 writers can be stalled at once.
    let newest = events
        .iter()
        .filter(|e| e.ticket >= total - CAP as u64)
        .count();
    assert!(newest >= CAP - THREADS as usize, "{newest}/{CAP}");
    for e in &events {
        assert_eq!(e.c, e.a ^ e.b, "torn payload surfaced: {e:?}");
    }
}

#[test]
fn colliding_writers_never_tear_a_slot() {
    // A 2-slot ring hammered by 4 threads makes same-slot collisions
    // the common case instead of a once-in-a-blue-moon stall: every
    // record() is a potential lap-apart conflict. The ring must drop
    // the losers (counted) rather than ever publish interleaved words.
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 20_000;
    let ring = Arc::new(EventRing::new(2));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    ring.record(i, 0, t, i, t ^ i, 0);
                    let (events, _) = ring.snapshot();
                    for e in events {
                        assert_eq!(e.c, e.a ^ e.b, "torn mid-flight: {e:?}");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    assert_eq!(ring.recorded(), THREADS * PER_THREAD);
    let (events, _) = ring.snapshot();
    assert!(!events.is_empty() && events.len() <= 2);
    for e in &events {
        assert_eq!(e.c, e.a ^ e.b, "torn at quiescence: {e:?}");
    }
}

#[test]
fn ring_snapshot_tolerates_live_writers() {
    let ring = Arc::new(EventRing::new(64));
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..10_000 {
                    ring.record(i, 0, t, i, t ^ i, 0);
                }
            })
        })
        .collect();
    // drain repeatedly while writes are in flight: accepted slots must
    // never be torn, and tickets must stay strictly ordered
    for _ in 0..200 {
        let (events, _) = ring.snapshot();
        for pair in events.windows(2) {
            assert!(pair[0].ticket < pair[1].ticket);
        }
        for e in &events {
            assert_eq!(e.c, e.a ^ e.b, "torn payload under live writers: {e:?}");
        }
    }
    for h in writers {
        h.join().expect("writer thread");
    }
}

#[test]
fn telemetry_handle_end_to_end() {
    let t = Telemetry::new();
    t.event(EventKind::FaultInjected, 0, 7, 0);
    t.event(EventKind::RecoveryStarted, 0, 3, 0);
    t.event(EventKind::RungEntered, 1, 0, 0);
    t.event(EventKind::RecoveryDone, 1, 1_000_000, 3);
    let (events, dropped) = t.timeline();
    let rendered = rae_telemetry::render_timeline(&events, dropped);
    assert!(rendered.contains("fault injected"), "{rendered}");
    assert!(rendered.contains("recovery started"), "{rendered}");
    assert!(rendered.contains("rung entered: cold"), "{rendered}");
    assert!(rendered.contains("recovery done"), "{rendered}");
    // the incident ordering is coherent: fault before start before done
    let pos = |needle: &str| rendered.find(needle).unwrap();
    assert!(pos("fault injected") < pos("recovery started"));
    assert!(pos("recovery started") < pos("rung entered"));
    assert!(pos("rung entered") < pos("recovery done"));
}

#[test]
fn sampled_op_timing_keeps_counts_exact() {
    use rae_telemetry::{OpClass, OP_SAMPLE};
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 8_000;
    let tele = Telemetry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let tele = Arc::clone(&tele);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    let t0 = tele.op_clock();
                    tele.op_observed(OpClass::Read, t0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let h = tele.op_histogram(OpClass::Read);
    // every op is counted exactly, even though only 1-in-OP_SAMPLE
    // paid for a timing sample
    assert_eq!(h.count(), THREADS * PER_THREAD);
    assert_eq!(h.samples(), THREADS * (PER_THREAD / OP_SAMPLE));
    let s = h.summary();
    assert_eq!(s.count, THREADS * PER_THREAD);
    assert_eq!(s.samples, THREADS * (PER_THREAD / OP_SAMPLE));

    // gated off, neither the clock nor the count fires
    tele.set_enabled(false);
    let t0 = tele.op_clock();
    assert!(t0.is_none());
    tele.op_observed(OpClass::Read, t0);
    assert_eq!(h.count(), THREADS * PER_THREAD);
}
