//! The flight recorder: a fixed-capacity concurrent event ring.
//!
//! Writers claim a ticket with one `fetch_add` and publish seven
//! `u64` words into the slot the ticket maps to under a per-slot seqlock —
//! no locks, no allocation, wait-free for writers. Old events are
//! overwritten once the ring wraps; the drained timeline reports how
//! many were lost. Readers validate the per-slot sequence before and
//! after copying the payload and discard torn slots, so a concurrent
//! drain never yields a half-written record.
//!
//! Two recordings can land in the same slot only when they are a whole
//! ring lap apart — a writer stalled for `capacity` events while
//! another laps it. A per-slot try-lock keeps the payload words
//! single-writer: the second writer to arrive drops its event (counted
//! in [`EventRing::collisions`]) instead of interleaving stores, and a
//! lapped straggler that does win the lock finds a newer sequence
//! already published and bows out. With a sane capacity a collision
//! requires a writer preempted across thousands of recordings, so in
//! practice the counter stays at zero — but the ring stays torn-free
//! even when it does not.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};

/// One drained ring entry: the global ticket (total order of recording)
/// plus the payload words the writer published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Monotone ticket assigned at record time (0-based).
    pub ticket: u64,
    /// Timestamp payload word (nanoseconds since the telemetry anchor).
    pub ts_ns: u64,
    /// Event-kind code.
    pub code: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
    /// Trace id of the request that recorded the event (0 = untraced).
    pub trace: u64,
}

struct Slot {
    /// Seqlock word: 0 = never written; odd = write in progress;
    /// `2 * ticket + 2` = ticket's payload fully published.
    seq: AtomicU64,
    /// Writer try-lock: keeps the payload words single-writer when two
    /// recordings a full lap apart collide on the slot.
    busy: AtomicBool,
    ts: AtomicU64,
    code: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
    trace: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            ts: AtomicU64::new(0),
            code: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
            trace: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity concurrent event ring buffer.
pub struct EventRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    collisions: AtomicU64,
}

impl EventRing {
    /// A ring holding the last `capacity` events (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to wraparound or writer collisions so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
            + self.collisions.load(Ordering::Relaxed)
    }

    /// Events dropped because two writers a full ring lap apart
    /// collided on one slot. Zero in any sanely-sized ring.
    #[must_use]
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Record one event. Wait-free; returns the ticket.
    pub fn record(&self, ts_ns: u64, code: u64, a: u64, b: u64, c: u64, trace: u64) -> u64 {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        // Only writers a whole lap apart can share a slot; rather than
        // interleave payload stores with a straggler, the later arrival
        // drops its event. One CAS attempt, never a spin.
        if slot
            .busy
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.collisions.fetch_add(1, Ordering::Relaxed);
            return ticket;
        }
        // A straggler that lost a full lap but won the lock must not
        // clobber the newer event already published here.
        if slot.seq.load(Ordering::Relaxed) / 2 > ticket {
            self.collisions.fetch_add(1, Ordering::Relaxed);
            slot.busy.store(false, Ordering::Release);
            return ticket;
        }
        // Seqlock write protocol (Boehm): mark odd, release-fence so the
        // payload stores cannot become visible before the mark, publish
        // the payload, then release-store the even sequence.
        slot.seq.store(2 * ticket + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.code.store(code, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.seq.store(2 * ticket + 2, Ordering::Release);
        slot.busy.store(false, Ordering::Release);
        ticket
    }

    /// Copy out every fully-published event, oldest first, along with
    /// the number of events lost to wraparound. Slots a concurrent
    /// writer is mid-flight in are skipped, never torn.
    #[must_use]
    pub fn snapshot(&self) -> (Vec<RawEvent>, u64) {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue; // empty or write in progress
            }
            let ev = RawEvent {
                ticket: seq1 / 2 - 1,
                ts_ns: slot.ts.load(Ordering::Relaxed),
                code: slot.code.load(Ordering::Relaxed),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                c: slot.c.load(Ordering::Relaxed),
                trace: slot.trace.load(Ordering::Relaxed),
            };
            // Validate: the payload loads must complete before the
            // re-check (acquire fence), and the sequence must not have
            // moved while we copied.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == seq1 {
                events.push(ev);
            }
        }
        events.sort_by_key(|e| e.ticket);
        (events, self.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_without_wrap() {
        let ring = EventRing::new(8);
        for i in 0..5u64 {
            ring.record(i * 10, i, i, 0, 0, i + 100);
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ticket, i as u64);
            assert_eq!(e.code, i as u64);
            assert_eq!(e.trace, i as u64 + 100);
        }
    }

    #[test]
    fn wraparound_keeps_newest() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.record(i, i, 0, 0, 0, 0);
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 6);
        let tickets: Vec<u64> = events.iter().map(|e| e.ticket).collect();
        assert_eq!(tickets, vec![6, 7, 8, 9]);
    }
}
