//! Exportable point-in-time telemetry state: JSON for machines, a
//! histogram table for the CLI `top` command.

use crate::hist::HistogramSummary;
use std::fmt::Write as _;

/// Everything the telemetry handle knows, frozen at one instant.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Whether recording was on when the snapshot was taken.
    pub enabled: bool,
    /// Per-op-class API-boundary latency summaries, in class order.
    pub ops: Vec<(&'static str, HistogramSummary)>,
    /// Per device-op/phase latency summaries (`"read/normal"`, …).
    pub device: Vec<(String, HistogramSummary)>,
    /// Journal commit durations.
    pub journal_commit: HistogramSummary,
    /// Page-cache miss fill durations.
    pub cache_fill: HistogramSummary,
    /// Per-mutation journal-commit stall durations (time spent leading
    /// or parked behind a group commit).
    pub commit_stall: HistogramSummary,
    /// Group-commit batch sizes (raw op counts, not nanoseconds).
    pub commit_batch: HistogramSummary,
    /// Stripe-lock wait durations.
    pub lock_wait: HistogramSummary,
    /// Per-layer latency attribution, in [`crate::SpanLayer`] order:
    /// for each completed op whose end-to-end latency was recorded, the
    /// nanoseconds each layer contributed (the `other` row is the
    /// remainder, so the rows sum to the end-to-end sums).
    pub attribution: Vec<(&'static str, HistogramSummary)>,
    /// Flight-recorder events ever recorded.
    pub events_recorded: u64,
    /// Flight-recorder events lost to wraparound.
    pub events_dropped: u64,
}

fn summary_json(s: &HistogramSummary) -> String {
    format!(
        "{{\"count\": {}, \"samples\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
        s.count,
        s.samples,
        s.mean(),
        s.max,
        s.p50,
        s.p90,
        s.p99,
        s.p999
    )
}

impl TelemetrySnapshot {
    /// Serialize the snapshot as JSON (hand-rolled; the vendor tree has
    /// no real serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"enabled\": {},", self.enabled);
        json.push_str("  \"ops\": {\n");
        for (i, (name, s)) in self.ops.iter().enumerate() {
            let comma = if i + 1 < self.ops.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{name}\": {}{comma}", summary_json(s));
        }
        json.push_str("  },\n  \"device\": {\n");
        for (i, (name, s)) in self.device.iter().enumerate() {
            let comma = if i + 1 < self.device.len() { "," } else { "" };
            let _ = writeln!(json, "    \"{name}\": {}{comma}", summary_json(s));
        }
        json.push_str("  },\n");
        let _ = writeln!(
            json,
            "  \"journal_commit\": {},",
            summary_json(&self.journal_commit)
        );
        let _ = writeln!(
            json,
            "  \"cache_fill\": {},",
            summary_json(&self.cache_fill)
        );
        let _ = writeln!(
            json,
            "  \"commit_stall\": {},",
            summary_json(&self.commit_stall)
        );
        let _ = writeln!(
            json,
            "  \"commit_batch\": {},",
            summary_json(&self.commit_batch)
        );
        let _ = writeln!(json, "  \"lock_wait\": {},", summary_json(&self.lock_wait));
        json.push_str("  \"attribution\": {\n");
        for (i, (name, s)) in self.attribution.iter().enumerate() {
            let comma = if i + 1 < self.attribution.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(json, "    \"{name}\": {}{comma}", summary_json(s));
        }
        json.push_str("  },\n");
        let _ = writeln!(
            json,
            "  \"events\": {{\"recorded\": {}, \"dropped\": {}}}",
            self.events_recorded, self.events_dropped
        );
        json.push_str("}\n");
        json
    }

    /// Render the histogram tables as the `top`-style text view. Rows
    /// with no samples are elided.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "telemetry {} — {} event(s) recorded, {} dropped\n{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            if self.enabled { "on" } else { "off" },
            self.events_recorded,
            self.events_dropped,
            "class",
            "count",
            "mean_us",
            "p50_us",
            "p99_us",
            "p999_us",
            "max_us"
        );
        let us = |ns: u64| ns as f64 / 1e3;
        let mut row = |label: &str, s: &HistogramSummary| {
            if s.count == 0 {
                return;
            }
            let _ = writeln!(
                out,
                "{:<18} {:>9} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                label,
                s.count,
                us(s.mean()),
                us(s.p50),
                us(s.p99),
                us(s.p999),
                us(s.max)
            );
        };
        for (name, s) in &self.ops {
            row(&format!("op/{name}"), s);
        }
        for (name, s) in &self.device {
            row(&format!("dev/{name}"), s);
        }
        row("journal_commit", &self.journal_commit);
        row("cache_fill", &self.cache_fill);
        row("commit_stall", &self.commit_stall);
        row("lock_wait", &self.lock_wait);
        for (name, s) in &self.attribution {
            row(&format!("attr/{name}"), s);
        }
        // Batch sizes are raw counts, not latencies — render without
        // the ns→µs conversion the shared row closure applies.
        if self.commit_batch.count > 0 {
            let s = &self.commit_batch;
            let _ = writeln!(
                out,
                "{:<18} {:>9} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}   (ops/commit, raw)",
                "commit_batch",
                s.count,
                s.mean() as f64,
                s.p50 as f64,
                s.p99 as f64,
                s.p999 as f64,
                s.max as f64
            );
        }
        if out.lines().count() == 2 {
            out.push_str("(no samples recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{DevOp, EventKind, OpClass, Telemetry};

    #[test]
    fn json_is_well_formed_enough() {
        let t = Telemetry::new();
        t.record_op_ns(OpClass::Read, 1_500);
        t.record_dev_ns(DevOp::Read, false, 800);
        t.event(EventKind::Degraded, 0, 0, 0);
        let json = t.snapshot().to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert!(json.contains("\"read\": {\"count\": 1"), "{json}");
        assert!(json.contains("\"recorded\": 1"), "{json}");
    }

    #[test]
    fn table_elides_empty_rows() {
        let t = Telemetry::new();
        t.record_op_ns(OpClass::Stat, 2_000);
        let table = t.snapshot().render_table();
        assert!(table.contains("op/stat"), "{table}");
        assert!(!table.contains("op/fsync"), "{table}");
    }
}
