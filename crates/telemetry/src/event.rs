//! The flight-recorder event vocabulary.
//!
//! Events are recorded as seven `u64` words (see [`crate::ring`]); this
//! module gives the words meaning: an [`EventKind`] code plus three
//! kind-specific payload words, and the decoding/rendering used by the
//! post-incident timeline.

use crate::ring::RawEvent;
use std::fmt::Write as _;

/// What happened. Payload word meaning per kind:
///
/// | kind | `a` | `b` | `c` |
/// |---|---|---|---|
/// | `FaultInjected` | fault class (see [`fault_class_name`]) | block number | phase (0 normal, 1 recovery) |
/// | `ErrorDetected` | op class code | errno | 0 |
/// | `PanicCaught` | op class code | 0 | 0 |
/// | `RecoveryStarted` | trigger (see [`trigger_name`]) | retained log length | 0 |
/// | `RungEntered` | rung code (see [`rung_name`]) | 0 | 0 |
/// | `RungFailed` | rung code | duration ns | 0 |
/// | `RecoveryDone` | final rung code | duration ns | records replayed |
/// | `StandbyLag` | lag high-water (records) | completed seq | 0 |
/// | `StandbyAudit` | outcome (0 ok, 1 failed) | compacted/divergent blocks | 0 |
/// | `Degraded` | 0 | 0 | 0 |
/// | `Offline` | 0 | 0 | 0 |
/// | `RetryAbsorbed` | attempts used | device op (0 r, 1 w, 2 flush) | 0 |
/// | `RetryExhausted` | attempts used | device op | 0 |
/// | `CacheEvictStale` | block number | shard index | 0 |
/// | `ClientConnected` | connection id | 0 | 0 |
/// | `ClientDisconnected` | connection id | requests served | 0 |
/// | `QuotaExceeded` | volume id | op class code | 0 |
/// | `VolumeMounted` | volume id | 0 | 0 |
/// | `VolumeUnmounted` | volume id | clean (1) / dirty (0) | 0 |
/// | `ServerShutdown` | connections drained | volumes unmounted | 0 |
/// | `ConnAccepted` | connection id | queued for worker (1) / refused (0) | 0 |
/// | `ConnClosed` | requests served | close reason (0 eof, 1 transport error, 2 shutdown, 3 bad frame) | 0 |
/// | `QuotaRefused` | volume id | ops used | bytes used |
/// | `ShutdownBegin` | source (0 admin op, 1 signal/local) | 0 | 0 |
/// | `SlowOp` | op class code | duration ns | timing (1 sampled, 0 deep-layer lower bound) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A device-level fault fired (injected by the fault harness).
    FaultInjected,
    /// The RAE boundary saw a runtime error come back from the base.
    ErrorDetected,
    /// The RAE boundary caught a panic unwinding out of the base.
    PanicCaught,
    /// Recovery began.
    RecoveryStarted,
    /// A ladder rung was entered.
    RungEntered,
    /// A ladder rung failed (recovery demoted to the next rung).
    RungFailed,
    /// Recovery reached a terminal state.
    RecoveryDone,
    /// The standby apply-loop lag reached a new high-water mark.
    StandbyLag,
    /// A coordinated standby audit finished.
    StandbyAudit,
    /// The mount entered read-only degraded mode.
    Degraded,
    /// The mount went offline.
    Offline,
    /// The retrying device absorbed a transient fault.
    RetryAbsorbed,
    /// The retrying device exhausted its budget.
    RetryExhausted,
    /// The page cache evicted a page whose home location was stale.
    CacheEvictStale,
    /// A network client connected to the storage server.
    ClientConnected,
    /// A network client disconnected (or was dropped).
    ClientDisconnected,
    /// A request was refused because the tenant exceeded its quota.
    QuotaExceeded,
    /// The volume manager mounted a volume.
    VolumeMounted,
    /// The volume manager unmounted a volume.
    VolumeUnmounted,
    /// The server completed a graceful shutdown.
    ServerShutdown,
    /// The accept loop took a connection off the listener (before any
    /// worker picked it up — pairs with `ConnClosed`).
    ConnAccepted,
    /// A connection's request loop ended, with its close reason.
    ConnClosed,
    /// The server refused a request over quota, with the tenant's
    /// budget position (richer server-layer companion to
    /// `QuotaExceeded`).
    QuotaRefused,
    /// Graceful shutdown was requested (drain begins; `ServerShutdown`
    /// marks its completion).
    ShutdownBegin,
    /// An op exceeded the slow-op threshold (always recorded, sampler
    /// bypassed).
    SlowOp,
}

impl EventKind {
    /// All kinds, in code order.
    pub const ALL: [EventKind; 25] = [
        EventKind::FaultInjected,
        EventKind::ErrorDetected,
        EventKind::PanicCaught,
        EventKind::RecoveryStarted,
        EventKind::RungEntered,
        EventKind::RungFailed,
        EventKind::RecoveryDone,
        EventKind::StandbyLag,
        EventKind::StandbyAudit,
        EventKind::Degraded,
        EventKind::Offline,
        EventKind::RetryAbsorbed,
        EventKind::RetryExhausted,
        EventKind::CacheEvictStale,
        EventKind::ClientConnected,
        EventKind::ClientDisconnected,
        EventKind::QuotaExceeded,
        EventKind::VolumeMounted,
        EventKind::VolumeUnmounted,
        EventKind::ServerShutdown,
        EventKind::ConnAccepted,
        EventKind::ConnClosed,
        EventKind::QuotaRefused,
        EventKind::ShutdownBegin,
        EventKind::SlowOp,
    ];

    /// Stable wire code.
    #[must_use]
    pub fn code(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(0) as u64
    }

    /// Decode a wire code (`None` for unknown codes, e.g. from a
    /// torn-then-accepted slot — callers skip those).
    #[must_use]
    pub fn from_code(code: u64) -> Option<EventKind> {
        Self::ALL.get(code as usize).copied()
    }

    /// Stable snake-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FaultInjected => "fault_injected",
            EventKind::ErrorDetected => "error_detected",
            EventKind::PanicCaught => "panic_caught",
            EventKind::RecoveryStarted => "recovery_started",
            EventKind::RungEntered => "rung_entered",
            EventKind::RungFailed => "rung_failed",
            EventKind::RecoveryDone => "recovery_done",
            EventKind::StandbyLag => "standby_lag",
            EventKind::StandbyAudit => "standby_audit",
            EventKind::Degraded => "degraded",
            EventKind::Offline => "offline",
            EventKind::RetryAbsorbed => "retry_absorbed",
            EventKind::RetryExhausted => "retry_exhausted",
            EventKind::CacheEvictStale => "cache_evict_stale",
            EventKind::ClientConnected => "client_connected",
            EventKind::ClientDisconnected => "client_disconnected",
            EventKind::QuotaExceeded => "quota_exceeded",
            EventKind::VolumeMounted => "volume_mounted",
            EventKind::VolumeUnmounted => "volume_unmounted",
            EventKind::ServerShutdown => "server_shutdown",
            EventKind::ConnAccepted => "conn_accepted",
            EventKind::ConnClosed => "conn_closed",
            EventKind::QuotaRefused => "quota_refused",
            EventKind::ShutdownBegin => "shutdown_begin",
            EventKind::SlowOp => "slow_op",
        }
    }
}

/// Ladder rung wire codes (shared with the core's `LadderRung` order).
#[must_use]
pub fn rung_name(code: u64) -> &'static str {
    match code {
        0 => "warm",
        1 => "cold",
        2 => "cold_retry",
        3 => "degraded",
        4 => "offline",
        _ => "?",
    }
}

/// Recovery trigger wire codes.
#[must_use]
pub fn trigger_name(code: u64) -> &'static str {
    match code {
        0 => "detected_error",
        1 => "caught_panic",
        2 => "warn_policy",
        _ => "?",
    }
}

/// Device-level fault class wire codes (from the faulty-disk wrapper).
#[must_use]
pub fn fault_class_name(code: u64) -> &'static str {
    match code {
        0 => "read_fail",
        1 => "write_fail",
        2 => "flush_fail",
        3 => "corrupt_read",
        4 => "write_cut",
        _ => "?",
    }
}

/// Device op wire codes (for retry and I/O-latency events).
#[must_use]
pub fn dev_op_name(code: u64) -> &'static str {
    match code {
        0 => "read",
        1 => "write",
        2 => "flush",
        _ => "?",
    }
}

/// A decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Record-time ticket (total order across all events).
    pub ticket: u64,
    /// Nanoseconds since the telemetry anchor (monotonic).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (kind-specific, see [`EventKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
    /// Trace id of the request that recorded the event (0 = untraced).
    pub trace_id: u64,
}

impl Event {
    /// Decode a raw ring entry (`None` for unknown kind codes).
    #[must_use]
    pub fn decode(raw: &RawEvent) -> Option<Event> {
        Some(Event {
            ticket: raw.ticket,
            ts_ns: raw.ts_ns,
            kind: EventKind::from_code(raw.code)?,
            a: raw.a,
            b: raw.b,
            c: raw.c,
            trace_id: raw.trace,
        })
    }

    /// One human line describing the event (without the timestamp).
    #[must_use]
    pub fn describe(&self) -> String {
        let (a, b, c) = (self.a, self.b, self.c);
        match self.kind {
            EventKind::FaultInjected => format!(
                "fault injected: {} block={} phase={}",
                fault_class_name(a),
                b,
                if c == 1 { "recovery" } else { "normal" }
            ),
            EventKind::ErrorDetected => {
                format!(
                    "error detected: op={} errno={b}",
                    crate::OpClass::name_of(a)
                )
            }
            EventKind::PanicCaught => {
                format!("panic caught: op={}", crate::OpClass::name_of(a))
            }
            EventKind::RecoveryStarted => {
                format!("recovery started: trigger={} log_len={b}", trigger_name(a))
            }
            EventKind::RungEntered => format!("rung entered: {}", rung_name(a)),
            EventKind::RungFailed => format!(
                "rung failed: {} after {:.2}ms",
                rung_name(a),
                b as f64 / 1e6
            ),
            EventKind::RecoveryDone => format!(
                "recovery done: rung={} total={:.2}ms replayed={c}",
                rung_name(a),
                b as f64 / 1e6
            ),
            EventKind::StandbyLag => format!("standby lag high-water: {a} (completed_seq={b})"),
            EventKind::StandbyAudit => format!(
                "standby audit: {} ({} blocks)",
                if a == 0 { "ok" } else { "FAILED" },
                b
            ),
            EventKind::Degraded => "entered read-only degraded mode".to_string(),
            EventKind::Offline => "went offline".to_string(),
            EventKind::RetryAbsorbed => format!(
                "transient fault absorbed: {} after {a} attempts",
                dev_op_name(b)
            ),
            EventKind::RetryExhausted => format!(
                "retry budget exhausted: {} after {a} attempts",
                dev_op_name(b)
            ),
            EventKind::CacheEvictStale => {
                format!("cache evicted stale-at-home page: block={a} shard={b}")
            }
            EventKind::ClientConnected => format!("client connected: conn={a}"),
            EventKind::ClientDisconnected => {
                format!("client disconnected: conn={a} requests={b}")
            }
            EventKind::QuotaExceeded => format!(
                "quota exceeded: volume={a} op={}",
                crate::OpClass::name_of(b)
            ),
            EventKind::VolumeMounted => format!("volume mounted: volume={a}"),
            EventKind::VolumeUnmounted => format!(
                "volume unmounted: volume={a} ({})",
                if b == 1 { "clean" } else { "dirty" }
            ),
            EventKind::ServerShutdown => {
                format!("server shut down: drained {a} connection(s), unmounted {b} volume(s)")
            }
            EventKind::ConnAccepted => format!(
                "connection accepted: conn={a}{}",
                if b == 0 { " (refused at the door)" } else { "" }
            ),
            EventKind::ConnClosed => format!(
                "connection closed: requests={a} reason={}",
                match b {
                    0 => "eof",
                    1 => "transport_error",
                    2 => "shutdown",
                    3 => "bad_frame",
                    _ => "?",
                }
            ),
            EventKind::QuotaRefused => {
                format!("quota refused: volume={a} ops_used={b} bytes_used={c}")
            }
            EventKind::ShutdownBegin => format!(
                "shutdown begun: source={}",
                if a == 0 { "admin_op" } else { "local" }
            ),
            EventKind::SlowOp => format!(
                "slow op: {} took {:.2}ms ({})",
                crate::OpClass::name_of(a),
                b as f64 / 1e6,
                if c == 1 {
                    "timed"
                } else {
                    "deep-layer lower bound"
                }
            ),
        }
    }
}

/// Render a drained timeline, focused on the last incident: output
/// starts a few events before the last recovery trigger (fault, error,
/// or panic preceding the last `RecoveryStarted`) when one exists,
/// otherwise shows everything retained. Timestamps are relative to the
/// first rendered event.
#[must_use]
pub fn render_timeline(events: &[Event], dropped: u64) -> String {
    if events.is_empty() {
        return "flight recorder empty\n".to_string();
    }
    let last_start = events
        .iter()
        .rposition(|e| e.kind == EventKind::RecoveryStarted);
    let from = last_start.map_or(0, |idx| {
        // back up to the trigger evidence just before the recovery
        events[..idx]
            .iter()
            .rposition(|e| {
                !matches!(
                    e.kind,
                    EventKind::FaultInjected
                        | EventKind::ErrorDetected
                        | EventKind::PanicCaught
                        | EventKind::RetryAbsorbed
                )
            })
            .map_or(0, |boundary| boundary + 1)
    });
    let window = &events[from..];
    let t0 = window[0].ts_ns;
    let mut out = format!(
        "flight recorder: {} event(s){}{}\n",
        window.len(),
        if from > 0 {
            format!(" (showing last incident; {from} earlier retained)")
        } else {
            String::new()
        },
        if dropped > 0 {
            format!(", {dropped} lost to wraparound")
        } else {
            String::new()
        },
    );
    for e in window {
        let _ = writeln!(
            out,
            "{:>12.3}ms  {}",
            (e.ts_ns - t0) as f64 / 1e6,
            e.describe()
        );
    }
    out
}

/// Render one request's cross-layer story: every retained event
/// stamped with `trace_id`, in recording order, timestamps relative to
/// the request's first event. Unlike [`render_timeline`] this never
/// narrows to an incident — a trace *is* the narrowing.
#[must_use]
pub fn render_trace_timeline(events: &[Event], dropped: u64, trace_id: u64) -> String {
    let window: Vec<&Event> = events.iter().filter(|e| e.trace_id == trace_id).collect();
    if window.is_empty() {
        return format!(
            "no retained events for trace {trace_id}{}\n",
            if dropped > 0 {
                format!(" ({dropped} lost to wraparound)")
            } else {
                String::new()
            }
        );
    }
    let t0 = window[0].ts_ns;
    let mut out = format!("trace {trace_id}: {} event(s)\n", window.len());
    for e in window {
        let _ = writeln!(
            out,
            "{:>12.3}ms  {}",
            (e.ts_ns - t0) as f64 / 1e6,
            e.describe()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EventKind::from_code(999), None);
    }

    #[test]
    fn server_layer_codes_are_appended_not_renumbered() {
        // the ring stores codes, not names: appending keeps old
        // recordings decodable
        assert_eq!(EventKind::ServerShutdown.code(), 19);
        assert_eq!(EventKind::ConnAccepted.code(), 20);
        assert_eq!(EventKind::ConnClosed.code(), 21);
        assert_eq!(EventKind::QuotaRefused.code(), 22);
        assert_eq!(EventKind::ShutdownBegin.code(), 23);
        assert_eq!(EventKind::SlowOp.code(), 24);
    }

    #[test]
    fn server_layer_event_schemas_render() {
        let mk = |kind, a, b, c| Event {
            ticket: 0,
            ts_ns: 0,
            kind,
            a,
            b,
            c,
            trace_id: 0,
        };
        let cases = [
            (mk(EventKind::ConnAccepted, 7, 1, 0), vec!["conn=7"]),
            (
                mk(EventKind::ConnClosed, 12, 2, 0),
                vec!["requests=12", "reason=shutdown"],
            ),
            (
                mk(EventKind::QuotaRefused, 3, 100, 4096),
                vec!["volume=3", "ops_used=100", "bytes_used=4096"],
            ),
            (mk(EventKind::ShutdownBegin, 0, 0, 0), vec!["admin_op"]),
            (
                mk(EventKind::SlowOp, 0, 12_000_000, 1),
                vec!["slow op: read", "12.00ms", "timed"],
            ),
        ];
        for (event, needles) in cases {
            let line = event.describe();
            for needle in needles {
                assert!(line.contains(needle), "{:?}: {line}", event.kind);
            }
        }
    }

    #[test]
    fn trace_timeline_filters_by_trace_id() {
        let mk = |ticket: u64, ts: u64, kind: EventKind, trace_id: u64| Event {
            ticket,
            ts_ns: ts,
            kind,
            a: 1,
            b: 0,
            c: 0,
            trace_id,
        };
        let events = vec![
            mk(0, 0, EventKind::ErrorDetected, 5),
            mk(1, 10, EventKind::RecoveryStarted, 5),
            mk(2, 20, EventKind::StandbyLag, 0),
            mk(3, 30, EventKind::RecoveryDone, 5),
            mk(4, 40, EventKind::ErrorDetected, 9),
        ];
        let out = render_trace_timeline(&events, 0, 5);
        assert!(out.contains("trace 5: 3 event(s)"), "{out}");
        assert!(out.contains("recovery done"), "{out}");
        assert!(!out.contains("standby lag"), "{out}");
        let missing = render_trace_timeline(&events, 2, 123);
        assert!(missing.contains("no retained events"), "{missing}");
    }

    #[test]
    fn timeline_focuses_on_last_incident() {
        let mk = |ticket: u64, ts: u64, kind: EventKind| Event {
            ticket,
            ts_ns: ts,
            kind,
            a: 1,
            b: 0,
            c: 0,
            trace_id: 0,
        };
        let events = vec![
            mk(0, 0, EventKind::StandbyLag),
            mk(1, 10, EventKind::FaultInjected),
            mk(2, 20, EventKind::RecoveryStarted),
            mk(3, 30, EventKind::RecoveryDone),
        ];
        let out = render_timeline(&events, 0);
        assert!(out.contains("fault injected"), "{out}");
        assert!(out.contains("recovery started"), "{out}");
        assert!(!out.contains("standby lag"), "{out}");
        assert!(out.contains("1 earlier retained"), "{out}");
    }
}
