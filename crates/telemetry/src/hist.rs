//! Lock-free log-bucketed latency histograms (HDR-style).
//!
//! Values below 32 get exact unit buckets; every octave above that is
//! split into 32 sub-buckets, bounding relative error at 1/32 (~3 %)
//! across the full `u64` range with a fixed 1920-bucket table. Every
//! bucket is an `AtomicU64` bumped with a relaxed `fetch_add`, so
//! recording is wait-free, allocation-free, and safe from any thread.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Total bucket count: 32 exact unit buckets plus 32 sub-buckets for
/// each of the 59 octaves covering `[32, u64::MAX]`.
pub const NUM_BUCKETS: usize = (SUB_COUNT as usize) * 60;

/// Map a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // position of the leading bit, >= SUB_BITS
        let sub = (v >> (exp - SUB_BITS)) & (SUB_COUNT - 1);
        (SUB_COUNT as usize) * (exp - SUB_BITS + 1) as usize + sub as usize
    }
}

/// Lower bound of the value range a bucket covers (the reported
/// quantile value; always <= every sample in the bucket).
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        idx
    } else {
        let octave = idx / SUB_COUNT - 1;
        let sub = idx % SUB_COUNT;
        (SUB_COUNT + sub) << octave
    }
}

/// Pre-extracted summary of one histogram: totals plus the standard
/// quantile set, all in the recorded unit (nanoseconds everywhere in
/// this crate's users).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Events observed — exact, including events counted with
    /// [`LatencyHistogram::note`] but never timed.
    pub count: u64,
    /// Timed samples behind the quantiles (`== count` unless the caller
    /// samples its latency measurements).
    pub samples: u64,
    /// Sum of all timed samples (for the mean).
    pub sum: u64,
    /// Largest sample (exact, not bucketed).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    /// Mean timed-sample value, zero when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.samples).unwrap_or(0)
    }
}

/// A concurrent latency histogram. `record` is wait-free; extraction
/// walks a relaxed snapshot of the bucket table.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (allocates the fixed bucket table once).
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one timed sample. Wait-free: three relaxed `fetch_add`s
    /// and a `fetch_max`.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Count an event without a timing sample — the hot-path half of
    /// sampled latency recording: the count stays exact while only a
    /// subset of events pays for two clock reads and a full `record`.
    pub fn note(&self) {
        self.count.fetch_add(1, Relaxed);
    }

    /// Record or note one observation, with a slow-op bypass: a sampled
    /// observation always lands in the buckets, and an *unsampled* one
    /// still lands (instead of being noted away) when it meets
    /// `slow_threshold_ns` — so a rare tail op can never be hidden by
    /// the 1-in-N sampler. A zero threshold disables the bypass.
    /// Returns whether the value was recorded into the buckets.
    pub fn observe(&self, ns: u64, sampled: bool, slow_threshold_ns: u64) -> bool {
        if sampled || (slow_threshold_ns > 0 && ns >= slow_threshold_ns) {
            self.record(ns);
            true
        } else {
            self.note();
            false
        }
    }

    /// Events observed so far (timed and noted).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Timed samples behind the buckets (`<= count`).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Sum of all samples recorded so far.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest sample recorded so far (exact).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Add every bucket of `other` into `self` (both may be live).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Relaxed);
        self.sum.fetch_add(other.sum(), Relaxed);
        self.max.fetch_max(other.max(), Relaxed);
    }

    /// The value at quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket holding the sample of rank `ceil(q * count)`. Zero when
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let snap: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        Self::quantile_of(&snap, q)
    }

    fn quantile_of(snap: &[u64], q: f64) -> u64 {
        let total: u64 = snap.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &n) in snap.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        bucket_value(NUM_BUCKETS - 1)
    }

    /// Extract totals and the standard quantile set from one coherent
    /// bucket snapshot.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let snap: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        HistogramSummary {
            count: self.count(),
            samples: snap.iter().sum(),
            sum: self.sum(),
            max: self.max(),
            p50: Self::quantile_of(&snap, 0.50),
            p90: Self::quantile_of(&snap, 0.90),
            p99: Self::quantile_of(&snap, 0.99),
            p999: Self::quantile_of(&snap, 0.999),
        }
    }

    /// Copy the live bucket table into an owned dump, for windowed
    /// analysis: `later.delta(&earlier)` yields the distribution of
    /// exactly the samples recorded between two dumps.
    #[must_use]
    pub fn dump(&self) -> HistDump {
        HistDump {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// An owned point-in-time copy of a histogram's buckets and totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistDump {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistDump {
    fn default() -> Self {
        HistDump::empty()
    }
}

impl HistDump {
    /// An all-zero dump (identity for [`HistDump::merge`] and
    /// [`HistDump::delta`]).
    #[must_use]
    pub fn empty() -> HistDump {
        HistDump {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The per-bucket difference `self - earlier`: the samples
    /// recorded between the two dumps. Saturating, so a mismatched
    /// pair degrades to zeros instead of wrapping.
    #[must_use]
    pub fn delta(&self, earlier: &HistDump) -> HistDump {
        HistDump {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter())
                .map(|(l, e)| l.saturating_sub(*e))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Add `other`'s buckets and totals into `self` (aggregating the
    /// per-class windows of one layer, say).
    pub fn merge(&mut self, other: &HistDump) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Timed samples in the dump.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of the dump's samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Quantiles and totals of the dumped distribution. `max` is the
    /// upper bucket bound of the highest occupied bucket (the exact
    /// max is not recoverable from a windowed delta).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let max = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|idx| {
                if idx + 1 < NUM_BUCKETS {
                    bucket_value(idx + 1).saturating_sub(1)
                } else {
                    u64::MAX
                }
            })
            .unwrap_or(0);
        HistogramSummary {
            count: self.count,
            samples: self.samples(),
            sum: self.sum,
            max,
            p50: LatencyHistogram::quantile_of(&self.buckets, 0.50),
            p90: LatencyHistogram::quantile_of(&self.buckets, 0.90),
            p99: LatencyHistogram::quantile_of(&self.buckets, 0.99),
            p999: LatencyHistogram::quantile_of(&self.buckets, 0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds_error() {
        // bucket_value(bucket_index(v)) <= v, within 1/32 relative error
        for shift in 0..63 {
            for off in [0u64, 1, 3, 7] {
                let v = (1u64 << shift) + off;
                let lo = bucket_value(bucket_index(v));
                assert!(lo <= v, "v={v} lo={lo}");
                assert!(
                    (v - lo) as f64 <= v as f64 / 32.0 + 1.0,
                    "v={v} lo={lo}: error too large"
                );
            }
        }
    }

    #[test]
    fn buckets_are_monotone_and_contiguous() {
        for idx in 1..NUM_BUCKETS {
            assert!(bucket_value(idx) > bucket_value(idx - 1));
            // the lower bound of bucket idx maps back into bucket idx
            assert_eq!(bucket_index(bucket_value(idx)), idx);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_range_is_exact() {
        let h = LatencyHistogram::new();
        for v in 0..32 {
            h.record(v);
        }
        for v in 0..32u64 {
            let q = (v + 1) as f64 / 32.0;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn slow_op_bypasses_the_sampler() {
        // Regression: a single 10 ms op among 10k fast unsampled ops
        // must always land in the buckets — the 1-in-16 sampler alone
        // would note it away with probability 15/16.
        let h = LatencyHistogram::new();
        let threshold = 1_000_000; // 1 ms
        for _ in 0..10_000 {
            assert!(!h.observe(500, false, threshold), "fast unsampled: noted");
        }
        assert!(
            h.observe(10_000_000, false, threshold),
            "slow op recorded despite being unsampled"
        );
        let s = h.summary();
        assert_eq!(s.count, 10_001, "every op counted");
        assert_eq!(s.samples, 1, "only the slow op carries a sample");
        assert_eq!(s.max, 10_000_000);
        assert!(s.p999 >= 9_000_000, "tail quantile reflects the slow op");
    }

    #[test]
    fn observe_honors_sampling_and_zero_threshold() {
        let h = LatencyHistogram::new();
        assert!(h.observe(100, true, 0), "sampled always records");
        assert!(!h.observe(u64::MAX, false, 0), "zero threshold disables");
        assert_eq!(h.count(), 2);
        assert_eq!(h.samples(), 1);
    }

    #[test]
    fn dump_delta_isolates_a_window() {
        let h = LatencyHistogram::new();
        h.record(10);
        h.record(10);
        let before = h.dump();
        h.record(5_000);
        h.record(5_000);
        h.record(5_000);
        let window = h.dump().delta(&before);
        let s = window.summary();
        assert_eq!(s.samples, 3);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 15_000);
        assert!(s.p50 >= 4_000 && s.p50 <= 5_000, "p50={}", s.p50);
        assert!(s.max >= 5_000, "max upper bound covers the samples");
        // merging the window back with `before` restores the full set
        let mut merged = before.clone();
        merged.merge(&window);
        assert_eq!(merged.samples(), 5);
    }

    #[test]
    fn empty_dump_is_identity() {
        let e = HistDump::empty();
        assert_eq!(e.summary().samples, 0);
        assert_eq!(e.summary().max, 0);
        let h = LatencyHistogram::new();
        h.record(77);
        assert_eq!(h.dump().delta(&e), h.dump());
    }

    #[test]
    fn merge_adds_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 3010);
        assert_eq!(a.max(), 2000);
    }
}
