//! `rae-telemetry`: always-on-cheap observability for the RAE stack.
//!
//! Two primitives, both lock-free and allocation-free on the record
//! path:
//!
//! - [`LatencyHistogram`]: log-bucketed (HDR-style) atomic histograms,
//!   kept per VFS op class, per device-I/O phase, and for a few
//!   internal phases (journal commit, page-cache miss fill).
//! - [`EventRing`]: a fixed-capacity concurrent ring of structured,
//!   monotonically-timestamped events — the flight recorder drained as
//!   a post-incident timeline.
//!
//! A single [`Telemetry`] handle owns both and is shared (`Arc`) by
//! every layer. Recording is gated by one relaxed [`AtomicBool`] so
//! the whole subsystem can be switched off at runtime to measure its
//! own overhead; when disabled the hot-path cost is that single load.
//!
//! The crate has zero dependencies (not even on the other `rae-*`
//! crates) so any layer can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod ring;
mod snapshot;
mod trace;

pub use event::{
    dev_op_name, fault_class_name, render_timeline, render_trace_timeline, rung_name, trigger_name,
    Event, EventKind,
};
pub use hist::{HistDump, HistogramSummary, LatencyHistogram, NUM_BUCKETS};
pub use ring::{EventRing, RawEvent};
pub use snapshot::TelemetrySnapshot;
pub use trace::{
    clear_current_trace, current_trace, set_current_trace, span_add, span_begin, span_mark,
    span_take, SpanLayer, TraceCtx, SPAN_LAYERS,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// VFS operation classes tracked with per-class latency histograms at
/// the RAE API boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Data reads.
    Read,
    /// Data writes (write, append, truncate).
    Write,
    /// Namespace creation (create, mkdir, link, symlink, rename).
    Create,
    /// Namespace removal (unlink, rmdir).
    Unlink,
    /// Directory listing.
    Readdir,
    /// Attribute reads (stat, statfs, readlink).
    Stat,
    /// Durability (fsync, sync).
    Fsync,
    /// Everything else (open, close, setattr, …).
    Other,
}

impl OpClass {
    /// All classes, in code order.
    pub const ALL: [OpClass; 8] = [
        OpClass::Read,
        OpClass::Write,
        OpClass::Create,
        OpClass::Unlink,
        OpClass::Readdir,
        OpClass::Stat,
        OpClass::Fsync,
        OpClass::Other,
    ];

    /// Stable wire code (index into [`OpClass::ALL`]).
    #[must_use]
    pub fn code(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(7) as u64
    }

    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::Create => "create",
            OpClass::Unlink => "unlink",
            OpClass::Readdir => "readdir",
            OpClass::Stat => "stat",
            OpClass::Fsync => "fsync",
            OpClass::Other => "other",
        }
    }

    /// Name for a wire code (used by event rendering).
    #[must_use]
    pub fn name_of(code: u64) -> &'static str {
        Self::ALL.get(code as usize).map_or("?", |c| c.name())
    }
}

/// Device I/O operations timed per phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevOp {
    /// Block read.
    Read,
    /// Block write.
    Write,
    /// Flush.
    Flush,
}

impl DevOp {
    /// All device ops, in code order.
    pub const ALL: [DevOp; 3] = [DevOp::Read, DevOp::Write, DevOp::Flush];

    /// Stable wire code.
    #[must_use]
    pub fn code(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(0) as u64
    }

    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DevOp::Read => "read",
            DevOp::Write => "write",
            DevOp::Flush => "flush",
        }
    }
}

/// Default flight-recorder capacity.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Latency-sampling rate for API-boundary ops: [`Telemetry::op_clock`]
/// times one op in this many per thread (must be a power of two).
pub const OP_SAMPLE: u64 = 16;

/// Default slow-op threshold: any op at or above this duration is
/// recorded even when the 1-in-[`OP_SAMPLE`] sampler skipped it, and
/// emits a [`EventKind::SlowOp`] event. Zero disables the bypass.
pub const DEFAULT_SLOW_OP_THRESHOLD_NS: u64 = 10_000_000;

thread_local! {
    /// Per-thread op tick driving the 1-in-[`OP_SAMPLE`] latency
    /// sampling — thread-local so the hot path pays no shared
    /// read-modify-write for the sampling decision itself.
    static OP_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// An in-flight layer measurement from [`Telemetry::layer_clock`]:
/// the wall-clock start plus the open span's accumulated total at that
/// moment, so [`Telemetry::layer_observed`] can subtract nested-layer
/// time and deposit only this layer's exclusive share.
#[derive(Debug, Clone, Copy)]
pub struct LayerClock {
    t0: Instant,
    inner0: u64,
}

/// The shared telemetry handle: one per mount, `Arc`-cloned into every
/// layer that records.
pub struct Telemetry {
    enabled: AtomicBool,
    anchor: Instant,
    op_hist: [LatencyHistogram; 8],
    /// Device I/O histograms: `[dev_op][phase]` with phase 0 = normal,
    /// 1 = recovery.
    dev_hist: [[LatencyHistogram; 2]; 3],
    journal_commit: LatencyHistogram,
    cache_fill: LatencyHistogram,
    commit_stall: LatencyHistogram,
    /// Group-commit batch sizes — raw op counts, not nanoseconds.
    commit_batch: LatencyHistogram,
    lock_wait: LatencyHistogram,
    /// Per-layer attribution: for each completed op whose end-to-end
    /// latency was recorded, the nanoseconds each [`SpanLayer`]
    /// contributed (the `other` slot is the remainder, so the six
    /// sums add up to the recorded end-to-end sums by construction).
    attr_hist: [LatencyHistogram; SPAN_LAYERS],
    slow_op_threshold_ns: AtomicU64,
    ring: EventRing,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("events_recorded", &self.ring.recorded())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A fresh enabled handle with the default ring capacity.
    #[must_use]
    pub fn new() -> Arc<Telemetry> {
        Arc::new(Telemetry::default())
    }

    /// A fresh enabled handle with a custom ring capacity.
    #[must_use]
    pub fn with_capacity(ring_capacity: usize) -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(true),
            anchor: Instant::now(),
            op_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            dev_hist: std::array::from_fn(|_| std::array::from_fn(|_| LatencyHistogram::new())),
            journal_commit: LatencyHistogram::new(),
            cache_fill: LatencyHistogram::new(),
            commit_stall: LatencyHistogram::new(),
            commit_batch: LatencyHistogram::new(),
            lock_wait: LatencyHistogram::new(),
            attr_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            slow_op_threshold_ns: AtomicU64::new(DEFAULT_SLOW_OP_THRESHOLD_NS),
            ring: EventRing::new(ring_capacity),
        }
    }

    /// Whether recording is on (one relaxed load — the entire hot-path
    /// cost when telemetry is switched off).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Switch recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Monotonic nanoseconds since this handle was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Start a latency measurement: `Some(Instant)` when recording is
    /// on, `None` (free) when off. Pair with one of the `*_observed`
    /// methods.
    #[must_use]
    pub fn clock(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Start a *sampled* API-boundary op measurement: times one op in
    /// [`OP_SAMPLE`] per thread and returns `None` for the rest (the
    /// matching [`Telemetry::op_observed`] still counts those exactly).
    /// Sub-microsecond cache-hit ops can't afford two clock reads each;
    /// quantiles from a 1-in-16 subset are statistically equivalent
    /// while the amortized cost drops below the op itself.
    #[must_use]
    pub fn op_clock(&self) -> Option<Instant> {
        if !self.enabled() {
            return None;
        }
        OP_TICK
            .with(|t| {
                let v = t.get().wrapping_add(1);
                t.set(v);
                v & (OP_SAMPLE - 1) == 0
            })
            .then(Instant::now)
    }

    /// Record an API-boundary op latency sample in nanoseconds.
    pub fn record_op_ns(&self, class: OpClass, ns: u64) {
        if self.enabled() {
            self.op_hist[class.code() as usize].record(ns);
        }
    }

    /// Finish an op measurement started with [`Telemetry::op_clock`]:
    /// a timed sample lands in the histogram buckets, an unsampled op
    /// still bumps the exact per-class count.
    pub fn op_observed(&self, class: OpClass, started: Option<Instant>) {
        if !self.enabled() {
            return;
        }
        let h = &self.op_hist[class.code() as usize];
        match started {
            Some(t0) => h.record(t0.elapsed().as_nanos() as u64),
            None => h.note(),
        }
    }

    /// The slow-op threshold in nanoseconds (0 = bypass disabled).
    #[must_use]
    pub fn slow_op_threshold_ns(&self) -> u64 {
        self.slow_op_threshold_ns.load(Relaxed)
    }

    /// Set the slow-op threshold: ops at or above it are recorded even
    /// when the sampler skipped them, and emit [`EventKind::SlowOp`].
    pub fn set_slow_op_threshold_ns(&self, ns: u64) {
        self.slow_op_threshold_ns.store(ns, Relaxed);
    }

    /// Open this thread's attribution span for an op that is starting
    /// (the API boundary calls this right after its clock so the
    /// instrumented layers below can deposit their elapsed time).
    pub fn op_span_begin(&self) {
        if self.enabled() {
            trace::span_begin();
        }
    }

    /// Finish an API-boundary op: close the span, record the
    /// end-to-end latency (timed ops always; unsampled ops when the
    /// deep-layer time alone crosses the slow-op threshold — a
    /// conservative lower bound, so a tail op the sampler skipped is
    /// never lost), feed the attribution histograms, and emit a
    /// [`EventKind::SlowOp`] event over the threshold.
    pub fn op_finish(&self, class: OpClass, started: Option<Instant>) {
        if !self.enabled() {
            // a span opened before a runtime disable still needs
            // clearing, or it would leak into the thread's next op
            let _ = trace::span_take();
            return;
        }
        let acc = trace::span_take();
        let threshold = self.slow_op_threshold_ns();
        let h = &self.op_hist[class.code() as usize];
        match started {
            Some(t0) => {
                let total = t0.elapsed().as_nanos() as u64;
                h.record(total);
                if let Some(acc) = acc {
                    self.record_attribution(total, &acc);
                }
                if threshold > 0 && total >= threshold {
                    self.event(EventKind::SlowOp, class.code(), total, 1);
                }
            }
            None => {
                let deep: u64 = acc.map_or(0, |a| a.iter().sum());
                if h.observe(deep, false, threshold) {
                    if let Some(acc) = acc {
                        self.record_attribution(deep, &acc);
                    }
                    self.event(EventKind::SlowOp, class.code(), deep, 0);
                }
            }
        }
    }

    /// Feed one completed op's span vector into the attribution
    /// histograms; whatever the instrumented layers did not claim is
    /// attributed to `other`.
    fn record_attribution(&self, total_ns: u64, acc: &[u64; SPAN_LAYERS]) {
        let other_slot = SpanLayer::Other.code();
        let mut claimed = 0u64;
        for (i, &ns) in acc.iter().enumerate() {
            if i != other_slot {
                claimed = claimed.saturating_add(ns);
                // zero-valued layers are skipped: the sum invariant is
                // untouched and the fast path saves ~5 histogram writes
                // per sampled op (cache-hit reads touch no layer)
                if ns > 0 {
                    self.attr_hist[i].record(ns);
                }
            }
        }
        self.attr_hist[other_slot].record(total_ns.saturating_sub(claimed));
    }

    /// Start a layer measurement for span attribution: wall-clock
    /// start plus the span's accumulated total (so nested layers can
    /// be excluded at [`Telemetry::layer_observed`] time). `None` when
    /// disabled.
    #[must_use]
    pub fn layer_clock(&self) -> Option<LayerClock> {
        if self.enabled() {
            Some(LayerClock {
                t0: Instant::now(),
                inner0: trace::span_mark(),
            })
        } else {
            None
        }
    }

    /// Finish a layer measurement: records the layer's histogram and
    /// adds the *exclusive* elapsed time (total minus whatever inner
    /// layers deposited meanwhile) to the open span. Returns the total
    /// elapsed nanoseconds (0 when the clock was off).
    pub fn layer_observed(&self, layer: SpanLayer, started: Option<LayerClock>) -> u64 {
        let Some(clock) = started else {
            return 0;
        };
        let ns = clock.t0.elapsed().as_nanos() as u64;
        match layer {
            SpanLayer::LockWait => self.lock_wait.record(ns),
            SpanLayer::CommitStall => self.commit_stall.record(ns),
            SpanLayer::JournalIo => self.journal_commit.record(ns),
            SpanLayer::CacheFill => self.cache_fill.record(ns),
            SpanLayer::Device | SpanLayer::Other => {}
        }
        let inner_during = trace::span_mark().saturating_sub(clock.inner0);
        trace::span_add(layer, ns.saturating_sub(inner_during));
        ns
    }

    /// Record a device-I/O latency sample in nanoseconds. Device time
    /// is the innermost attribution layer, so it is also deposited
    /// into the open span (if any) without exclusion.
    pub fn record_dev_ns(&self, op: DevOp, recovery_phase: bool, ns: u64) {
        if self.enabled() {
            self.dev_hist[op.code() as usize][usize::from(recovery_phase)].record(ns);
            trace::span_add(SpanLayer::Device, ns);
        }
    }

    /// Finish a device-I/O measurement started with [`Telemetry::clock`].
    pub fn dev_observed(&self, op: DevOp, recovery_phase: bool, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record_dev_ns(op, recovery_phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record a journal-commit duration in nanoseconds.
    pub fn record_journal_commit_ns(&self, ns: u64) {
        if self.enabled() {
            self.journal_commit.record(ns);
        }
    }

    /// Record a page-cache miss fill (device read under a miss) in
    /// nanoseconds.
    pub fn record_cache_fill_ns(&self, ns: u64) {
        if self.enabled() {
            self.cache_fill.record(ns);
        }
    }

    /// Record the time one mutation spent waiting for its journal
    /// commit (leading it or parked behind the leader), in nanoseconds.
    pub fn record_commit_stall_ns(&self, ns: u64) {
        if self.enabled() {
            self.commit_stall.record(ns);
        }
    }

    /// Record the number of committers amortized into one group-commit
    /// journal flush. The value is a raw count, not nanoseconds.
    pub fn record_commit_batch(&self, n: u64) {
        if self.enabled() {
            self.commit_batch.record(n);
        }
    }

    /// Record a flight-recorder event (timestamped now, stamped with
    /// this thread's current trace id).
    pub fn event(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if self.enabled() {
            self.ring
                .record(self.now_ns(), kind.code(), a, b, c, trace::current_trace());
        }
    }

    /// Drain the flight recorder: decoded events oldest-first plus the
    /// wraparound loss count. Non-destructive.
    #[must_use]
    pub fn timeline(&self) -> (Vec<Event>, u64) {
        let (raw, dropped) = self.ring.snapshot();
        (raw.iter().filter_map(Event::decode).collect(), dropped)
    }

    /// Histogram for one op class (for merging or direct inspection).
    #[must_use]
    pub fn op_histogram(&self, class: OpClass) -> &LatencyHistogram {
        &self.op_hist[class.code() as usize]
    }

    /// Histogram for one device op + phase.
    #[must_use]
    pub fn dev_histogram(&self, op: DevOp, recovery_phase: bool) -> &LatencyHistogram {
        &self.dev_hist[op.code() as usize][usize::from(recovery_phase)]
    }

    /// Histogram of stripe-lock wait times.
    #[must_use]
    pub fn lock_wait_histogram(&self) -> &LatencyHistogram {
        &self.lock_wait
    }

    /// Attribution histogram for one span layer.
    #[must_use]
    pub fn attr_histogram(&self, layer: SpanLayer) -> &LatencyHistogram {
        &self.attr_hist[layer.code()]
    }

    /// Point-in-time summary of every histogram plus flight-recorder
    /// totals.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled: self.enabled(),
            ops: OpClass::ALL
                .iter()
                .map(|&c| (c.name(), self.op_histogram(c).summary()))
                .collect(),
            device: DevOp::ALL
                .iter()
                .flat_map(|&op| {
                    [(false, "normal"), (true, "recovery")]
                        .into_iter()
                        .map(move |(rec, phase)| {
                            (
                                format!("{}/{}", op.name(), phase),
                                self.dev_histogram(op, rec).summary(),
                            )
                        })
                })
                .collect(),
            journal_commit: self.journal_commit.summary(),
            cache_fill: self.cache_fill.summary(),
            commit_stall: self.commit_stall.summary(),
            commit_batch: self.commit_batch.summary(),
            lock_wait: self.lock_wait.summary(),
            attribution: SpanLayer::ALL
                .iter()
                .map(|&l| (l.name(), self.attr_histogram(l).summary()))
                .collect(),
            events_recorded: self.ring.recorded(),
            events_dropped: self.ring.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::new();
        t.set_enabled(false);
        t.record_op_ns(OpClass::Read, 100);
        t.event(EventKind::Degraded, 0, 0, 0);
        assert!(t.clock().is_none());
        assert_eq!(t.op_histogram(OpClass::Read).count(), 0);
        assert_eq!(t.timeline().0.len(), 0);
        t.set_enabled(true);
        t.record_op_ns(OpClass::Read, 100);
        assert_eq!(t.op_histogram(OpClass::Read).count(), 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let t = Telemetry::new();
        t.event(EventKind::RecoveryStarted, 0, 0, 0);
        t.event(EventKind::RecoveryDone, 1, 0, 0);
        let (events, _) = t.timeline();
        assert_eq!(events.len(), 2);
        assert!(events[0].ts_ns <= events[1].ts_ns);
        assert!(events[0].ticket < events[1].ticket);
    }

    #[test]
    fn snapshot_covers_all_tables() {
        let t = Telemetry::new();
        t.record_op_ns(OpClass::Fsync, 5_000);
        t.record_dev_ns(DevOp::Write, true, 9_000);
        t.record_journal_commit_ns(20_000);
        t.record_cache_fill_ns(8_000);
        let snap = t.snapshot();
        assert_eq!(snap.ops.len(), 8);
        assert_eq!(snap.device.len(), 6);
        assert_eq!(
            snap.ops
                .iter()
                .find(|(n, _)| *n == "fsync")
                .unwrap()
                .1
                .count,
            1
        );
        assert_eq!(
            snap.device
                .iter()
                .find(|(n, _)| n == "write/recovery")
                .unwrap()
                .1
                .count,
            1
        );
        assert_eq!(snap.journal_commit.count, 1);
        assert_eq!(snap.cache_fill.count, 1);
    }

    #[test]
    fn op_finish_attributes_timed_ops() {
        let t = Telemetry::new();
        let t0 = t.clock();
        t.op_span_begin();
        t.record_dev_ns(DevOp::Read, false, 1_000);
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.op_finish(OpClass::Read, t0);
        assert_eq!(t.op_histogram(OpClass::Read).count(), 1);
        assert_eq!(t.attr_histogram(SpanLayer::Device).count(), 1);
        assert_eq!(t.attr_histogram(SpanLayer::Device).sum(), 1_000);
        // the remainder (sleep + overhead) lands in `other`, so the
        // six layer sums add up to the recorded end-to-end sum
        let e2e = t.op_histogram(OpClass::Read).sum();
        let layered: u64 = SpanLayer::ALL
            .iter()
            .map(|&l| t.attr_histogram(l).sum())
            .sum();
        assert_eq!(layered, e2e);
        assert!(t.attr_histogram(SpanLayer::Other).sum() >= 900_000);
    }

    #[test]
    fn op_finish_unsampled_slow_op_is_captured_from_deep_layers() {
        let t = Telemetry::new();
        t.set_slow_op_threshold_ns(1_000_000);
        // unsampled op (no Instant), but its device time alone crosses
        // the threshold — recorded as a lower bound plus a SlowOp event
        t.op_span_begin();
        t.record_dev_ns(DevOp::Read, false, 5_000_000);
        t.op_finish(OpClass::Read, None);
        let h = t.op_histogram(OpClass::Read);
        assert_eq!(h.count(), 1);
        assert_eq!(h.samples(), 1);
        assert_eq!(h.sum(), 5_000_000);
        let (events, _) = t.timeline();
        let slow: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::SlowOp)
            .collect();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].a, OpClass::Read.code());
        assert_eq!(slow[0].b, 5_000_000);
        assert_eq!(slow[0].c, 0, "deep-layer lower bound, not timed");
    }

    #[test]
    fn op_finish_unsampled_fast_op_only_notes() {
        let t = Telemetry::new();
        t.op_span_begin();
        t.record_dev_ns(DevOp::Read, false, 500);
        t.op_finish(OpClass::Read, None);
        let h = t.op_histogram(OpClass::Read);
        assert_eq!(h.count(), 1, "exact count still bumped");
        assert_eq!(h.samples(), 0, "fast unsampled op stays unbucketed");
        assert_eq!(t.timeline().0.len(), 0);
    }

    #[test]
    fn layer_observed_excludes_nested_layers() {
        let t = Telemetry::new();
        t.op_span_begin();
        let outer = t.layer_clock();
        // a device read nested inside the cache fill
        t.record_dev_ns(DevOp::Read, false, 10_000_000);
        let total = t.layer_observed(SpanLayer::CacheFill, outer);
        let acc = trace::span_take().expect("span open");
        assert_eq!(acc[SpanLayer::Device.code()], 10_000_000);
        // the fill's exclusive share excludes the nested device time
        assert_eq!(
            acc[SpanLayer::CacheFill.code()],
            total.saturating_sub(10_000_000)
        );
        assert_eq!(t.cache_fill.count(), 1);
    }

    #[test]
    fn events_are_stamped_with_the_current_trace() {
        let t = Telemetry::new();
        set_current_trace(77);
        t.event(EventKind::Degraded, 1, 2, 3);
        clear_current_trace();
        t.event(EventKind::RecoveryDone, 0, 0, 0);
        let (events, _) = t.timeline();
        assert_eq!(events[0].trace_id, 77);
        assert_eq!(events[1].trace_id, 0);
    }
}
