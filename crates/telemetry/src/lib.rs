//! `rae-telemetry`: always-on-cheap observability for the RAE stack.
//!
//! Two primitives, both lock-free and allocation-free on the record
//! path:
//!
//! - [`LatencyHistogram`]: log-bucketed (HDR-style) atomic histograms,
//!   kept per VFS op class, per device-I/O phase, and for a few
//!   internal phases (journal commit, page-cache miss fill).
//! - [`EventRing`]: a fixed-capacity concurrent ring of structured,
//!   monotonically-timestamped events — the flight recorder drained as
//!   a post-incident timeline.
//!
//! A single [`Telemetry`] handle owns both and is shared (`Arc`) by
//! every layer. Recording is gated by one relaxed [`AtomicBool`] so
//! the whole subsystem can be switched off at runtime to measure its
//! own overhead; when disabled the hot-path cost is that single load.
//!
//! The crate has zero dependencies (not even on the other `rae-*`
//! crates) so any layer can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod ring;
mod snapshot;

pub use event::{
    dev_op_name, fault_class_name, render_timeline, rung_name, trigger_name, Event, EventKind,
};
pub use hist::{HistogramSummary, LatencyHistogram, NUM_BUCKETS};
pub use ring::{EventRing, RawEvent};
pub use snapshot::TelemetrySnapshot;

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// VFS operation classes tracked with per-class latency histograms at
/// the RAE API boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Data reads.
    Read,
    /// Data writes (write, append, truncate).
    Write,
    /// Namespace creation (create, mkdir, link, symlink, rename).
    Create,
    /// Namespace removal (unlink, rmdir).
    Unlink,
    /// Directory listing.
    Readdir,
    /// Attribute reads (stat, statfs, readlink).
    Stat,
    /// Durability (fsync, sync).
    Fsync,
    /// Everything else (open, close, setattr, …).
    Other,
}

impl OpClass {
    /// All classes, in code order.
    pub const ALL: [OpClass; 8] = [
        OpClass::Read,
        OpClass::Write,
        OpClass::Create,
        OpClass::Unlink,
        OpClass::Readdir,
        OpClass::Stat,
        OpClass::Fsync,
        OpClass::Other,
    ];

    /// Stable wire code (index into [`OpClass::ALL`]).
    #[must_use]
    pub fn code(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(7) as u64
    }

    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::Create => "create",
            OpClass::Unlink => "unlink",
            OpClass::Readdir => "readdir",
            OpClass::Stat => "stat",
            OpClass::Fsync => "fsync",
            OpClass::Other => "other",
        }
    }

    /// Name for a wire code (used by event rendering).
    #[must_use]
    pub fn name_of(code: u64) -> &'static str {
        Self::ALL.get(code as usize).map_or("?", |c| c.name())
    }
}

/// Device I/O operations timed per phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevOp {
    /// Block read.
    Read,
    /// Block write.
    Write,
    /// Flush.
    Flush,
}

impl DevOp {
    /// All device ops, in code order.
    pub const ALL: [DevOp; 3] = [DevOp::Read, DevOp::Write, DevOp::Flush];

    /// Stable wire code.
    #[must_use]
    pub fn code(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(0) as u64
    }

    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DevOp::Read => "read",
            DevOp::Write => "write",
            DevOp::Flush => "flush",
        }
    }
}

/// Default flight-recorder capacity.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Latency-sampling rate for API-boundary ops: [`Telemetry::op_clock`]
/// times one op in this many per thread (must be a power of two).
pub const OP_SAMPLE: u64 = 8;

thread_local! {
    /// Per-thread op tick driving the 1-in-[`OP_SAMPLE`] latency
    /// sampling — thread-local so the hot path pays no shared
    /// read-modify-write for the sampling decision itself.
    static OP_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The shared telemetry handle: one per mount, `Arc`-cloned into every
/// layer that records.
pub struct Telemetry {
    enabled: AtomicBool,
    anchor: Instant,
    op_hist: [LatencyHistogram; 8],
    /// Device I/O histograms: `[dev_op][phase]` with phase 0 = normal,
    /// 1 = recovery.
    dev_hist: [[LatencyHistogram; 2]; 3],
    journal_commit: LatencyHistogram,
    cache_fill: LatencyHistogram,
    commit_stall: LatencyHistogram,
    /// Group-commit batch sizes — raw op counts, not nanoseconds.
    commit_batch: LatencyHistogram,
    ring: EventRing,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::with_capacity(DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("events_recorded", &self.ring.recorded())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// A fresh enabled handle with the default ring capacity.
    #[must_use]
    pub fn new() -> Arc<Telemetry> {
        Arc::new(Telemetry::default())
    }

    /// A fresh enabled handle with a custom ring capacity.
    #[must_use]
    pub fn with_capacity(ring_capacity: usize) -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(true),
            anchor: Instant::now(),
            op_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            dev_hist: std::array::from_fn(|_| std::array::from_fn(|_| LatencyHistogram::new())),
            journal_commit: LatencyHistogram::new(),
            cache_fill: LatencyHistogram::new(),
            commit_stall: LatencyHistogram::new(),
            commit_batch: LatencyHistogram::new(),
            ring: EventRing::new(ring_capacity),
        }
    }

    /// Whether recording is on (one relaxed load — the entire hot-path
    /// cost when telemetry is switched off).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Switch recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Monotonic nanoseconds since this handle was created.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Start a latency measurement: `Some(Instant)` when recording is
    /// on, `None` (free) when off. Pair with one of the `*_observed`
    /// methods.
    #[must_use]
    pub fn clock(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Start a *sampled* API-boundary op measurement: times one op in
    /// [`OP_SAMPLE`] per thread and returns `None` for the rest (the
    /// matching [`Telemetry::op_observed`] still counts those exactly).
    /// Sub-microsecond cache-hit ops can't afford two clock reads each;
    /// quantiles from a 1-in-8 subset are statistically equivalent
    /// while the amortized cost drops below the op itself.
    #[must_use]
    pub fn op_clock(&self) -> Option<Instant> {
        if !self.enabled() {
            return None;
        }
        OP_TICK
            .with(|t| {
                let v = t.get().wrapping_add(1);
                t.set(v);
                v & (OP_SAMPLE - 1) == 0
            })
            .then(Instant::now)
    }

    /// Record an API-boundary op latency sample in nanoseconds.
    pub fn record_op_ns(&self, class: OpClass, ns: u64) {
        if self.enabled() {
            self.op_hist[class.code() as usize].record(ns);
        }
    }

    /// Finish an op measurement started with [`Telemetry::op_clock`]:
    /// a timed sample lands in the histogram buckets, an unsampled op
    /// still bumps the exact per-class count.
    pub fn op_observed(&self, class: OpClass, started: Option<Instant>) {
        if !self.enabled() {
            return;
        }
        let h = &self.op_hist[class.code() as usize];
        match started {
            Some(t0) => h.record(t0.elapsed().as_nanos() as u64),
            None => h.note(),
        }
    }

    /// Record a device-I/O latency sample in nanoseconds.
    pub fn record_dev_ns(&self, op: DevOp, recovery_phase: bool, ns: u64) {
        if self.enabled() {
            self.dev_hist[op.code() as usize][usize::from(recovery_phase)].record(ns);
        }
    }

    /// Finish a device-I/O measurement started with [`Telemetry::clock`].
    pub fn dev_observed(&self, op: DevOp, recovery_phase: bool, started: Option<Instant>) {
        if let Some(t0) = started {
            self.record_dev_ns(op, recovery_phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Record a journal-commit duration in nanoseconds.
    pub fn record_journal_commit_ns(&self, ns: u64) {
        if self.enabled() {
            self.journal_commit.record(ns);
        }
    }

    /// Record a page-cache miss fill (device read under a miss) in
    /// nanoseconds.
    pub fn record_cache_fill_ns(&self, ns: u64) {
        if self.enabled() {
            self.cache_fill.record(ns);
        }
    }

    /// Record the time one mutation spent waiting for its journal
    /// commit (leading it or parked behind the leader), in nanoseconds.
    pub fn record_commit_stall_ns(&self, ns: u64) {
        if self.enabled() {
            self.commit_stall.record(ns);
        }
    }

    /// Record the number of committers amortized into one group-commit
    /// journal flush. The value is a raw count, not nanoseconds.
    pub fn record_commit_batch(&self, n: u64) {
        if self.enabled() {
            self.commit_batch.record(n);
        }
    }

    /// Record a flight-recorder event (timestamped now).
    pub fn event(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        if self.enabled() {
            self.ring.record(self.now_ns(), kind.code(), a, b, c);
        }
    }

    /// Drain the flight recorder: decoded events oldest-first plus the
    /// wraparound loss count. Non-destructive.
    #[must_use]
    pub fn timeline(&self) -> (Vec<Event>, u64) {
        let (raw, dropped) = self.ring.snapshot();
        (raw.iter().filter_map(Event::decode).collect(), dropped)
    }

    /// Histogram for one op class (for merging or direct inspection).
    #[must_use]
    pub fn op_histogram(&self, class: OpClass) -> &LatencyHistogram {
        &self.op_hist[class.code() as usize]
    }

    /// Histogram for one device op + phase.
    #[must_use]
    pub fn dev_histogram(&self, op: DevOp, recovery_phase: bool) -> &LatencyHistogram {
        &self.dev_hist[op.code() as usize][usize::from(recovery_phase)]
    }

    /// Point-in-time summary of every histogram plus flight-recorder
    /// totals.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled: self.enabled(),
            ops: OpClass::ALL
                .iter()
                .map(|&c| (c.name(), self.op_histogram(c).summary()))
                .collect(),
            device: DevOp::ALL
                .iter()
                .flat_map(|&op| {
                    [(false, "normal"), (true, "recovery")]
                        .into_iter()
                        .map(move |(rec, phase)| {
                            (
                                format!("{}/{}", op.name(), phase),
                                self.dev_histogram(op, rec).summary(),
                            )
                        })
                })
                .collect(),
            journal_commit: self.journal_commit.summary(),
            cache_fill: self.cache_fill.summary(),
            commit_stall: self.commit_stall.summary(),
            commit_batch: self.commit_batch.summary(),
            events_recorded: self.ring.recorded(),
            events_dropped: self.ring.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::new();
        t.set_enabled(false);
        t.record_op_ns(OpClass::Read, 100);
        t.event(EventKind::Degraded, 0, 0, 0);
        assert!(t.clock().is_none());
        assert_eq!(t.op_histogram(OpClass::Read).count(), 0);
        assert_eq!(t.timeline().0.len(), 0);
        t.set_enabled(true);
        t.record_op_ns(OpClass::Read, 100);
        assert_eq!(t.op_histogram(OpClass::Read).count(), 1);
    }

    #[test]
    fn timestamps_are_monotone() {
        let t = Telemetry::new();
        t.event(EventKind::RecoveryStarted, 0, 0, 0);
        t.event(EventKind::RecoveryDone, 1, 0, 0);
        let (events, _) = t.timeline();
        assert_eq!(events.len(), 2);
        assert!(events[0].ts_ns <= events[1].ts_ns);
        assert!(events[0].ticket < events[1].ticket);
    }

    #[test]
    fn snapshot_covers_all_tables() {
        let t = Telemetry::new();
        t.record_op_ns(OpClass::Fsync, 5_000);
        t.record_dev_ns(DevOp::Write, true, 9_000);
        t.record_journal_commit_ns(20_000);
        t.record_cache_fill_ns(8_000);
        let snap = t.snapshot();
        assert_eq!(snap.ops.len(), 8);
        assert_eq!(snap.device.len(), 6);
        assert_eq!(
            snap.ops
                .iter()
                .find(|(n, _)| *n == "fsync")
                .unwrap()
                .1
                .count,
            1
        );
        assert_eq!(
            snap.device
                .iter()
                .find(|(n, _)| n == "write/recovery")
                .unwrap()
                .1
                .count,
            1
        );
        assert_eq!(snap.journal_commit.count, 1);
        assert_eq!(snap.cache_fill.count, 1);
    }
}
