//! Trace context and per-op span attribution.
//!
//! A [`TraceCtx`] is minted at a request's entry point (the server
//! wire layer, the CLI shell, a load-generator client) and identifies
//! one logical request end to end. It is threaded *explicitly* across
//! the wire (an optional frame extension); inside the process a
//! per-thread *current-trace cell* is set only at the API boundary —
//! every flight-recorder event recorded while the cell is set carries
//! the trace id, so one request's cross-layer story can be filtered
//! back out of the ring (`timeline --trace <id>`).
//!
//! The [`SpanLayer`] accumulator answers the companion question:
//! *which layer ate the latency?* The RAE API boundary opens a span
//! (`span_begin`), instrumented layers add their elapsed nanoseconds
//! under a layer label as the op passes through them, and the boundary
//! collects the vector at completion (`span_take`). Nested layers
//! (device reads inside a cache fill, the whole journal commit inside
//! a group-commit stall) are kept non-overlapping by *exclusion*:
//! a layer measured via [`crate::Telemetry::layer_observed`] subtracts
//! whatever inner layers accumulated during its own window, so the
//! per-layer vector sums to (at most) the end-to-end latency and the
//! remainder is attributed to `other`.
//!
//! Everything here is thread-local: an op executes on one thread, and
//! threads that record telemetry outside an op (the standby apply
//! thread, background write-back) see an inactive span cell and pay
//! one TLS read.

use std::cell::Cell;

/// One request's identity on the wire and in the flight recorder.
///
/// `trace_id` 0 is reserved for "untraced"; mint non-zero ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Request identity, unique per entry point. Zero means untraced.
    pub trace_id: u64,
    /// Hop counter (incremented when a request fans out; the repo's
    /// single-hop topology keeps it 0 today, the wire carries it so
    /// multi-hop topologies need no format change).
    pub span: u8,
}

impl TraceCtx {
    /// A fresh root context for `trace_id`.
    #[must_use]
    pub fn new(trace_id: u64) -> TraceCtx {
        TraceCtx { trace_id, span: 0 }
    }
}

/// The attribution layers of one request, in stable code order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanLayer {
    /// Waiting to acquire the mutation's inode stripe locks.
    LockWait,
    /// Parked in (or leading) the group-commit state machine, minus
    /// the journal I/O itself.
    CommitStall,
    /// Journal descriptor/data/commit writes and barriers, minus the
    /// device time underneath.
    JournalIo,
    /// Page-cache miss fills, minus the device time underneath.
    CacheFill,
    /// Block-device reads, writes, and flushes.
    Device,
    /// End-to-end latency not covered by an instrumented layer
    /// (CPU, allocator, in-memory structure work). Computed as the
    /// remainder at op completion; nothing adds to it directly.
    Other,
}

/// Number of attribution layers.
pub const SPAN_LAYERS: usize = 6;

impl SpanLayer {
    /// All layers, in code order.
    pub const ALL: [SpanLayer; SPAN_LAYERS] = [
        SpanLayer::LockWait,
        SpanLayer::CommitStall,
        SpanLayer::JournalIo,
        SpanLayer::CacheFill,
        SpanLayer::Device,
        SpanLayer::Other,
    ];

    /// Stable code (index into [`SpanLayer::ALL`]).
    #[must_use]
    pub fn code(self) -> usize {
        Self::ALL.iter().position(|&l| l == self).unwrap_or(5)
    }

    /// Stable snake_case name (metric label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanLayer::LockWait => "lock_wait",
            SpanLayer::CommitStall => "commit_stall",
            SpanLayer::JournalIo => "journal_io",
            SpanLayer::CacheFill => "cache_fill",
            SpanLayer::Device => "device",
            SpanLayer::Other => "other",
        }
    }
}

#[derive(Clone, Copy)]
struct SpanState {
    active: bool,
    acc: [u64; SPAN_LAYERS],
}

thread_local! {
    static SPAN: Cell<SpanState> = const {
        Cell::new(SpanState { active: false, acc: [0; SPAN_LAYERS] })
    };
    static CUR_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Open a fresh span on this thread (the RAE API boundary calls this
/// as an op starts; layer adds before the next `span_take` accumulate
/// into it).
pub fn span_begin() {
    SPAN.with(|s| {
        s.set(SpanState {
            active: true,
            acc: [0; SPAN_LAYERS],
        });
    });
}

/// Add `ns` under `layer` if a span is open (no-op otherwise — safe to
/// call from threads that never open spans).
pub fn span_add(layer: SpanLayer, ns: u64) {
    SPAN.with(|s| {
        let mut st = s.get();
        if st.active {
            st.acc[layer.code()] = st.acc[layer.code()].saturating_add(ns);
            s.set(st);
        }
    });
}

/// The open span's accumulated total across all layers (0 when no
/// span is open). Layer measurements snapshot this at their start so
/// they can exclude nested layers at their end.
#[must_use]
pub fn span_mark() -> u64 {
    SPAN.with(|s| {
        let st = s.get();
        if st.active {
            st.acc.iter().sum()
        } else {
            0
        }
    })
}

/// Close the span and return its per-layer vector, or `None` if no
/// span was open.
pub fn span_take() -> Option<[u64; SPAN_LAYERS]> {
    SPAN.with(|s| {
        let st = s.get();
        if st.active {
            s.set(SpanState {
                active: false,
                acc: [0; SPAN_LAYERS],
            });
            Some(st.acc)
        } else {
            None
        }
    })
}

/// Set this thread's current trace id; subsequent flight-recorder
/// events are stamped with it. Called at API boundaries only.
pub fn set_current_trace(trace_id: u64) {
    CUR_TRACE.with(|t| t.set(trace_id));
}

/// Clear this thread's current trace id.
pub fn clear_current_trace() {
    CUR_TRACE.with(|t| t.set(0));
}

/// This thread's current trace id (0 when untraced).
#[must_use]
pub fn current_trace() -> u64 {
    CUR_TRACE.with(std::cell::Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accumulates_and_takes_once() {
        assert_eq!(span_take(), None, "no span open initially");
        span_begin();
        span_add(SpanLayer::Device, 100);
        span_add(SpanLayer::Device, 50);
        span_add(SpanLayer::CacheFill, 30);
        assert_eq!(span_mark(), 180);
        let acc = span_take().expect("span was open");
        assert_eq!(acc[SpanLayer::Device.code()], 150);
        assert_eq!(acc[SpanLayer::CacheFill.code()], 30);
        assert_eq!(acc[SpanLayer::Other.code()], 0);
        assert_eq!(span_take(), None, "take closes the span");
        span_add(SpanLayer::Device, 999); // must not panic or leak
        assert_eq!(span_mark(), 0);
    }

    #[test]
    fn layer_codes_are_dense_and_stable() {
        for (i, layer) in SpanLayer::ALL.iter().enumerate() {
            assert_eq!(layer.code(), i);
        }
        let names: Vec<&str> = SpanLayer::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            [
                "lock_wait",
                "commit_stall",
                "journal_io",
                "cache_fill",
                "device",
                "other"
            ]
        );
    }

    #[test]
    fn trace_cell_round_trips() {
        assert_eq!(current_trace(), 0);
        set_current_trace(42);
        assert_eq!(current_trace(), 42);
        clear_current_trace();
        assert_eq!(current_trace(), 0);
    }
}
