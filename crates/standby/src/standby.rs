//! The warm-standby shadow: a background thread that keeps a live
//! [`ShadowFs`] continuously caught up with the base's completed
//! operations, so recovery only has to drain the in-flight tail —
//! O(in-flight) instead of O(retained log).
//!
//! # Protocol
//!
//! The RAE runtime publishes every *completed* [`OpRecord`] (including
//! `Failed` and sync-family records, so the standby's accumulated
//! [`ReplayReport`] matches what a cold replay of the same log would
//! produce) over a bounded channel. A dedicated apply thread consumes
//! records in order with [`ShadowFs::apply_record`] — the same
//! constrained-mode step cold replay uses — and maintains watermarks
//! (`completed_seq` published, `applied_seq` applied) in shared
//! atomics.
//!
//! On recovery the runtime requests a **handover**: because the
//! publisher holds the op-log lock while publishing and recovery runs
//! with that lock held, nothing is published concurrently, so the FIFO
//! channel drains the queued tail exactly once and the reply carries
//! the caught-up shadow plus its accumulated report.
//!
//! # Lag policy
//!
//! When the channel is full, [`LagPolicy::Block`] back-pressures the
//! publisher (completion latency absorbs the standby's lag) while
//! [`LagPolicy::DropToColdReplay`] degrades the standby immediately —
//! the runtime then falls back to cold replay at the next recovery.
//!
//! # Snapshot isolation
//!
//! The shadow reads device blocks lazily, but the base writes the live
//! device back asynchronously — a lagging standby that first reads a
//! block *after* the base persisted a later version of it would see
//! the future and re-apply records on top of it. The standby therefore
//! never touches the live device: [`WarmStandby::spawn`] copies the
//! (quiesced) device into a private [`rae_blockdev::MemDisk`] snapshot
//! and the shadow executes against that frozen image.
//!
//! # Audits
//!
//! [`WarmStandby::run_audit`] runs the shadow's full consistency check
//! and a logical tree-diff, then **re-bases** the standby onto a fresh
//! snapshot of the live device: the overlay is dropped wholesale
//! (bounding standby memory) and a post-re-base tree-diff compares the
//! standby's pre-audit state against the base's durable image — the
//! real standby-vs-base divergence check. This is only meaningful when
//! the base is quiesced, checkpointed durable, and the standby caught
//! up; the RAE runtime guarantees all three under its quiesce gate
//! (the FIFO channel guarantees catch-up: the audit request queues
//! behind every published record).
//!
//! Any divergence — a shadow runtime error, a panic in the apply
//! thread, or an audit failure — tears the standby down; the runtime
//! routes the next recovery through cold replay.

use crossbeam::channel::{self, Receiver, Sender};
use rae_blockdev::{BlockDevice, MemDisk};
use rae_shadowfs::{ReplayReport, ShadowFs, ShadowOpts};
use rae_telemetry::{EventKind, Telemetry};
use rae_vfs::{FileSystem, FileType, FsResult, OpRecord, OpenFlags};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// What the publisher does when the standby channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LagPolicy {
    /// Block the completing operation until the standby drains — the
    /// base absorbs standby lag as completion latency.
    #[default]
    Block,
    /// Give up on the warm standby: degrade it immediately and let the
    /// next recovery take the cold-replay path.
    DropToColdReplay,
}

/// Configuration for the warm standby, carried in the RAE runtime
/// config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandbyOpts {
    /// Spawn the standby at mount (and respawn it after recovery).
    pub enabled: bool,
    /// Bound of the publish channel (records in flight to the apply
    /// thread).
    pub channel_capacity: usize,
    /// Run a coordinated audit every this many completed operations;
    /// `0` disables audits.
    pub audit_interval_ops: u64,
    /// Full-channel behavior.
    pub lag_policy: LagPolicy,
}

impl Default for StandbyOpts {
    fn default() -> StandbyOpts {
        StandbyOpts {
            enabled: false,
            channel_capacity: 1024,
            audit_interval_ops: 0,
            lag_policy: LagPolicy::Block,
        }
    }
}

/// Result of publishing one record to the standby.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum Publish {
    /// The record was handed to the apply thread (or queued).
    Accepted,
    /// The standby is (now) degraded; the caller should discard it and
    /// rely on cold replay.
    Degraded,
}

/// A snapshot of the standby's watermarks and health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StandbyStatus {
    /// The apply thread is alive and trusted.
    pub active: bool,
    /// Highest completed sequence number published to the standby.
    pub completed_seq: u64,
    /// Highest sequence number the standby has applied.
    pub applied_seq: u64,
    /// Records published but not yet applied (the drain cost of a warm
    /// handover right now).
    pub lag: u64,
    /// Records applied over the standby's lifetime (backlog included).
    pub applied_records: u64,
    /// Coordinated audits completed successfully.
    pub audits_run: u64,
    /// Divergences observed: cross-check discrepancy notes plus audit
    /// failures.
    pub divergences: u64,
}

/// What a successful audit did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditOutcome {
    /// Overlay blocks released by re-basing the standby onto a fresh
    /// snapshot of the checkpointed device.
    pub compacted_blocks: usize,
}

/// The caught-up shadow handed over at recovery.
pub struct HandoverState {
    /// The live shadow, caught up with every published record.
    pub shadow: Box<ShadowFs>,
    /// Cross-check report accumulated since spawn — the warm
    /// equivalent of a cold replay's [`ReplayReport`].
    pub report: ReplayReport,
    /// Records applied over the standby's lifetime.
    pub applied_records: u64,
}

const HEALTHY: u8 = 0;
const DEGRADED: u8 = 1;
const STOPPED: u8 = 2;

#[derive(Default)]
struct Shared {
    completed_seq: AtomicU64,
    applied_seq: AtomicU64,
    published_records: AtomicU64,
    applied_records: AtomicU64,
    audits_run: AtomicU64,
    divergences: AtomicU64,
    /// Highest lag (published − applied) seen so far, for the
    /// telemetry high-water event.
    lag_high_water: AtomicU64,
    health: AtomicU8,
}

impl Shared {
    fn degrade(&self) {
        let _ =
            self.health
                .compare_exchange(HEALTHY, DEGRADED, Ordering::AcqRel, Ordering::Acquire);
    }

    fn healthy(&self) -> bool {
        self.health.load(Ordering::Acquire) == HEALTHY
    }
}

enum Msg {
    Record(OpRecord),
    Audit(Sender<Result<AuditOutcome, String>>),
    Handover(Sender<HandoverState>),
    Shutdown,
    /// Test-only: hold the apply thread until the receiver yields,
    /// making channel-full conditions deterministic.
    #[cfg(test)]
    Pause(Receiver<()>),
}

/// Handle to the warm standby owned by the RAE runtime.
pub struct WarmStandby {
    tx: Sender<Msg>,
    shared: Arc<Shared>,
    opts: StandbyOpts,
    handle: Option<JoinHandle<()>>,
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl WarmStandby {
    /// Snapshot `dev`, load a shadow over the snapshot (synchronously,
    /// so load errors surface here), and start the apply thread.
    /// `backlog` is replayed first — at mount it is empty; after a
    /// recovery it is the retained completed log, i.e. exactly the
    /// cold-replay initial condition, so the standby's lineage matches
    /// a cold shadow's from then on.
    ///
    /// The caller must hold `dev` quiesced for the duration of this
    /// call (mount-time and the post-recovery respawn both do): the
    /// snapshot must capture the exact state the backlog continues
    /// from. Afterwards the live device is only touched again during
    /// coordinated audits.
    ///
    /// # Errors
    ///
    /// Device snapshot errors; shadow load/validation errors.
    pub fn spawn(
        dev: Arc<dyn BlockDevice>,
        shadow_opts: ShadowOpts,
        opts: StandbyOpts,
        backlog: Vec<OpRecord>,
    ) -> FsResult<WarmStandby> {
        let snapshot: Arc<dyn BlockDevice> = Arc::new(MemDisk::clone_of(dev.as_ref())?);
        let shadow = ShadowFs::load(snapshot, shadow_opts)?;
        let shared = Arc::new(Shared::default());
        if let Some(last) = backlog.last() {
            shared.completed_seq.store(last.seq, Ordering::Release);
        }
        shared
            .published_records
            .store(backlog.len() as u64, Ordering::Release);
        let (tx, rx) = channel::bounded(opts.channel_capacity.max(1));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rae-standby".into())
            .spawn(move || apply_loop(shadow, backlog, &rx, &thread_shared, &dev))
            .expect("spawn standby apply thread");
        Ok(WarmStandby {
            tx,
            shared,
            opts,
            handle: Some(handle),
            telemetry: OnceLock::new(),
        })
    }

    /// Attach a telemetry handle: publish-side lag high-water marks and
    /// coordinated-audit outcomes become flight-recorder events. First
    /// call wins.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// Resume a standby from an already-caught-up shadow — the
    /// post-recovery re-arm path. A warm handover shadow has applied
    /// every completed record and the base has just absorbed its
    /// merged view, so the shadow *is* the current filesystem state:
    /// no device snapshot and no backlog replay are needed, keeping
    /// the re-arm out of the recovery latency. `resume_seq` is the
    /// highest sequence number the shadow covers; `live` is touched
    /// only by future coordinated audits. The same quiescence rule as
    /// [`WarmStandby::spawn`] applies.
    #[must_use]
    pub fn resume(
        shadow: ShadowFs,
        opts: StandbyOpts,
        live: Arc<dyn BlockDevice>,
        resume_seq: u64,
    ) -> WarmStandby {
        let shared = Arc::new(Shared::default());
        shared.completed_seq.store(resume_seq, Ordering::Release);
        shared.applied_seq.store(resume_seq, Ordering::Release);
        let (tx, rx) = channel::bounded(opts.channel_capacity.max(1));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rae-standby".into())
            .spawn(move || apply_loop(shadow, Vec::new(), &rx, &thread_shared, &live))
            .expect("spawn standby apply thread");
        WarmStandby {
            tx,
            shared,
            opts,
            handle: Some(handle),
            telemetry: OnceLock::new(),
        }
    }

    /// Publish one completed record. Call under the same lock that
    /// serializes operation completion (the runtime's op-log lock) so
    /// the channel order is the completion order.
    pub fn publish(&self, rec: OpRecord) -> Publish {
        if !self.shared.healthy() {
            return Publish::Degraded;
        }
        self.shared.completed_seq.store(rec.seq, Ordering::Release);
        let published = self.shared.published_records.fetch_add(1, Ordering::AcqRel) + 1;
        let lag = published.saturating_sub(self.shared.applied_records.load(Ordering::Acquire));
        if lag > self.shared.lag_high_water.fetch_max(lag, Ordering::AcqRel) {
            if let Some(t) = self.telemetry.get() {
                t.event(EventKind::StandbyLag, lag, rec.seq, 0);
            }
        }
        let sent = match self.opts.lag_policy {
            LagPolicy::Block => self.tx.send(Msg::Record(rec)).is_ok(),
            LagPolicy::DropToColdReplay => self.tx.try_send(Msg::Record(rec)).is_ok(),
        };
        if sent {
            Publish::Accepted
        } else {
            self.shared.degrade();
            Publish::Degraded
        }
    }

    /// Current watermarks and health.
    #[must_use]
    pub fn status(&self) -> StandbyStatus {
        let published = self.shared.published_records.load(Ordering::Acquire);
        let applied = self.shared.applied_records.load(Ordering::Acquire);
        StandbyStatus {
            active: self.shared.healthy(),
            completed_seq: self.shared.completed_seq.load(Ordering::Acquire),
            applied_seq: self.shared.applied_seq.load(Ordering::Acquire),
            lag: published.saturating_sub(applied),
            applied_records: applied,
            audits_run: self.shared.audits_run.load(Ordering::Acquire),
            divergences: self.shared.divergences.load(Ordering::Acquire),
        }
    }

    /// Run a coordinated audit on the warm shadow: full consistency
    /// check, model tree-diff against the incrementally maintained
    /// refinement model (when enabled), then a **re-base** onto a
    /// fresh snapshot of the live device with a before/after tree-diff
    /// — any difference means the standby and the base's durable state
    /// have diverged. Re-basing drops the accumulated overlay, so
    /// audits also bound standby memory.
    ///
    /// The caller **must** have quiesced the base and checkpointed it
    /// durable first — the re-base adopts the raw device image, which
    /// is only the base's full state when the device is still and
    /// everything durable; the standby must also be caught up (the
    /// FIFO channel guarantees that: the audit request queues behind
    /// every published record).
    ///
    /// # Errors
    ///
    /// A human-readable divergence description. The standby is already
    /// degraded when this returns `Err`; discard the handle.
    pub fn run_audit(&self) -> Result<AuditOutcome, String> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        if self.tx.send(Msg::Audit(reply_tx)).is_err() {
            self.shared.degrade();
            self.audit_event(Err(&"apply thread gone".to_string()));
            return Err("standby apply thread is gone".into());
        }
        let outcome = match reply_rx.recv() {
            Ok(outcome) => outcome,
            Err(_) => {
                self.shared.degrade();
                Err("standby apply thread exited during audit".into())
            }
        };
        self.audit_event(outcome.as_ref());
        outcome
    }

    fn audit_event(&self, outcome: Result<&AuditOutcome, &String>) {
        if let Some(t) = self.telemetry.get() {
            match outcome {
                Ok(o) => t.event(EventKind::StandbyAudit, 0, o.compacted_blocks as u64, 0),
                Err(_) => t.event(EventKind::StandbyAudit, 1, 0, 0),
            }
        }
    }

    /// Request the recovery handover: drain everything published so
    /// far (the caller holds the op-log lock, so nothing new can be
    /// published) and take ownership of the caught-up shadow.
    ///
    /// Returns `None` if the standby degraded — the caller falls back
    /// to cold replay.
    pub fn handover(mut self) -> Option<HandoverState> {
        // A degraded standby (dropped records, failed apply, failed
        // audit) may still have a live apply thread — its state is
        // untrusted regardless, so refuse up front.
        if !self.shared.healthy() {
            return None;
        }
        let (reply_tx, reply_rx) = channel::bounded(1);
        if self.tx.send(Msg::Handover(reply_tx)).is_err() {
            return None;
        }
        let state = reply_rx.recv().ok();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        state
    }

    /// Records published but not yet applied — what a handover right
    /// now would have to drain.
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.status().lag
    }

    #[cfg(test)]
    fn pause(&self) -> Sender<()> {
        let (release_tx, release_rx) = channel::bounded(1);
        assert!(
            self.tx.send(Msg::Pause(release_rx)).is_ok(),
            "standby alive"
        );
        release_tx
    }

    fn stop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WarmStandby {
    fn drop(&mut self) {
        self.stop();
    }
}

fn apply_loop(
    mut shadow: ShadowFs,
    backlog: Vec<OpRecord>,
    rx: &Receiver<Msg>,
    shared: &Shared,
    live: &Arc<dyn BlockDevice>,
) {
    let mut report = ReplayReport::default();
    for rec in &backlog {
        if !apply_one(&mut shadow, rec, &mut report, shared) {
            return;
        }
    }
    loop {
        match rx.recv() {
            Ok(Msg::Record(rec)) => {
                if !apply_one(&mut shadow, &rec, &mut report, shared) {
                    return;
                }
            }
            Ok(Msg::Audit(reply)) => match audit(&mut shadow, live.as_ref()) {
                Ok(outcome) => {
                    shared.audits_run.fetch_add(1, Ordering::AcqRel);
                    let _ = reply.send(Ok(outcome));
                }
                Err(why) => {
                    shared.divergences.fetch_add(1, Ordering::AcqRel);
                    shared.degrade();
                    let _ = reply.send(Err(why));
                    return;
                }
            },
            Ok(Msg::Handover(reply)) => {
                let _ = reply.send(HandoverState {
                    shadow: Box::new(shadow),
                    report,
                    applied_records: shared.applied_records.load(Ordering::Acquire),
                });
                shared.health.store(STOPPED, Ordering::Release);
                return;
            }
            #[cfg(test)]
            Ok(Msg::Pause(release)) => {
                let _ = release.recv();
            }
            Ok(Msg::Shutdown) | Err(_) => {
                shared.health.store(STOPPED, Ordering::Release);
                return;
            }
        }
    }
}

/// Apply one record; `false` means the standby is no longer
/// trustworthy (shadow runtime error or panic) and has been degraded.
fn apply_one(
    shadow: &mut ShadowFs,
    rec: &OpRecord,
    report: &mut ReplayReport,
    shared: &Shared,
) -> bool {
    let noted_before = report.discrepancies.len();
    let result = catch_unwind(AssertUnwindSafe(|| shadow.apply_record(rec, report)));
    match result {
        Ok(Ok(())) => {
            let noted = (report.discrepancies.len() - noted_before) as u64;
            if noted > 0 {
                shared.divergences.fetch_add(noted, Ordering::AcqRel);
            }
            shared.applied_seq.store(rec.seq, Ordering::Release);
            shared.applied_records.fetch_add(1, Ordering::AcqRel);
            true
        }
        Ok(Err(_)) | Err(_) => {
            shared.divergences.fetch_add(1, Ordering::AcqRel);
            shared.degrade();
            false
        }
    }
}

/// The coordinated audit. `live` must be quiesced and checkpointed
/// durable, and the shadow caught up (the runtime's responsibility):
///
/// 1. full consistency check of the merged view;
/// 2. tree-diff of the incrementally maintained refinement model
///    against a fresh walk (when refinement is on) — internal drift;
/// 3. re-base onto a snapshot of `live`, then tree-diff the pre-audit
///    state against the adopted durable image — standby-vs-base
///    divergence, caught *before* a bug fires.
fn audit(shadow: &mut ShadowFs, live: &dyn BlockDevice) -> Result<AuditOutcome, String> {
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<AuditOutcome, String> {
        shadow
            .verify_consistency()
            .map_err(|e| format!("standby consistency check failed: {e}"))?;
        let before = shadow
            .snapshot_model()
            .map_err(|e| format!("standby model walk failed: {e}"))?;
        if let Some(maintained) = shadow.refinement_model() {
            let diffs = diff_trees(maintained, &before);
            if !diffs.is_empty() {
                return Err(format!("standby model drift: {}", diffs.join("; ")));
            }
        }
        let fresh = MemDisk::clone_of(live).map_err(|e| format!("device snapshot failed: {e}"))?;
        let compacted_blocks = shadow
            .rebase(Arc::new(fresh))
            .map_err(|e| format!("standby re-base failed: {e}"))?;
        let after = shadow
            .snapshot_model()
            .map_err(|e| format!("durable-image walk failed: {e}"))?;
        let diffs = diff_trees(&before, &after);
        if !diffs.is_empty() {
            return Err(format!(
                "standby diverged from the base's durable state: {}",
                diffs.join("; ")
            ));
        }
        Ok(AuditOutcome { compacted_blocks })
    }));
    match result {
        Ok(outcome) => outcome,
        Err(_) => Err("standby audit panicked".into()),
    }
}

/// Maximum differences reported by a tree diff before it stops
/// walking; the audit only needs a non-empty witness.
const MAX_DIFFS: usize = 16;

/// Compare two filesystem trees by logical content: names, types,
/// sizes, link counts, file bytes and symlink targets. Inode numbers
/// and block accounting are implementation detail and are ignored.
fn diff_trees(a: &dyn FileSystem, b: &dyn FileSystem) -> Vec<String> {
    let mut diffs = Vec::new();
    diff_path(a, b, "/", &mut diffs);
    diffs
}

fn diff_path(a: &dyn FileSystem, b: &dyn FileSystem, path: &str, diffs: &mut Vec<String>) {
    if diffs.len() >= MAX_DIFFS {
        return;
    }
    let (sa, sb) = match (a.stat(path), b.stat(path)) {
        (Ok(sa), Ok(sb)) => (sa, sb),
        (Err(_), Err(_)) => return,
        (ra, rb) => {
            diffs.push(format!(
                "{path}: presence {:?} vs {:?}",
                ra.is_ok(),
                rb.is_ok()
            ));
            return;
        }
    };
    if sa.ftype != sb.ftype {
        diffs.push(format!("{path}: type {:?} vs {:?}", sa.ftype, sb.ftype));
        return;
    }
    if sa.nlink != sb.nlink {
        diffs.push(format!("{path}: nlink {} vs {}", sa.nlink, sb.nlink));
    }
    match sa.ftype {
        FileType::Regular => {
            if sa.size != sb.size {
                diffs.push(format!("{path}: size {} vs {}", sa.size, sb.size));
            } else if read_all(a, path, sa.size) != read_all(b, path, sb.size) {
                diffs.push(format!("{path}: content differs"));
            }
        }
        FileType::Symlink => {
            let (ta, tb) = (a.readlink(path), b.readlink(path));
            if ta != tb {
                diffs.push(format!("{path}: target {ta:?} vs {tb:?}"));
            }
        }
        FileType::Directory => {
            let mut names_a = dir_names(a, path);
            let mut names_b = dir_names(b, path);
            names_a.sort();
            names_b.sort();
            for name in names_a.iter().filter(|n| !names_b.contains(n)) {
                diffs.push(format!("{}: only in maintained model", child(path, name)));
            }
            for name in names_b.iter().filter(|n| !names_a.contains(n)) {
                diffs.push(format!("{}: only in fresh snapshot", child(path, name)));
            }
            for name in names_a.iter().filter(|n| names_b.contains(n)) {
                diff_path(a, b, &child(path, name), diffs);
            }
        }
    }
}

fn child(dir: &str, name: &str) -> String {
    if dir == "/" {
        format!("/{name}")
    } else {
        format!("{dir}/{name}")
    }
}

fn dir_names(fs: &dyn FileSystem, path: &str) -> Vec<String> {
    fs.readdir(path)
        .map(|entries| entries.into_iter().map(|e| e.name).collect())
        .unwrap_or_default()
}

fn read_all(fs: &dyn FileSystem, path: &str, size: u64) -> Option<Vec<u8>> {
    let fd = fs.open(path, OpenFlags::RDONLY).ok()?;
    let data = fs.read(fd, 0, size as usize);
    let _ = fs.close(fd);
    data.ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::MemDisk;
    use rae_fsformat::{apply_corruption, mkfs, Corruption, MkfsParams};
    use rae_shadowfs::{ReadReply, ReadRequest};
    use rae_vfs::{Fd, FsOp, InodeNo};
    use std::time::{Duration, Instant};

    fn fresh_dev() -> Arc<MemDisk> {
        let dev = Arc::new(MemDisk::new(4096));
        mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
        dev
    }

    /// Drive an autonomous shadow over the same image to produce the
    /// completed records a base would have recorded.
    fn record_ops(dev: &Arc<MemDisk>, ops: Vec<FsOp>) -> Vec<OpRecord> {
        let mut generator =
            ShadowFs::load(dev.clone() as Arc<dyn BlockDevice>, ShadowOpts::default()).unwrap();
        let mut records = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            let outcome = generator.execute_autonomous(&op).unwrap();
            let mut rec = OpRecord::new(i as u64 + 1, op);
            rec.complete(outcome);
            records.push(rec);
        }
        records
    }

    fn sample_ops() -> Vec<FsOp> {
        let rw_create = OpenFlags::RDWR | OpenFlags::CREATE;
        vec![
            FsOp::Mkdir {
                path: "/dir".into(),
            },
            FsOp::Create {
                path: "/dir/a".into(),
                flags: rw_create,
            },
            FsOp::Write {
                fd: Fd(3),
                offset: 0,
                data: b"warm payload".into(),
            },
            FsOp::Create {
                path: "/dir/b".into(),
                flags: rw_create,
            },
            FsOp::Close { fd: Fd(4) },
            FsOp::Rename {
                from: "/dir/b".into(),
                to: "/dir/c".into(),
            },
            FsOp::Symlink {
                target: "/dir/a".into(),
                linkpath: "/sym".into(),
            },
        ]
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(
                Instant::now() < deadline,
                "standby did not converge in time"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn spawn_default(dev: &Arc<MemDisk>, opts: StandbyOpts) -> WarmStandby {
        WarmStandby::spawn(
            dev.clone() as Arc<dyn BlockDevice>,
            ShadowOpts::default(),
            opts,
            Vec::new(),
        )
        .unwrap()
    }

    #[test]
    fn apply_thread_catches_up_and_hands_over_live_state() {
        let dev = fresh_dev();
        let records = record_ops(&dev, sample_ops());
        let n = records.len() as u64;
        let standby = spawn_default(&dev, StandbyOpts::default());
        for rec in records {
            assert_eq!(standby.publish(rec), Publish::Accepted);
        }
        wait_until(|| standby.status().lag == 0);
        let status = standby.status();
        assert!(status.active);
        assert_eq!(status.applied_records, n);
        assert_eq!(status.applied_seq, status.completed_seq);

        let mut handed = standby.handover().expect("healthy standby hands over");
        assert!(
            handed.report.is_clean(),
            "{:?}",
            handed.report.discrepancies
        );
        assert_eq!(handed.report.executed, n);
        assert_eq!(handed.applied_records, n);
        let ReadReply::Stat(st) = handed
            .shadow
            .serve_read(&ReadRequest::Stat {
                path: "/dir/a".into(),
            })
            .unwrap()
        else {
            panic!("stat reply shape");
        };
        assert_eq!(st.size, b"warm payload".len() as u64);
    }

    #[test]
    fn backlog_is_replayed_before_new_records() {
        let dev = fresh_dev();
        let mut records = record_ops(&dev, sample_ops());
        let tail = records.split_off(4);
        let standby = WarmStandby::spawn(
            dev.clone() as Arc<dyn BlockDevice>,
            ShadowOpts::default(),
            StandbyOpts::default(),
            records,
        )
        .unwrap();
        for rec in tail {
            assert_eq!(standby.publish(rec), Publish::Accepted);
        }
        wait_until(|| standby.status().lag == 0);
        let handed = standby.handover().expect("handover");
        assert!(
            handed.report.is_clean(),
            "{:?}",
            handed.report.discrepancies
        );
        assert_eq!(handed.report.executed, 7);
    }

    #[test]
    fn block_policy_fills_channel_without_degrading() {
        let dev = fresh_dev();
        let records = record_ops(&dev, sample_ops());
        let capacity = 4;
        let standby = spawn_default(
            &dev,
            StandbyOpts {
                channel_capacity: capacity,
                ..StandbyOpts::default()
            },
        );
        // Hold the apply thread still so the channel genuinely fills.
        let release = standby.pause();
        for rec in records.iter().take(capacity).cloned() {
            assert_eq!(standby.publish(rec), Publish::Accepted);
        }
        assert_eq!(standby.status().lag, capacity as u64);
        assert!(
            standby.status().active,
            "full channel is not a failure under Block"
        );
        release.send(()).unwrap();
        for rec in records.iter().skip(capacity).cloned() {
            assert_eq!(standby.publish(rec), Publish::Accepted);
        }
        wait_until(|| standby.status().lag == 0);
        assert_eq!(standby.status().applied_records, 7);
    }

    #[test]
    fn drop_policy_degrades_when_consumer_is_slow() {
        let dev = fresh_dev();
        let records = record_ops(&dev, sample_ops());
        let standby = spawn_default(
            &dev,
            StandbyOpts {
                channel_capacity: 2,
                lag_policy: LagPolicy::DropToColdReplay,
                ..StandbyOpts::default()
            },
        );
        let release = standby.pause();
        let mut outcomes = Vec::new();
        for rec in records {
            outcomes.push(standby.publish(rec));
        }
        assert_eq!(outcomes[0], Publish::Accepted);
        assert_eq!(*outcomes.last().unwrap(), Publish::Degraded);
        assert!(!standby.status().active);
        release.send(()).unwrap();
        // A degraded standby refuses the handover: cold-replay fallback.
        assert!(standby.handover().is_none());
    }

    #[test]
    fn shadow_runtime_error_degrades_to_cold_fallback() {
        let dev = fresh_dev();
        let records = record_ops(&dev, sample_ops());
        // Rot the root inode *before* the standby snapshots the device
        // (and skip load-time validation so the spawn itself succeeds):
        // the first walk hits a failed structural check — a shadow
        // runtime error.
        apply_corruption(dev.as_ref(), &Corruption::InodeBitrot { ino: InodeNo(1) }).unwrap();
        let standby = WarmStandby::spawn(
            dev.clone() as Arc<dyn BlockDevice>,
            ShadowOpts {
                validate_image: false,
                ..ShadowOpts::default()
            },
            StandbyOpts::default(),
            Vec::new(),
        )
        .unwrap();
        for rec in records {
            let _ = standby.publish(rec);
        }
        wait_until(|| !standby.status().active);
        assert!(standby.status().divergences > 0);
        assert!(
            standby.handover().is_none(),
            "degraded standby must not hand over"
        );
    }

    #[test]
    fn handover_drains_queued_tail_exactly_once() {
        let dev = fresh_dev();
        let records = record_ops(&dev, sample_ops());
        let n = records.len() as u64;
        let standby = spawn_default(&dev, StandbyOpts::default());
        let release = standby.pause();
        for rec in records {
            assert_eq!(standby.publish(rec), Publish::Accepted);
        }
        assert_eq!(standby.status().lag, n, "everything still queued");
        release.send(()).unwrap();
        // FIFO: the handover request queues behind every record, so the
        // reply carries a fully caught-up shadow — each record applied
        // exactly once.
        let handed = standby.handover().expect("handover");
        assert_eq!(handed.applied_records, n);
        assert_eq!(handed.report.executed, n);
        assert!(
            handed.report.is_clean(),
            "{:?}",
            handed.report.discrepancies
        );
    }

    #[test]
    fn audit_passes_when_standby_matches_durable_state() {
        let dev = fresh_dev();
        let standby = WarmStandby::spawn(
            dev.clone() as Arc<dyn BlockDevice>,
            ShadowOpts {
                refinement_check: true,
                ..ShadowOpts::default()
            },
            StandbyOpts {
                audit_interval_ops: 4,
                ..StandbyOpts::default()
            },
            Vec::new(),
        )
        .unwrap();
        // Nothing published: the snapshot still equals the device, so
        // the re-base adopts an identical image and finds no
        // divergence. The only overlay entry released is the
        // superblock counter refresh the consistency check writes.
        let outcome = standby.run_audit().expect("healthy audit");
        assert_eq!(outcome.compacted_blocks, 1);
        let status = standby.status();
        assert_eq!(status.audits_run, 1);
        assert!(status.active);
        assert_eq!(status.divergences, 0);
    }

    #[test]
    fn audit_detects_divergence_from_durable_state() {
        let dev = fresh_dev();
        let records = record_ops(&dev, sample_ops());
        let standby = spawn_default(&dev, StandbyOpts::default());
        for rec in records {
            assert_eq!(standby.publish(rec), Publish::Accepted);
        }
        wait_until(|| standby.status().lag == 0);
        // The published records never reached the device (the generator
        // shadow kept them in its overlay), so the standby is ahead of
        // the durable image — exactly the skew the re-base diff exists
        // to catch.
        let err = standby
            .run_audit()
            .expect_err("standby-vs-base skew must fail the audit");
        assert!(err.contains("diverged"), "{err}");
        let status = standby.status();
        assert!(!status.active);
        assert!(status.divergences > 0);
        assert!(
            standby.handover().is_none(),
            "a diverged standby must not hand over"
        );
    }
}
