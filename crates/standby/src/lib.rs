//! `rae-standby`: the warm-standby shadow subsystem.
//!
//! A cold RAE recovery pays O(retained log): load a fresh shadow, then
//! replay every retained completed record. The warm standby moves that
//! replay off the critical path — a background thread keeps a live
//! [`rae_shadowfs::ShadowFs`] continuously caught up as operations
//! complete, so recovery only drains the in-flight tail:
//! O(in-flight). See [`standby`] for the protocol, lag policies,
//! coordinated audits and divergence fallback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod standby;

pub use standby::{
    AuditOutcome, HandoverState, LagPolicy, Publish, StandbyOpts, StandbyStatus, WarmStandby,
};
