//! Property tests of the executable specification itself: the spec is
//! the trust anchor for every differential test, so its own invariants
//! get the heaviest scrutiny.

use proptest::prelude::*;
use rae_fsmodel::ModelFs;
use rae_vfs::{Fd, FileSystem, FileType, FsError, OpenFlags, SetAttr};
use std::collections::BTreeMap;

/// A simplified op alphabet over a small path universe, so sequences
/// collide meaningfully.
#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8),
    Rmdir(u8),
    Create(u8),
    Unlink(u8),
    Rename(u8, u8),
    Link(u8, u8),
    OpenClose(u8),
    WriteAt(u8, u16, u8),
    Truncate(u8, u16),
    SetSize(u8, u16),
}

fn path(n: u8) -> String {
    // 2-level universe of 4 dirs x 4 names
    let d = n % 4;
    let f = (n / 4) % 4;
    if n.is_multiple_of(2) {
        format!("/d{d}/f{f}")
    } else {
        format!("/d{d}")
    }
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Mkdir),
        any::<u8>().prop_map(Op::Rmdir),
        any::<u8>().prop_map(Op::Create),
        any::<u8>().prop_map(Op::Unlink),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Link(a, b)),
        any::<u8>().prop_map(Op::OpenClose),
        (any::<u8>(), any::<u16>(), any::<u8>()).prop_map(|(p, o, b)| Op::WriteAt(p, o, b)),
        (any::<u8>(), any::<u16>()).prop_map(|(p, s)| Op::Truncate(p, s)),
        (any::<u8>(), any::<u16>()).prop_map(|(p, s)| Op::SetSize(p, s)),
    ]
}

fn apply(m: &ModelFs, op: &Op) {
    let _ = match op {
        Op::Mkdir(p) => m.mkdir(&path(*p)),
        Op::Rmdir(p) => m.rmdir(&path(*p)),
        Op::Create(p) => m
            .open(&path(*p), OpenFlags::RDWR | OpenFlags::CREATE)
            .and_then(|fd| m.close(fd)),
        Op::Unlink(p) => m.unlink(&path(*p)),
        Op::Rename(a, b) => m.rename(&path(*a), &path(*b)),
        Op::Link(a, b) => m.link(&path(*a), &path(*b)),
        Op::OpenClose(p) => m
            .open(&path(*p), OpenFlags::RDONLY)
            .and_then(|fd| m.close(fd)),
        Op::WriteAt(p, off, byte) => m
            .open(&path(*p), OpenFlags::RDWR | OpenFlags::CREATE)
            .and_then(|fd| {
                m.write(fd, u64::from(*off), &[*byte])?;
                m.close(fd)
            }),
        Op::Truncate(p, size) => m.open(&path(*p), OpenFlags::RDWR).and_then(|fd| {
            m.truncate(fd, u64::from(*size))?;
            m.close(fd)
        }),
        Op::SetSize(p, size) => m.setattr(
            &path(*p),
            SetAttr {
                size: Some(u64::from(*size)),
                mtime: None,
            },
        ),
    };
}

/// Walk the tree and check global invariants.
fn check_invariants(m: &ModelFs) -> Result<(), TestCaseError> {
    let mut stack = vec![String::from("/")];
    let mut ino_nlinks: BTreeMap<u32, u32> = BTreeMap::new();
    let mut ino_claimed: BTreeMap<u32, u32> = BTreeMap::new();
    while let Some(dir) = stack.pop() {
        let dstat = m.stat(&dir).unwrap();
        prop_assert_eq!(dstat.ftype, FileType::Directory);
        let entries = m.readdir(&dir).unwrap();
        // nlink of a dir = 2 + subdirectories
        let subdirs = entries
            .iter()
            .filter(|e| e.ftype == FileType::Directory)
            .count() as u32;
        prop_assert_eq!(dstat.nlink, 2 + subdirs, "dir {} nlink", &dir);
        // no duplicate names
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        prop_assert_eq!(before, names.len(), "duplicate names in {}", &dir);

        for e in entries {
            let p = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{dir}/{}", e.name)
            };
            let st = m.stat(&p).unwrap();
            prop_assert_eq!(st.ino, e.ino, "readdir/stat ino mismatch at {}", &p);
            prop_assert_eq!(st.ftype, e.ftype, "type mismatch at {}", &p);
            match e.ftype {
                FileType::Directory => stack.push(p),
                FileType::Regular => {
                    ino_nlinks.insert(e.ino.0, st.nlink);
                    *ino_claimed.entry(e.ino.0).or_insert(0) += 1;
                }
                FileType::Symlink => {
                    prop_assert!(m.readlink(&p).is_ok());
                }
            }
        }
    }
    // hard-link accounting: recorded nlink equals discovered path count
    for (ino, nlink) in ino_nlinks {
        prop_assert_eq!(nlink, ino_claimed[&ino], "ino {} nlink vs paths", ino);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// After any op sequence, the model's tree satisfies the global
    /// invariants (nlink accounting, no duplicates, readdir/stat
    /// agreement) and no descriptors leak.
    #[test]
    fn model_invariants_hold(ops in proptest::collection::vec(arb_op(), 1..250)) {
        let m = ModelFs::new();
        for op in &ops {
            apply(&m, op);
        }
        check_invariants(&m)?;
        prop_assert_eq!(m.open_fd_count(), 0, "descriptor leak");
    }

    /// Operations that return an error leave the observable tree
    /// untouched (failure atomicity of the spec).
    #[test]
    fn failed_ops_change_nothing(setup in proptest::collection::vec(arb_op(), 0..60), probe in arb_op()) {
        let m = ModelFs::new();
        for op in &setup {
            apply(&m, op);
        }
        let before = snapshot(&m);
        // find an op that fails, run it, compare
        let failed = match &probe {
            Op::Mkdir(p) => m.mkdir(&path(*p)).is_err(),
            Op::Rmdir(p) => m.rmdir(&path(*p)).is_err(),
            Op::Unlink(p) => m.unlink(&path(*p)).is_err(),
            Op::Rename(a, b) => m.rename(&path(*a), &path(*b)).is_err(),
            Op::Link(a, b) => m.link(&path(*a), &path(*b)).is_err(),
            _ => return Ok(()), // open-based ops roll back via close; skip
        };
        if failed {
            prop_assert_eq!(snapshot(&m), before, "failed op mutated state");
        }
    }

    /// read(write(x)) == x at arbitrary offsets (contents round-trip).
    #[test]
    fn write_read_roundtrip(
        offset in 0u64..100_000,
        data in proptest::collection::vec(any::<u8>(), 1..2000),
    ) {
        let m = ModelFs::new();
        let fd = m.open("/f", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        m.write(fd, offset, &data).unwrap();
        prop_assert_eq!(m.read(fd, offset, data.len()).unwrap(), data.clone());
        // bytes before the write are zero
        if offset > 0 {
            let probe = m.read(fd, offset - 1, 1).unwrap();
            prop_assert_eq!(probe, vec![0u8]);
        }
        prop_assert_eq!(m.fstat(fd).unwrap().size, offset + data.len() as u64);
        m.close(fd).unwrap();
    }

    /// Descriptor numbers are dense-lowest-free under arbitrary
    /// open/close interleavings.
    #[test]
    fn fd_allocation_is_always_lowest_free(closes in proptest::collection::vec(any::<u8>(), 1..40)) {
        let m = ModelFs::new();
        let mut open: Vec<Fd> = Vec::new();
        for (i, c) in closes.iter().enumerate() {
            // open one
            let fd = m.open(&format!("/f{i}"), OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
            // fd must equal the smallest number not currently open
            let mut expect = rae_vfs::FIRST_FD;
            let mut in_use: Vec<u32> = open.iter().map(|f| f.0).collect();
            in_use.sort_unstable();
            for u in in_use {
                if u == expect {
                    expect += 1;
                }
            }
            prop_assert_eq!(fd.0, expect);
            open.push(fd);
            // maybe close a random one
            if !open.is_empty() && (*c as usize).is_multiple_of(3) {
                let victim = open.remove(*c as usize % open.len());
                m.close(victim).unwrap();
            }
        }
        for fd in open {
            m.close(fd).unwrap();
        }
        prop_assert_eq!(m.open_fd_count(), 0);
    }
}

/// Normalized tree snapshot for atomicity comparisons.
fn snapshot(m: &ModelFs) -> BTreeMap<String, (String, u64, u32)> {
    let mut out = BTreeMap::new();
    let mut stack = vec![String::from("/")];
    while let Some(dir) = stack.pop() {
        for e in m.readdir(&dir).unwrap() {
            let p = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{dir}/{}", e.name)
            };
            let st = m.stat(&p).unwrap();
            out.insert(p.clone(), (st.ftype.to_string(), st.size, st.nlink));
            if e.ftype == FileType::Directory {
                stack.push(p);
            }
        }
    }
    out
}

#[test]
fn model_rejects_io_on_directories() {
    let m = ModelFs::new();
    m.mkdir("/d").unwrap();
    assert_eq!(m.open("/d", OpenFlags::RDONLY), Err(FsError::IsDir));
    assert_eq!(m.open("/d", OpenFlags::RDWR), Err(FsError::IsDir));
}
