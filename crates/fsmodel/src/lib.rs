//! Executable abstract specification of the filesystem API.
//!
//! [`ModelFs`] is a pure, sequential, in-memory state machine
//! implementing [`rae_vfs::FileSystem`]. It plays the role the Verus
//! specification plays in the paper: the definition of *correct*
//! behaviour that the shadow filesystem is checked against
//! (continuously, when refinement checking is enabled, and exhaustively
//! in property-based tests), and the oracle for differential testing of
//! the base.
//!
//! # Canonical semantics
//!
//! The model pins down every observable decision both filesystems must
//! agree on. Highlights (full details on each method):
//!
//! * **Descriptors** are allocated lowest-free starting at
//!   [`rae_vfs::FIRST_FD`]; descriptor numbering is application-visible
//!   state and must be identical across implementations (RAE
//!   reconstructs it after recovery).
//! * **Inode numbers** are a *policy* decision (§3.3 of the paper): the
//!   model allocates lowest-free, the base allocates with a rotating
//!   hint; differential comparison therefore checks inode numbers for
//!   *consistency* (a stable bijection), not equality.
//! * Directories cannot be opened; symlinks are leaf objects (never
//!   followed); `unlink`/`rename`-replace of a file with open
//!   descriptors returns [`rae_vfs::FsError::Busy`] (this stack does not model
//!   orphan inodes — recorded in DESIGN.md).
//! * `fsync`/`sync` are API no-ops in the model (durability is not
//!   observable through the API).
//! * The model has unbounded capacity: it never returns `NoSpace` /
//!   `NoInodes`. Differential workloads are sized to fit the concrete
//!   filesystems.
//!
//! # Example
//!
//! ```
//! use rae_fsmodel::ModelFs;
//! use rae_vfs::{FileSystem, OpenFlags};
//!
//! # fn main() -> rae_vfs::FsResult<()> {
//! let fs = ModelFs::new();
//! fs.mkdir("/docs")?;
//! let fd = fs.open("/docs/a.txt", OpenFlags::RDWR | OpenFlags::CREATE)?;
//! fs.write(fd, 0, b"hello")?;
//! assert_eq!(fs.read(fd, 0, 5)?, b"hello");
//! fs.close(fd)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mirror;
mod model;

pub use mirror::mirror_of;
pub use model::ModelFs;
