//! Build a model mirroring the current tree of any filesystem.
//!
//! Used by the shadow's refinement checking (the model must start from
//! the same on-disk state the shadow starts from) and by differential
//! test harnesses.

use crate::model::ModelFs;
use rae_vfs::{FileSystem, FileType, FsResult, OpenFlags};

/// Walk `fs` from the root and reproduce its tree (directories, file
/// contents, symlink targets, hard links) in a fresh [`ModelFs`].
///
/// Open descriptors of `fs` are not mirrored — callers re-open as
/// needed. Hard links are detected via inode numbers and reproduced as
/// links so `nlink` matches.
///
/// # Errors
///
/// Any error returned by `fs` during the walk.
pub fn mirror_of(fs: &dyn FileSystem) -> FsResult<ModelFs> {
    let model = ModelFs::new();
    let mut seen_files: std::collections::HashMap<rae_vfs::InodeNo, String> =
        std::collections::HashMap::new();
    let mut stack = vec![String::from("/")];

    while let Some(dir) = stack.pop() {
        for entry in fs.readdir(&dir)? {
            let path = if dir == "/" {
                format!("/{}", entry.name)
            } else {
                format!("{dir}/{}", entry.name)
            };
            match entry.ftype {
                FileType::Directory => {
                    model.mkdir(&path)?;
                    stack.push(path);
                }
                FileType::Symlink => {
                    let target = fs.readlink(&path)?;
                    model.symlink(&target, &path)?;
                }
                FileType::Regular => {
                    if let Some(first) = seen_files.get(&entry.ino) {
                        model.link(first, &path)?;
                        continue;
                    }
                    let st = fs.stat(&path)?;
                    let fd = fs.open(&path, OpenFlags::RDONLY)?;
                    let mfd = model.open(&path, OpenFlags::RDWR | OpenFlags::CREATE)?;
                    let mut off = 0u64;
                    while off < st.size {
                        let chunk = fs.read(fd, off, 1 << 16)?;
                        if chunk.is_empty() {
                            // sparse tail: extend with zeroes via truncate
                            break;
                        }
                        model.write(mfd, off, &chunk)?;
                        off += chunk.len() as u64;
                    }
                    if off < st.size {
                        model.truncate(mfd, st.size)?;
                    }
                    model.close(mfd)?;
                    fs.close(fd)?;
                    seen_files.insert(entry.ino, path);
                }
            }
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_vfs::SetAttr;

    #[test]
    fn mirrors_tree_contents_and_links() {
        let src = ModelFs::new();
        src.mkdir("/d").unwrap();
        src.mkdir("/d/e").unwrap();
        let fd = src
            .open("/d/f", OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        src.write(fd, 0, b"payload").unwrap();
        src.close(fd).unwrap();
        src.link("/d/f", "/d/e/g").unwrap();
        src.symlink("/d/f", "/s").unwrap();

        let dst = mirror_of(&src).unwrap();
        assert_eq!(dst.stat("/d/f").unwrap().size, 7);
        assert_eq!(dst.stat("/d/f").unwrap().nlink, 2);
        assert_eq!(
            dst.stat("/d/f").unwrap().ino,
            dst.stat("/d/e/g").unwrap().ino
        );
        assert_eq!(dst.readlink("/s").unwrap(), "/d/f");
        let fd = dst.open("/d/e/g", OpenFlags::RDONLY).unwrap();
        assert_eq!(dst.read(fd, 0, 7).unwrap(), b"payload");
        dst.close(fd).unwrap();
    }

    #[test]
    fn mirrors_sparse_file_sizes() {
        let src = ModelFs::new();
        let fd = src
            .open("/sparse", OpenFlags::RDWR | OpenFlags::CREATE)
            .unwrap();
        src.close(fd).unwrap();
        src.setattr(
            "/sparse",
            SetAttr {
                size: Some(10_000),
                mtime: None,
            },
        )
        .unwrap();

        let dst = mirror_of(&src).unwrap();
        assert_eq!(dst.stat("/sparse").unwrap().size, 10_000);
    }

    #[test]
    fn mirror_of_empty_fs_is_empty() {
        let src = ModelFs::new();
        let dst = mirror_of(&src).unwrap();
        assert!(dst.readdir("/").unwrap().is_empty());
        assert_eq!(dst.inode_count(), 1);
    }
}
