//! The model state machine.

use parking_lot::Mutex;
use rae_vfs::{
    split_parent, split_path, DirEntry, Fd, FileStat, FileSystem, FileType, FsError,
    FsGeometryInfo, FsResult, InodeNo, OpenFlags, SetAttr, FIRST_FD, MAX_FILE_SIZE, MAX_LINKS,
    MAX_NAME_LEN, MAX_OPEN_FILES, ROOT_INO,
};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Node {
    File { data: Vec<u8>, nlink: u32 },
    Dir { children: BTreeMap<String, InodeNo> },
    Symlink { target: String },
}

#[derive(Debug, Clone)]
struct Inode {
    node: Node,
    mtime: u64,
    ctime: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenFile {
    ino: InodeNo,
    flags: OpenFlags,
}

#[derive(Debug, Clone)]
struct State {
    inodes: BTreeMap<InodeNo, Inode>,
    fds: BTreeMap<Fd, OpenFile>,
    clock: u64,
}

impl State {
    fn new() -> State {
        let mut inodes = BTreeMap::new();
        inodes.insert(
            ROOT_INO,
            Inode {
                node: Node::Dir {
                    children: BTreeMap::new(),
                },
                mtime: 0,
                ctime: 0,
            },
        );
        State {
            inodes,
            fds: BTreeMap::new(),
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn alloc_ino(&self) -> InodeNo {
        let mut candidate = 2u32;
        for &ino in self.inodes.keys() {
            if ino.0 > candidate {
                break;
            }
            if ino.0 >= candidate {
                candidate = ino.0 + 1;
            }
        }
        InodeNo(candidate)
    }

    fn alloc_fd(&self) -> FsResult<Fd> {
        if self.fds.len() >= MAX_OPEN_FILES {
            return Err(FsError::TooManyOpenFiles);
        }
        let mut candidate = FIRST_FD;
        for &fd in self.fds.keys() {
            if fd.0 > candidate {
                break;
            }
            if fd.0 >= candidate {
                candidate = fd.0 + 1;
            }
        }
        Ok(Fd(candidate))
    }

    /// Resolve a component list to an inode (directories only along the
    /// way).
    fn resolve(&self, comps: &[&str]) -> FsResult<InodeNo> {
        let mut cur = ROOT_INO;
        for comp in comps {
            let inode = &self.inodes[&cur];
            match &inode.node {
                Node::Dir { children } => match children.get(*comp) {
                    Some(&next) => cur = next,
                    None => return Err(FsError::NotFound),
                },
                _ => return Err(FsError::NotDir),
            }
        }
        Ok(cur)
    }

    /// Resolve the parent directory of `path`; returns `(parent_ino, name)`.
    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(InodeNo, &'p str)> {
        let (parent_comps, name) = split_parent(path)?;
        let parent = self.resolve(&parent_comps)?;
        match self.inodes[&parent].node {
            Node::Dir { .. } => Ok((parent, name)),
            _ => Err(FsError::NotDir),
        }
    }

    fn children(&self, ino: InodeNo) -> &BTreeMap<String, InodeNo> {
        match &self.inodes[&ino].node {
            Node::Dir { children } => children,
            _ => unreachable!("children() called on a non-directory"),
        }
    }

    fn children_mut(&mut self, ino: InodeNo) -> &mut BTreeMap<String, InodeNo> {
        match &mut self.inodes.get_mut(&ino).expect("valid ino").node {
            Node::Dir { children } => children,
            _ => unreachable!("children_mut() called on a non-directory"),
        }
    }

    fn has_open_fd(&self, ino: InodeNo) -> bool {
        self.fds.values().any(|f| f.ino == ino)
    }

    fn ftype(&self, ino: InodeNo) -> FileType {
        match &self.inodes[&ino].node {
            Node::File { .. } => FileType::Regular,
            Node::Dir { .. } => FileType::Directory,
            Node::Symlink { .. } => FileType::Symlink,
        }
    }

    fn nlink(&self, ino: InodeNo) -> u32 {
        match &self.inodes[&ino].node {
            Node::File { nlink, .. } => *nlink,
            Node::Dir { children } => {
                2 + children
                    .values()
                    .filter(|c| matches!(self.inodes[c].node, Node::Dir { .. }))
                    .count() as u32
            }
            Node::Symlink { .. } => 1,
        }
    }

    fn size(&self, ino: InodeNo) -> u64 {
        match &self.inodes[&ino].node {
            Node::File { data, .. } => data.len() as u64,
            Node::Dir { .. } => 0, // implementation-defined; compared only for files
            Node::Symlink { target } => target.len() as u64,
        }
    }

    fn stat_of(&self, ino: InodeNo) -> FileStat {
        let inode = &self.inodes[&ino];
        FileStat {
            ino,
            ftype: self.ftype(ino),
            size: self.size(ino),
            nlink: self.nlink(ino),
            blocks: 0, // abstract model has no blocks
            mtime: inode.mtime,
            ctime: inode.ctime,
        }
    }

    /// Whether directory `anc` is `node` itself or an ancestor of it.
    fn is_self_or_ancestor(&self, anc: InodeNo, node: InodeNo) -> bool {
        if anc == node {
            return true;
        }
        // BFS down from anc looking for node
        let mut stack = vec![anc];
        while let Some(cur) = stack.pop() {
            if let Node::Dir { children } = &self.inodes[&cur].node {
                for &c in children.values() {
                    if c == node {
                        return true;
                    }
                    if matches!(self.inodes[&c].node, Node::Dir { .. }) {
                        stack.push(c);
                    }
                }
            }
        }
        false
    }

    fn drop_file_if_unlinked(&mut self, ino: InodeNo) {
        let dead = match &self.inodes[&ino].node {
            Node::File { nlink, .. } => *nlink == 0,
            Node::Symlink { .. } => true, // symlinks have exactly one link
            Node::Dir { .. } => false,
        };
        if dead {
            self.inodes.remove(&ino);
        }
    }
}

/// The executable specification. See the crate docs for the semantics
/// it pins down.
#[derive(Debug)]
pub struct ModelFs {
    state: Mutex<State>,
}

impl Default for ModelFs {
    fn default() -> ModelFs {
        ModelFs::new()
    }
}

impl Clone for ModelFs {
    fn clone(&self) -> ModelFs {
        ModelFs {
            state: Mutex::new(self.state.lock().clone()),
        }
    }
}

impl ModelFs {
    /// An empty filesystem containing only the root directory.
    #[must_use]
    pub fn new() -> ModelFs {
        ModelFs {
            state: Mutex::new(State::new()),
        }
    }

    /// Number of live inodes (root included) — used by tests.
    #[must_use]
    pub fn inode_count(&self) -> usize {
        self.state.lock().inodes.len()
    }

    /// Number of open descriptors — used by tests.
    #[must_use]
    pub fn open_fd_count(&self) -> usize {
        self.state.lock().fds.len()
    }

    /// Install a specific descriptor for the regular file at `path`
    /// (refinement-checking support for the shadow's synthetic
    /// `RestoreFd` records — not part of the application API).
    ///
    /// # Errors
    ///
    /// `NotFound`/`NotDir` if the path does not resolve; `IsDir` for
    /// directories; `Exists` if the descriptor is already in use.
    pub fn restore_fd(&self, fd: Fd, path: &str, flags: OpenFlags) -> FsResult<()> {
        let mut st = self.state.lock();
        let comps = split_path(path)?;
        let ino = st.resolve(&comps)?;
        match st.ftype(ino) {
            FileType::Directory => return Err(FsError::IsDir),
            FileType::Symlink => return Err(FsError::InvalidArgument),
            FileType::Regular => {}
        }
        if st.fds.contains_key(&fd) {
            return Err(FsError::Exists);
        }
        st.fds.insert(fd, OpenFile { ino, flags });
        Ok(())
    }
}

impl FileSystem for ModelFs {
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        if !flags.valid() {
            return Err(FsError::InvalidArgument);
        }
        let mut st = self.state.lock();
        let (parent, name) = st.resolve_parent(path)?;
        let existing = st.children(parent).get(name).copied();
        match existing {
            Some(ino) => {
                if flags.creates() && flags.contains(OpenFlags::EXCL) {
                    return Err(FsError::Exists);
                }
                match st.ftype(ino) {
                    FileType::Directory => return Err(FsError::IsDir),
                    FileType::Symlink => return Err(FsError::InvalidArgument),
                    FileType::Regular => {}
                }
                if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                    let now = st.tick();
                    if let Node::File { data, .. } =
                        &mut st.inodes.get_mut(&ino).expect("resolved").node
                    {
                        data.clear();
                    }
                    let inode = st.inodes.get_mut(&ino).expect("resolved");
                    inode.mtime = now;
                    inode.ctime = now;
                }
                let fd = st.alloc_fd()?;
                st.fds.insert(fd, OpenFile { ino, flags });
                Ok(fd)
            }
            None => {
                if !flags.creates() {
                    return Err(FsError::NotFound);
                }
                let ino = st.alloc_ino();
                let now = st.tick();
                st.inodes.insert(
                    ino,
                    Inode {
                        node: Node::File {
                            data: Vec::new(),
                            nlink: 1,
                        },
                        mtime: now,
                        ctime: now,
                    },
                );
                st.children_mut(parent).insert(name.to_string(), ino);
                st.inodes.get_mut(&parent).expect("parent").mtime = now;
                let fd = st.alloc_fd().inspect_err(|_| {
                    // roll back the creation on fd exhaustion
                    st.children_mut(parent).remove(name);
                    st.inodes.remove(&ino);
                })?;
                st.fds.insert(fd, OpenFile { ino, flags });
                Ok(fd)
            }
        }
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let mut st = self.state.lock();
        st.fds.remove(&fd).map(|_| ()).ok_or(FsError::BadFd)
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let st = self.state.lock();
        let of = st.fds.get(&fd).copied().ok_or(FsError::BadFd)?;
        if !of.flags.readable() {
            return Err(FsError::BadAccessMode);
        }
        let Node::File { data, .. } = &st.inodes[&of.ino].node else {
            return Err(FsError::IsDir);
        };
        let start = usize::try_from(offset.min(data.len() as u64)).expect("fits");
        let end = start.saturating_add(len).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let mut st = self.state.lock();
        let of = st.fds.get(&fd).copied().ok_or(FsError::BadFd)?;
        if !of.flags.writable() {
            return Err(FsError::BadAccessMode);
        }
        if data.is_empty() {
            return Ok(0);
        }
        let cur_size = st.size(of.ino);
        let at = if of.flags.contains(OpenFlags::APPEND) {
            cur_size
        } else {
            offset
        };
        let end = at
            .checked_add(data.len() as u64)
            .ok_or(FsError::FileTooBig)?;
        if end > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        let now = st.tick();
        let Node::File { data: file, .. } =
            &mut st.inodes.get_mut(&of.ino).expect("open file").node
        else {
            return Err(FsError::IsDir);
        };
        if file.len() < end as usize {
            file.resize(end as usize, 0);
        }
        file[at as usize..end as usize].copy_from_slice(data);
        let inode = st.inodes.get_mut(&of.ino).expect("open file");
        inode.mtime = now;
        inode.ctime = now;
        Ok(data.len())
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let mut st = self.state.lock();
        let of = st.fds.get(&fd).copied().ok_or(FsError::BadFd)?;
        if !of.flags.writable() {
            return Err(FsError::BadAccessMode);
        }
        if size > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        let now = st.tick();
        let Node::File { data, .. } = &mut st.inodes.get_mut(&of.ino).expect("open").node else {
            return Err(FsError::IsDir);
        };
        data.resize(usize::try_from(size).map_err(|_| FsError::FileTooBig)?, 0);
        let inode = st.inodes.get_mut(&of.ino).expect("open");
        inode.mtime = now;
        inode.ctime = now;
        Ok(())
    }

    fn setattr(&self, path: &str, attr: SetAttr) -> FsResult<()> {
        let mut st = self.state.lock();
        let comps = split_path(path)?;
        let ino = st.resolve(&comps)?;
        if let Some(size) = attr.size {
            match st.ftype(ino) {
                FileType::Directory => return Err(FsError::IsDir),
                FileType::Symlink => return Err(FsError::InvalidArgument),
                FileType::Regular => {}
            }
            if size > MAX_FILE_SIZE {
                return Err(FsError::FileTooBig);
            }
            let now = st.tick();
            if let Node::File { data, .. } = &mut st.inodes.get_mut(&ino).expect("resolved").node {
                data.resize(usize::try_from(size).map_err(|_| FsError::FileTooBig)?, 0);
            }
            let inode = st.inodes.get_mut(&ino).expect("resolved");
            inode.mtime = now;
            inode.ctime = now;
        }
        if let Some(mtime) = attr.mtime {
            let inode = st.inodes.get_mut(&ino).expect("resolved");
            inode.mtime = mtime;
        }
        Ok(())
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let st = self.state.lock();
        if st.fds.contains_key(&fd) {
            Ok(())
        } else {
            Err(FsError::BadFd)
        }
    }

    fn sync(&self) -> FsResult<()> {
        Ok(())
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let (parent, name) = st.resolve_parent(path)?;
        if st.children(parent).contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = st.alloc_ino();
        let now = st.tick();
        st.inodes.insert(
            ino,
            Inode {
                node: Node::Dir {
                    children: BTreeMap::new(),
                },
                mtime: now,
                ctime: now,
            },
        );
        st.children_mut(parent).insert(name.to_string(), ino);
        st.inodes.get_mut(&parent).expect("parent").mtime = now;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let (parent, name) = st.resolve_parent(path)?;
        let ino = *st.children(parent).get(name).ok_or(FsError::NotFound)?;
        match &st.inodes[&ino].node {
            Node::Dir { children } => {
                if !children.is_empty() {
                    return Err(FsError::NotEmpty);
                }
            }
            _ => return Err(FsError::NotDir),
        }
        let now = st.tick();
        st.children_mut(parent).remove(name);
        st.inodes.remove(&ino);
        st.inodes.get_mut(&parent).expect("parent").mtime = now;
        Ok(())
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let (parent, name) = st.resolve_parent(path)?;
        let ino = *st.children(parent).get(name).ok_or(FsError::NotFound)?;
        match &st.inodes[&ino].node {
            Node::Dir { .. } => return Err(FsError::IsDir),
            Node::File { .. } => {
                if st.has_open_fd(ino) {
                    return Err(FsError::Busy);
                }
            }
            Node::Symlink { .. } => {}
        }
        let now = st.tick();
        st.children_mut(parent).remove(name);
        if let Node::File { nlink, .. } = &mut st.inodes.get_mut(&ino).expect("target").node {
            *nlink -= 1;
        }
        st.drop_file_if_unlinked(ino);
        st.inodes.get_mut(&parent).expect("parent").mtime = now;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let (from_parent, from_name) = st.resolve_parent(from)?;
        let (to_parent, to_name) = st.resolve_parent(to)?;
        let src = *st
            .children(from_parent)
            .get(from_name)
            .ok_or(FsError::NotFound)?;
        if from_parent == to_parent && from_name == to_name {
            return Ok(()); // rename to itself: no-op
        }
        let src_is_dir = matches!(st.inodes[&src].node, Node::Dir { .. });
        if src_is_dir && st.is_self_or_ancestor(src, to_parent) {
            return Err(FsError::RenameLoop);
        }
        if let Some(&dst) = st.children(to_parent).get(to_name) {
            if dst == src {
                return Ok(()); // hard links to the same inode: no-op
            }
            match (&st.inodes[&src].node, &st.inodes[&dst].node) {
                (Node::Dir { .. }, Node::Dir { children }) => {
                    if !children.is_empty() {
                        return Err(FsError::NotEmpty);
                    }
                }
                (Node::Dir { .. }, _) => return Err(FsError::NotDir),
                (_, Node::Dir { .. }) => return Err(FsError::IsDir),
                _ => {
                    if st.has_open_fd(dst) {
                        return Err(FsError::Busy);
                    }
                }
            }
            // remove the replaced target
            st.children_mut(to_parent).remove(to_name);
            match &mut st.inodes.get_mut(&dst).expect("dst").node {
                Node::File { nlink, .. } => *nlink -= 1,
                Node::Dir { .. } => {
                    st.inodes.remove(&dst);
                }
                Node::Symlink { .. } => {}
            }
            if st.inodes.contains_key(&dst) {
                st.drop_file_if_unlinked(dst);
            }
        }
        let now = st.tick();
        st.children_mut(from_parent).remove(from_name);
        st.children_mut(to_parent).insert(to_name.to_string(), src);
        st.inodes.get_mut(&from_parent).expect("fp").mtime = now;
        st.inodes.get_mut(&to_parent).expect("tp").mtime = now;
        Ok(())
    }

    fn link(&self, existing: &str, new: &str) -> FsResult<()> {
        let mut st = self.state.lock();
        let comps = split_path(existing)?;
        if comps.is_empty() {
            return Err(FsError::IsDir); // "/" is a directory
        }
        let src = st.resolve(&comps)?;
        match &st.inodes[&src].node {
            Node::Dir { .. } => return Err(FsError::IsDir),
            Node::Symlink { .. } => return Err(FsError::InvalidArgument),
            Node::File { nlink, .. } => {
                if *nlink >= MAX_LINKS {
                    return Err(FsError::TooManyLinks);
                }
            }
        }
        let (new_parent, new_name) = st.resolve_parent(new)?;
        if st.children(new_parent).contains_key(new_name) {
            return Err(FsError::Exists);
        }
        let now = st.tick();
        st.children_mut(new_parent)
            .insert(new_name.to_string(), src);
        if let Node::File { nlink, .. } = &mut st.inodes.get_mut(&src).expect("src").node {
            *nlink += 1;
        }
        let inode = st.inodes.get_mut(&src).expect("src");
        inode.ctime = now;
        st.inodes.get_mut(&new_parent).expect("np").mtime = now;
        Ok(())
    }

    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<()> {
        if target.len() > 4096 {
            return Err(FsError::NameTooLong);
        }
        let mut st = self.state.lock();
        let (parent, name) = st.resolve_parent(linkpath)?;
        if st.children(parent).contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = st.alloc_ino();
        let now = st.tick();
        st.inodes.insert(
            ino,
            Inode {
                node: Node::Symlink {
                    target: target.to_string(),
                },
                mtime: now,
                ctime: now,
            },
        );
        st.children_mut(parent).insert(name.to_string(), ino);
        st.inodes.get_mut(&parent).expect("parent").mtime = now;
        Ok(())
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        let st = self.state.lock();
        let comps = split_path(path)?;
        let ino = st.resolve(&comps)?;
        match &st.inodes[&ino].node {
            Node::Symlink { target } => Ok(target.clone()),
            _ => Err(FsError::InvalidArgument),
        }
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        let st = self.state.lock();
        let comps = split_path(path)?;
        let ino = st.resolve(&comps)?;
        Ok(st.stat_of(ino))
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        let st = self.state.lock();
        let of = st.fds.get(&fd).ok_or(FsError::BadFd)?;
        Ok(st.stat_of(of.ino))
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let st = self.state.lock();
        let comps = split_path(path)?;
        let ino = st.resolve(&comps)?;
        match &st.inodes[&ino].node {
            Node::Dir { children } => Ok(children
                .iter()
                .map(|(name, &c)| DirEntry {
                    ino: c,
                    ftype: st.ftype(c),
                    name: name.clone(),
                })
                .collect()),
            _ => Err(FsError::NotDir),
        }
    }

    fn statfs(&self) -> FsResult<FsGeometryInfo> {
        let st = self.state.lock();
        Ok(FsGeometryInfo {
            block_size: 4096,
            total_blocks: u64::MAX,
            free_blocks: u64::MAX,
            total_inodes: u64::MAX,
            free_inodes: u64::MAX - st.inodes.len() as u64,
        })
    }
}

// `name` length validation happens in split_path; keep a compile-time
// reference so the constant is visibly part of the spec.
const _: () = assert!(MAX_NAME_LEN == 255);

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> ModelFs {
        ModelFs::new()
    }

    #[test]
    fn create_write_read() {
        let m = fs();
        let fd = m.open("/a", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        assert_eq!(fd, Fd(FIRST_FD));
        assert_eq!(m.write(fd, 0, b"hello").unwrap(), 5);
        assert_eq!(m.read(fd, 0, 100).unwrap(), b"hello");
        assert_eq!(m.read(fd, 2, 2).unwrap(), b"ll");
        assert_eq!(m.read(fd, 10, 5).unwrap(), b"");
        m.close(fd).unwrap();
        assert_eq!(m.open_fd_count(), 0);
    }

    #[test]
    fn fd_numbers_are_lowest_free() {
        let m = fs();
        let a = m.open("/a", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        let b = m.open("/b", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        let c = m.open("/c", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        assert_eq!((a, b, c), (Fd(3), Fd(4), Fd(5)));
        m.close(b).unwrap();
        let d = m.open("/d", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        assert_eq!(d, Fd(4), "lowest free descriptor reused");
    }

    #[test]
    fn open_errors() {
        let m = fs();
        assert_eq!(
            m.open("/missing", OpenFlags::RDONLY),
            Err(FsError::NotFound)
        );
        m.mkdir("/d").unwrap();
        assert_eq!(m.open("/d", OpenFlags::RDONLY), Err(FsError::IsDir));
        let fd = m.open("/f", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        assert_eq!(
            m.open(
                "/f",
                OpenFlags::RDONLY | OpenFlags::CREATE | OpenFlags::EXCL
            ),
            Err(FsError::Exists)
        );
        assert_eq!(
            m.open("/f/x", OpenFlags::RDONLY),
            Err(FsError::NotDir),
            "file used as intermediate component"
        );
        m.symlink("/f", "/s").unwrap();
        assert_eq!(
            m.open("/s", OpenFlags::RDONLY),
            Err(FsError::InvalidArgument)
        );
    }

    #[test]
    fn access_modes_enforced() {
        let m = fs();
        let ro = m.open("/f", OpenFlags::RDONLY | OpenFlags::CREATE).unwrap();
        assert_eq!(m.write(ro, 0, b"x"), Err(FsError::BadAccessMode));
        assert_eq!(m.truncate(ro, 0), Err(FsError::BadAccessMode));
        m.close(ro).unwrap();
        let wo = m.open("/f", OpenFlags::WRONLY).unwrap();
        assert_eq!(m.read(wo, 0, 1), Err(FsError::BadAccessMode));
        m.close(wo).unwrap();
    }

    #[test]
    fn trunc_flag_clears_content() {
        let m = fs();
        let fd = m.open("/f", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        m.write(fd, 0, b"content").unwrap();
        m.close(fd).unwrap();
        let fd = m.open("/f", OpenFlags::RDWR | OpenFlags::TRUNC).unwrap();
        assert_eq!(m.fstat(fd).unwrap().size, 0);
        m.close(fd).unwrap();
    }

    #[test]
    fn append_mode_ignores_offset() {
        let m = fs();
        let fd = m
            .open(
                "/log",
                OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::APPEND,
            )
            .unwrap();
        m.write(fd, 999, b"aa").unwrap();
        m.write(fd, 0, b"bb").unwrap();
        assert_eq!(m.read(fd, 0, 10).unwrap(), b"aabb");
        m.close(fd).unwrap();
    }

    #[test]
    fn sparse_write_zero_fills() {
        let m = fs();
        let fd = m.open("/f", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        m.write(fd, 5, b"x").unwrap();
        assert_eq!(m.read(fd, 0, 6).unwrap(), b"\0\0\0\0\0x");
        assert_eq!(m.fstat(fd).unwrap().size, 6);
        m.close(fd).unwrap();
    }

    #[test]
    fn write_past_max_file_size_rejected() {
        let m = fs();
        let fd = m.open("/f", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        assert_eq!(m.write(fd, MAX_FILE_SIZE, b"y"), Err(FsError::FileTooBig));
        assert_eq!(m.write(fd, u64::MAX, b"y"), Err(FsError::FileTooBig));
        m.close(fd).unwrap();
    }

    #[test]
    fn mkdir_rmdir() {
        let m = fs();
        m.mkdir("/a").unwrap();
        m.mkdir("/a/b").unwrap();
        assert_eq!(m.mkdir("/a"), Err(FsError::Exists));
        assert_eq!(m.mkdir("/x/y"), Err(FsError::NotFound));
        assert_eq!(m.rmdir("/a"), Err(FsError::NotEmpty));
        m.rmdir("/a/b").unwrap();
        m.rmdir("/a").unwrap();
        assert_eq!(m.rmdir("/a"), Err(FsError::NotFound));
        assert_eq!(m.rmdir("/"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn rmdir_on_file_is_notdir() {
        let m = fs();
        let fd = m.open("/f", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.rmdir("/f"), Err(FsError::NotDir));
        assert_eq!(m.unlink("/f"), Ok(()));
    }

    #[test]
    fn unlink_open_file_is_busy() {
        let m = fs();
        let fd = m.open("/f", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        assert_eq!(m.unlink("/f"), Err(FsError::Busy));
        m.close(fd).unwrap();
        m.unlink("/f").unwrap();
        assert_eq!(m.stat("/f"), Err(FsError::NotFound));
    }

    #[test]
    fn unlink_dir_is_isdir() {
        let m = fs();
        m.mkdir("/d").unwrap();
        assert_eq!(m.unlink("/d"), Err(FsError::IsDir));
    }

    #[test]
    fn hard_links_share_content() {
        let m = fs();
        let fd = m.open("/a", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        m.write(fd, 0, b"shared").unwrap();
        m.close(fd).unwrap();
        m.link("/a", "/b").unwrap();
        assert_eq!(m.stat("/a").unwrap().nlink, 2);
        assert_eq!(m.stat("/a").unwrap().ino, m.stat("/b").unwrap().ino);

        let fd = m.open("/b", OpenFlags::RDONLY).unwrap();
        assert_eq!(m.read(fd, 0, 6).unwrap(), b"shared");
        m.close(fd).unwrap();

        m.unlink("/a").unwrap();
        assert_eq!(m.stat("/b").unwrap().nlink, 1);
        let fd = m.open("/b", OpenFlags::RDONLY).unwrap();
        assert_eq!(m.read(fd, 0, 6).unwrap(), b"shared");
        m.close(fd).unwrap();
    }

    #[test]
    fn link_errors() {
        let m = fs();
        m.mkdir("/d").unwrap();
        assert_eq!(m.link("/d", "/e"), Err(FsError::IsDir));
        assert_eq!(m.link("/", "/e"), Err(FsError::IsDir));
        assert_eq!(m.link("/nope", "/e"), Err(FsError::NotFound));
        let fd = m.open("/f", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.link("/f", "/d"), Err(FsError::Exists));
        m.symlink("/f", "/s").unwrap();
        assert_eq!(m.link("/s", "/s2"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn rename_basic_and_replace() {
        let m = fs();
        let fd = m.open("/a", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        m.write(fd, 0, b"data").unwrap();
        m.close(fd).unwrap();
        m.rename("/a", "/b").unwrap();
        assert_eq!(m.stat("/a"), Err(FsError::NotFound));
        assert_eq!(m.stat("/b").unwrap().size, 4);

        let fd = m.open("/c", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        m.rename("/b", "/c").unwrap(); // replaces /c
        assert_eq!(m.stat("/c").unwrap().size, 4);
        assert_eq!(m.inode_count(), 2, "replaced inode freed (root + c)");
    }

    #[test]
    fn rename_directory_rules() {
        let m = fs();
        m.mkdir("/a").unwrap();
        m.mkdir("/a/b").unwrap();
        assert_eq!(m.rename("/a", "/a/b/c"), Err(FsError::RenameLoop));
        assert_eq!(m.rename("/a", "/a"), Ok(()), "self rename is a no-op");

        m.mkdir("/empty").unwrap();
        m.rename("/a/b", "/empty").unwrap(); // replace empty dir
        assert!(m.readdir("/a").unwrap().is_empty());

        m.mkdir("/full").unwrap();
        m.mkdir("/full/x").unwrap();
        assert_eq!(m.rename("/empty", "/full"), Err(FsError::NotEmpty));

        let fd = m.open("/f", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.rename("/empty", "/f"), Err(FsError::NotDir));
        assert_eq!(m.rename("/f", "/empty"), Err(FsError::IsDir));
    }

    #[test]
    fn rename_replace_open_file_is_busy() {
        let m = fs();
        for p in ["/a", "/b"] {
            let fd = m.open(p, OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
            m.close(fd).unwrap();
        }
        let held = m.open("/b", OpenFlags::RDONLY).unwrap();
        assert_eq!(m.rename("/a", "/b"), Err(FsError::Busy));
        m.close(held).unwrap();
        m.rename("/a", "/b").unwrap();
    }

    #[test]
    fn rename_hardlink_alias_is_noop() {
        let m = fs();
        let fd = m.open("/a", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        m.link("/a", "/b").unwrap();
        m.rename("/a", "/b").unwrap(); // same inode: no-op
        assert!(m.stat("/a").is_ok());
        assert!(m.stat("/b").is_ok());
    }

    #[test]
    fn symlinks_store_targets() {
        let m = fs();
        m.symlink("/some/where", "/s").unwrap();
        assert_eq!(m.readlink("/s").unwrap(), "/some/where");
        assert_eq!(m.stat("/s").unwrap().ftype, FileType::Symlink);
        assert_eq!(m.stat("/s").unwrap().size, 11);
        assert_eq!(m.readlink("/"), Err(FsError::InvalidArgument));
        m.unlink("/s").unwrap();
        assert_eq!(m.stat("/s"), Err(FsError::NotFound));
        assert_eq!(
            m.symlink(&"t".repeat(5000), "/s2"),
            Err(FsError::NameTooLong)
        );
    }

    #[test]
    fn readdir_sorted_content() {
        let m = fs();
        m.mkdir("/d").unwrap();
        for name in ["zz", "aa", "mm"] {
            let fd = m
                .open(&format!("/d/{name}"), OpenFlags::WRONLY | OpenFlags::CREATE)
                .unwrap();
            m.close(fd).unwrap();
        }
        let names: Vec<String> = m
            .readdir("/d")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["aa", "mm", "zz"], "model readdir is sorted");
        assert_eq!(m.readdir("/d/aa"), Err(FsError::NotDir));
    }

    #[test]
    fn nlink_accounting_for_dirs() {
        let m = fs();
        m.mkdir("/d").unwrap();
        assert_eq!(m.stat("/d").unwrap().nlink, 2);
        m.mkdir("/d/s1").unwrap();
        m.mkdir("/d/s2").unwrap();
        assert_eq!(m.stat("/d").unwrap().nlink, 4);
        m.rmdir("/d/s1").unwrap();
        assert_eq!(m.stat("/d").unwrap().nlink, 3);
        assert_eq!(m.stat("/").unwrap().nlink, 3, "root: 2 + /d");
    }

    #[test]
    fn setattr_size_and_mtime() {
        let m = fs();
        let fd = m.open("/f", OpenFlags::RDWR | OpenFlags::CREATE).unwrap();
        m.write(fd, 0, b"0123456789").unwrap();
        m.close(fd).unwrap();
        m.setattr(
            "/f",
            SetAttr {
                size: Some(4),
                mtime: None,
            },
        )
        .unwrap();
        assert_eq!(m.stat("/f").unwrap().size, 4);
        m.setattr(
            "/f",
            SetAttr {
                size: None,
                mtime: Some(777),
            },
        )
        .unwrap();
        assert_eq!(m.stat("/f").unwrap().mtime, 777);
        m.mkdir("/d").unwrap();
        assert_eq!(
            m.setattr(
                "/d",
                SetAttr {
                    size: Some(0),
                    mtime: None
                }
            ),
            Err(FsError::IsDir)
        );
    }

    #[test]
    fn fstat_and_bad_fds() {
        let m = fs();
        assert_eq!(m.fstat(Fd(99)), Err(FsError::BadFd));
        assert_eq!(m.close(Fd(99)), Err(FsError::BadFd));
        assert_eq!(m.read(Fd(99), 0, 1), Err(FsError::BadFd));
        assert_eq!(m.write(Fd(99), 0, b"x"), Err(FsError::BadFd));
        assert_eq!(m.fsync(Fd(99)), Err(FsError::BadFd));
    }

    #[test]
    fn fd_exhaustion() {
        let m = fs();
        let mut fds = Vec::new();
        for i in 0..MAX_OPEN_FILES {
            fds.push(
                m.open(&format!("/f{i}"), OpenFlags::WRONLY | OpenFlags::CREATE)
                    .unwrap(),
            );
        }
        assert_eq!(
            m.open("/overflow", OpenFlags::WRONLY | OpenFlags::CREATE),
            Err(FsError::TooManyOpenFiles)
        );
        // the failed create must have rolled back
        assert_eq!(m.stat("/overflow"), Err(FsError::NotFound));
        for fd in fds {
            m.close(fd).unwrap();
        }
    }

    #[test]
    fn ino_allocation_is_lowest_free() {
        let m = fs();
        let fd = m.open("/a", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        m.mkdir("/d").unwrap();
        let a_ino = m.stat("/a").unwrap().ino;
        let d_ino = m.stat("/d").unwrap().ino;
        assert_eq!((a_ino, d_ino), (InodeNo(2), InodeNo(3)));
        m.unlink("/a").unwrap();
        let fd = m.open("/e", OpenFlags::WRONLY | OpenFlags::CREATE).unwrap();
        m.close(fd).unwrap();
        assert_eq!(m.stat("/e").unwrap().ino, InodeNo(2), "freed ino reused");
    }
}
