//! The performance-oriented *base* filesystem.
//!
//! This is the complex, cache-heavy, write-back, journaled filesystem
//! the paper's shadow protects (the ext4 stand-in). It implements the
//! shared on-disk ABI from [`rae_fsformat`] and the canonical API
//! semantics of `rae_fsmodel`, but gets there the performance-oriented
//! way:
//!
//! * a write-back **page cache** over all blocks, draining dirty data
//!   pages through a blk-mq-flavoured asynchronous
//!   [`rae_blockdev::WritebackQueue`];
//! * an **inode cache** and a **dentry cache** so hot paths never touch
//!   the device;
//! * bitmap **allocators** with rotating hints;
//! * a JBD-style **metadata journal** (ordered mode: data is flushed
//!   before the transaction commits), with commit on `fsync`/`sync` and
//!   checkpoint-on-full;
//! * **fault hooks** ([`rae_faults::Site`]) at the realistic bug sites,
//!   so experiments can plant the paper's bug classes inside real code
//!   paths.
//!
//! # RAE integration surface
//!
//! The RAE runtime drives three extra entry points (§3.2 of the paper):
//!
//! * [`BaseFs::contained_reboot`] — discard *all* in-memory state
//!   (caches, descriptors, allocators) and rebuild from the trusted
//!   on-disk state, replaying the journal; applications stay alive;
//! * [`BaseFs::absorb_recovery`] — "metadata downloading": accept the
//!   shadow's reconstructed block images and descriptor table into the
//!   caches, marked dirty, exactly as if the base had produced them;
//! * [`BaseFs::persisted_seq`] / [`BaseFs::note_op_seq`] — the
//!   persistence barrier that tells the RAE operation log which records
//!   are durable and can be discarded.
//!
//! `crash()` + `mount()` provide the *baseline* recovery path (lose
//! everything since the last commit) that experiment E4 compares
//! against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod dentry;
mod fdtable;
mod fs;
#[cfg(test)]
mod fs_tests;
mod icache;
mod jmgr;
mod pagecache;
#[cfg(test)]
mod stress_tests;

pub use fs::{BaseFs, BaseFsConfig, BaseFsStats, OpSequencer};
pub use pagecache::PageClass;
