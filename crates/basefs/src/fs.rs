//! The `BaseFs` type: lifecycle, internal machinery, and the
//! [`FileSystem`] implementation.

use crate::alloc::Allocators;
use crate::dentry::DentryCache;
use crate::fdtable::FdTable;
use crate::icache::InodeCache;
use crate::jmgr::JournalMgr;
use crate::pagecache::{CacheStats, PageCache, PageClass};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use rae_blockdev::{BlockDevice, QueueConfig, BLOCK_SIZE};
use rae_faults::{FaultAction, FaultRegistry, OpContext, Site};
use rae_fsformat::dirent::DirBlock;
use rae_fsformat::inode::{
    locate_block, BlockPtrLoc, DiskInode, INODES_PER_BLOCK, INODE_SIZE, PTRS_PER_BLOCK,
};
use rae_fsformat::journal::{self, ReplayReport};
use rae_fsformat::{Geometry, MountState, RecoveryDelta, Superblock};
use rae_vfs::{
    split_parent, split_path, DirEntry, Fd, FileStat, FileSystem, FileType, FsError,
    FsGeometryInfo, FsResult, InodeNo, OpCounters, OpKind, OpenFlags, SetAttr, MAX_FILE_SIZE,
    MAX_LINKS, ROOT_INO,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a [`BaseFs`] instance.
#[derive(Debug, Clone)]
pub struct BaseFsConfig {
    /// Page-cache capacity in blocks.
    pub page_cache_blocks: usize,
    /// Dentry-cache capacity in entries.
    pub dentry_cache_entries: usize,
    /// Write-back queue configuration.
    pub queue: QueueConfig,
    /// Fault registry consulted by the bug hooks (empty = no faults).
    pub faults: FaultRegistry,
    /// Commit the running transaction when this many dirty metadata
    /// pages accumulate (bounds journal transaction size).
    pub max_dirty_meta: usize,
    /// Validate metadata images before each journal commit
    /// (validate-on-sync: the paper's fault-model assumption that
    /// errors are detected before being persisted to disk).
    pub validate_on_commit: bool,
    /// Serialize read-only operations behind the exclusive lock (the
    /// pre-concurrency baseline; benchmarks use this together with
    /// `cache_shards: Some(1)` for before/after comparisons).
    pub serial_reads: bool,
    /// Page-cache shard override (`None` = automatic sizing).
    pub cache_shards: Option<usize>,
    /// Telemetry handle shared with the page cache and journal manager
    /// (journal-commit and cache-fill timings, stale-eviction events).
    pub telemetry: Option<Arc<rae_telemetry::Telemetry>>,
}

impl Default for BaseFsConfig {
    fn default() -> BaseFsConfig {
        BaseFsConfig {
            page_cache_blocks: 2048,
            dentry_cache_entries: 4096,
            queue: QueueConfig::default(),
            faults: FaultRegistry::new(),
            max_dirty_meta: 192,
            validate_on_commit: true,
            serial_reads: false,
            cache_shards: None,
            telemetry: None,
        }
    }
}

/// Point-in-time performance statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseFsStats {
    /// Page-cache counters.
    pub cache: CacheStats,
    /// Dentry-cache hits.
    pub dentry_hits: u64,
    /// Dentry-cache misses.
    pub dentry_misses: u64,
    /// Journal transactions committed.
    pub journal_commits: u64,
    /// Journal checkpoints performed.
    pub journal_checkpoints: u64,
    /// Open descriptors.
    pub open_fds: usize,
    /// Pages resident in the page cache.
    pub resident_pages: usize,
}

#[derive(Debug)]
struct Inner {
    alloc: Allocators,
    fds: FdTable,
    jmgr: JournalMgr,
    clock: u64,
    mount_count: u32,
}

/// Guard for read-only operations: shared by default, exclusive when
/// the `serial_reads` baseline mode reproduces pre-concurrency locking.
enum ReadGuard<'a> {
    Shared(RwLockReadGuard<'a, Inner>),
    Exclusive(RwLockWriteGuard<'a, Inner>),
}

impl std::ops::Deref for ReadGuard<'_> {
    type Target = Inner;
    fn deref(&self) -> &Inner {
        match self {
            ReadGuard::Shared(g) => g,
            ReadGuard::Exclusive(g) => g,
        }
    }
}

/// The performance-oriented base filesystem. See the crate docs for the
/// architecture and the RAE integration surface.
pub struct BaseFs {
    dev: Arc<dyn BlockDevice>,
    geo: Geometry,
    pages: PageCache,
    icache: InodeCache,
    dcache: DentryCache,
    inner: RwLock<Inner>,
    serial_reads: bool,
    counters: OpCounters,
    faults: FaultRegistry,
    max_dirty_meta: usize,
    validate_on_commit: bool,
    cur_seq: AtomicU64,
    persisted_seq: AtomicU64,
    /// Kept so the journal manager rebuilt by a contained reboot can be
    /// re-attached to the same telemetry stream.
    telemetry: Option<Arc<rae_telemetry::Telemetry>>,
}

impl std::fmt::Debug for BaseFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseFs")
            .field("geometry", &self.geo)
            .field("pages", &self.pages)
            .finish()
    }
}

impl BaseFs {
    /// Mount a filesystem from `dev`, replaying the journal.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] if the superblock or journal header fail
    /// validation; device errors.
    ///
    /// # Panics
    ///
    /// An armed [`Site::MountImage`] bug with a panic effect fires here
    /// (the crafted-image crash class).
    pub fn mount(dev: Arc<dyn BlockDevice>, config: BaseFsConfig) -> FsResult<BaseFs> {
        let faults = config.faults.clone();
        if let Some(action) = faults.check(&OpContext::new(OpKind::Mount, Site::MountImage)) {
            Self::act_static(action)?;
        }
        let sb = Superblock::read_from(dev.as_ref())?;
        let geo = sb.geometry;
        if dev.block_count() < geo.total_blocks {
            return Err(FsError::Corrupted {
                detail: "device smaller than the filesystem".to_string(),
            });
        }
        let replay = journal::replay(dev.as_ref(), &geo)?;
        let mut sb = Superblock::read_from(dev.as_ref())?;
        sb.mount_state = MountState::Dirty;
        sb.mount_count += 1;
        sb.write_to(dev.as_ref())?;
        dev.flush()?;

        let pages = match config.cache_shards {
            Some(n) => {
                PageCache::with_shards(Arc::clone(&dev), config.page_cache_blocks, config.queue, n)
            }
            None => PageCache::new(Arc::clone(&dev), config.page_cache_blocks, config.queue),
        };
        if let Some(t) = &config.telemetry {
            pages.set_telemetry(Arc::clone(t));
        }
        let mut jmgr = JournalMgr::new(geo, replay.next_seq);
        jmgr.set_telemetry(config.telemetry.clone());
        let alloc = Allocators::load(geo, &pages)?;
        Ok(BaseFs {
            dev,
            geo,
            pages,
            icache: InodeCache::new(),
            dcache: DentryCache::new(config.dentry_cache_entries),
            inner: RwLock::new(Inner {
                alloc,
                fds: FdTable::new(),
                jmgr,
                clock: 0,
                mount_count: sb.mount_count,
            }),
            counters: OpCounters::new(),
            faults,
            max_dirty_meta: config.max_dirty_meta.max(8),
            validate_on_commit: config.validate_on_commit,
            serial_reads: config.serial_reads,
            cur_seq: AtomicU64::new(0),
            persisted_seq: AtomicU64::new(0),
            telemetry: config.telemetry,
        })
    }

    /// Cleanly unmount: commit, checkpoint, mark the superblock clean.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn unmount(self) -> FsResult<()> {
        {
            let mut inner = self.inner.write();
            self.commit_locked(&mut inner)?;
            inner.jmgr.checkpoint(self.dev.as_ref())?;
            self.pages.checkpoint_done();
            let sb = Superblock {
                geometry: self.geo,
                free_inodes: inner.alloc.free_inodes,
                free_blocks: inner.alloc.free_blocks,
                mount_state: MountState::Clean,
                mount_count: inner.mount_count,
            };
            sb.write_to(self.dev.as_ref())?;
            self.dev.flush()?;
        }
        Ok(())
    }

    /// Commit the running transaction and checkpoint the journal: all
    /// durable state reaches its home location, so a reader of the raw
    /// device (e.g. an auditing shadow) sees the complete filesystem
    /// without replaying the journal.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn checkpoint(&self) -> FsResult<()> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        self.commit_locked(inner)?;
        inner.jmgr.checkpoint(self.dev.as_ref())?;
        self.pages.checkpoint_done();
        Ok(())
    }

    /// Simulate a kernel crash: every in-memory structure vanishes
    /// without a commit. Writes already handed to the write-back queue
    /// may still land (as on real hardware); dirty cached state is
    /// lost. This is the baseline recovery path experiment E4 compares
    /// RAE against.
    pub fn crash(self) {
        drop(self);
    }

    // ------------------------------------------------------------------
    // RAE integration surface
    // ------------------------------------------------------------------

    /// Contained reboot (§3.2): discard all in-memory state and rebuild
    /// from the trusted on-disk state, replaying the journal.
    /// Applications keep running; descriptors are restored afterwards
    /// via [`BaseFs::absorb_recovery`].
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] / device errors if the on-disk state
    /// itself cannot be trusted — recovery is then impossible.
    pub fn contained_reboot(&self) -> FsResult<ReplayReport> {
        // recovery-path fault site: tooling can fail while the system
        // is already degraded (the nested-fault campaign, E8)
        let ctx = OpContext::new(OpKind::Sync, Site::RecoveryReboot);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        // Quiesce in-flight write-back, then drop every cached page —
        // nothing in memory is trusted after an error.
        self.pages.quiesce()?;
        self.pages.discard_all();
        self.icache.clear();
        self.dcache.clear();
        inner.fds.clear();

        let report = journal::replay(self.dev.as_ref(), &self.geo)?;
        inner.alloc = Allocators::load(self.geo, &self.pages)?;
        inner.jmgr = JournalMgr::new(self.geo, report.next_seq);
        inner.jmgr.set_telemetry(self.telemetry.clone());
        Ok(report)
    }

    /// Metadata downloading (§3.2): absorb the shadow's reconstructed
    /// state. Block images land in the page cache marked dirty (the
    /// existing journal machinery persists them at the next commit);
    /// the descriptor table is rebuilt with identical numbering.
    ///
    /// # Errors
    ///
    /// [`FsError::Internal`] on duplicate descriptors; cache errors.
    pub fn absorb_recovery(&self, delta: &RecoveryDelta) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Sync, Site::RecoveryAbsorb);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        for (bno, img) in &delta.meta_blocks {
            if *bno == 0 {
                continue; // superblock is rebuilt from the bitmaps below
            }
            self.pages.write(*bno, img.clone(), PageClass::Meta)?;
        }
        for (bno, img) in &delta.data_blocks {
            self.pages.write(*bno, img.clone(), PageClass::Data)?;
        }
        self.icache.clear();
        self.dcache.clear();
        inner.alloc = Allocators::load(self.geo, &self.pages)?;
        inner.fds.clear();
        for rfd in &delta.fd_entries {
            if !inner.alloc.ino_allocated(rfd.ino)? {
                return Err(FsError::Internal {
                    detail: format!(
                        "recovery delta restores {} on unallocated {}",
                        rfd.fd, rfd.ino
                    ),
                });
            }
            inner.fds.install(rfd.fd, rfd.ino, rfd.flags, &rfd.path)?;
        }
        Ok(())
    }

    /// Record the sequence number of the operation about to execute
    /// (called by the RAE runtime before each logged operation).
    pub fn note_op_seq(&self, seq: u64) {
        self.cur_seq.store(seq, Ordering::Relaxed);
    }

    /// The persistence barrier: every logged operation with a sequence
    /// number at or below this value is recoverable from disk alone
    /// (journal replay included), so its record can be discarded.
    #[must_use]
    pub fn persisted_seq(&self) -> u64 {
        self.persisted_seq.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The filesystem geometry.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// A handle to the underlying device (shared with the shadow).
    #[must_use]
    pub fn device(&self) -> Arc<dyn BlockDevice> {
        Arc::clone(&self.dev)
    }

    /// The fault registry driving this instance's bug hooks.
    #[must_use]
    pub fn fault_registry(&self) -> FaultRegistry {
        self.faults.clone()
    }

    /// Operation counters.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Performance statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> BaseFsStats {
        let inner = self.inner.read();
        BaseFsStats {
            cache: self.pages.stats(),
            dentry_hits: self.dcache.hits(),
            dentry_misses: self.dcache.misses(),
            journal_commits: inner.jmgr.commits(),
            journal_checkpoints: inner.jmgr.checkpoints(),
            open_fds: inner.fds.len(),
            resident_pages: self.pages.resident(),
        }
    }

    /// Number of lock stripes in the page cache (1 in the serial
    /// baseline configuration).
    #[must_use]
    pub fn cache_shard_count(&self) -> usize {
        self.pages.shard_count()
    }

    /// Snapshot of the open-descriptor table (for the RAE recorder).
    #[must_use]
    pub fn fd_snapshot(&self) -> Vec<(Fd, InodeNo, OpenFlags, String)> {
        let inner = self.inner.read();
        inner
            .fds
            .entries()
            .into_iter()
            .map(|(fd, e)| (fd, e.ino, e.flags, e.path))
            .collect()
    }

    // ------------------------------------------------------------------
    // Locking
    // ------------------------------------------------------------------

    /// Acquire the lock for a read-only operation. Readers share the
    /// lock: mutations are excluded for their whole critical section,
    /// so no torn directory or inode state is observable, and the RAE
    /// recording contract never constrains reads because reads are
    /// unrecorded. In `serial_reads` baseline mode this degrades to the
    /// old exclusive lock.
    fn lock_read(&self) -> ReadGuard<'_> {
        if self.serial_reads {
            ReadGuard::Exclusive(self.inner.write())
        } else {
            ReadGuard::Shared(self.inner.read())
        }
    }

    // ------------------------------------------------------------------
    // Fault hooks
    // ------------------------------------------------------------------

    fn act_static(action: FaultAction) -> FsResult<bool> {
        match action {
            FaultAction::FailDetected { bug_id } => Err(FsError::DetectedBug { bug_id }),
            FaultAction::Panic { bug_id } => {
                panic!("injected filesystem bug #{bug_id}: simulated kernel BUG()")
            }
            FaultAction::Warn { .. } => Ok(false),
            FaultAction::CorruptSilently { .. } => Ok(true),
            FaultAction::CorruptMetadata { .. } => Ok(false), // handled in hook()
        }
    }

    /// Consult the registry at a hook site. Returns `Ok(true)` when the
    /// operation should corrupt its payload silently.
    ///
    /// # Errors
    ///
    /// [`FsError::DetectedBug`] for detected-error effects.
    fn hook(&self, ctx: &OpContext<'_>) -> FsResult<bool> {
        match self.faults.check(ctx) {
            Some(FaultAction::CorruptMetadata { .. }) => {
                // the memory-scribbler class: a dirty metadata page is
                // silently damaged; validate-on-commit catches it at
                // the next persistence point
                let _ = self.pages.scribble_dirty_meta((
                    self.geo.inode_table_start,
                    self.geo.inode_table_start + self.geo.inode_table_blocks,
                ));
                Ok(false)
            }
            Some(action) => Self::act_static(action),
            None => Ok(false),
        }
    }

    /// Validate metadata images about to be committed: the superblock
    /// must decode, and every inode-table block must hold 16 decodable
    /// slots. Bitmap and directory/indirect images have no per-block
    /// self-description and are covered by the shadow's full checks.
    fn validate_commit_images(&self, images: &[(u64, Vec<u8>)]) -> FsResult<()> {
        let it_start = self.geo.inode_table_start;
        let it_end = it_start + self.geo.inode_table_blocks;
        for (bno, img) in images {
            if *bno == 0 {
                Superblock::decode(img)?;
            } else if (it_start..it_end).contains(bno) {
                for slot in 0..INODES_PER_BLOCK {
                    DiskInode::decode(&img[slot * INODE_SIZE..(slot + 1) * INODE_SIZE]).map_err(
                        |e| FsError::Corrupted {
                            detail: format!(
                                "validate-on-commit: inode table block {bno} slot {slot}: {e}"
                            ),
                        },
                    )?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Inode access
    // ------------------------------------------------------------------

    fn load_inode_opt(&self, ino: InodeNo) -> FsResult<Option<DiskInode>> {
        if let Some(i) = self.icache.get(ino) {
            return Ok(Some(i));
        }
        let (bno, off) = self.geo.inode_location(ino)?;
        let block = self.pages.read(bno, PageClass::Meta)?;
        let decoded = DiskInode::decode(&block[off..off + INODE_SIZE])?;
        if let Some(i) = decoded {
            self.icache.insert(ino, i);
        }
        Ok(decoded)
    }

    fn load_inode(&self, ino: InodeNo) -> FsResult<DiskInode> {
        self.load_inode_opt(ino)?.ok_or(FsError::Corrupted {
            detail: format!("{ino} referenced but not allocated"),
        })
    }

    fn store_inode(&self, ino: InodeNo, inode: &DiskInode) -> FsResult<()> {
        let (bno, off) = self.geo.inode_location(ino)?;
        self.pages
            .update(bno, off, &inode.encode(), PageClass::Meta)?;
        self.icache.insert(ino, *inode);
        Ok(())
    }

    fn clear_inode(&self, ino: InodeNo) -> FsResult<()> {
        let (bno, off) = self.geo.inode_location(ino)?;
        self.pages
            .update(bno, off, &[0u8; INODE_SIZE], PageClass::Meta)?;
        self.icache.remove(ino);
        Ok(())
    }

    fn tick(inner: &mut Inner) -> u64 {
        inner.clock += 1;
        inner.clock
    }

    // ------------------------------------------------------------------
    // Block mapping
    // ------------------------------------------------------------------

    fn read_ptr(&self, bno: u64, slot: usize) -> FsResult<u64> {
        let img = self.pages.read(bno, PageClass::Meta)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&img[slot * 8..slot * 8 + 8]);
        Ok(u64::from_le_bytes(b))
    }

    fn write_ptr(&self, bno: u64, slot: usize, value: u64) -> FsResult<()> {
        self.pages
            .update(bno, slot * 8, &value.to_le_bytes(), PageClass::Meta)
    }

    /// The data block backing file-block `idx` (0 = hole).
    fn get_file_block(&self, inode: &DiskInode, idx: u64) -> FsResult<u64> {
        match locate_block(idx)? {
            BlockPtrLoc::Direct(s) => Ok(inode.direct[s]),
            BlockPtrLoc::Indirect { slot } => {
                if inode.indirect == 0 {
                    Ok(0)
                } else {
                    self.read_ptr(inode.indirect, slot)
                }
            }
            BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                if inode.dindirect == 0 {
                    return Ok(0);
                }
                let l1p = self.read_ptr(inode.dindirect, l1)?;
                if l1p == 0 {
                    Ok(0)
                } else {
                    self.read_ptr(l1p, l2)
                }
            }
        }
    }

    fn alloc_data_block(&self, inner: &mut Inner, class: PageClass) -> FsResult<u64> {
        let bno = inner.alloc.alloc_block(&self.pages)?;
        self.pages.write(bno, vec![0u8; BLOCK_SIZE], class)?;
        Ok(bno)
    }

    /// Get-or-allocate the data block backing file-block `idx`,
    /// updating the inode's pointers and block count in place. The
    /// caller must store the inode afterwards.
    fn ensure_file_block(
        &self,
        inner: &mut Inner,
        inode: &mut DiskInode,
        idx: u64,
    ) -> FsResult<u64> {
        match locate_block(idx)? {
            BlockPtrLoc::Direct(s) => {
                if inode.direct[s] == 0 {
                    inode.direct[s] = self.alloc_data_block(inner, PageClass::Data)?;
                    inode.blocks += 1;
                }
                Ok(inode.direct[s])
            }
            BlockPtrLoc::Indirect { slot } => {
                if inode.indirect == 0 {
                    inode.indirect = self.alloc_data_block(inner, PageClass::Meta)?;
                    inode.blocks += 1;
                }
                let mut ptr = self.read_ptr(inode.indirect, slot)?;
                if ptr == 0 {
                    ptr = self.alloc_data_block(inner, PageClass::Data)?;
                    inode.blocks += 1;
                    self.write_ptr(inode.indirect, slot, ptr)?;
                }
                Ok(ptr)
            }
            BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                if inode.dindirect == 0 {
                    inode.dindirect = self.alloc_data_block(inner, PageClass::Meta)?;
                    inode.blocks += 1;
                }
                let mut l1p = self.read_ptr(inode.dindirect, l1)?;
                if l1p == 0 {
                    l1p = self.alloc_data_block(inner, PageClass::Meta)?;
                    inode.blocks += 1;
                    self.write_ptr(inode.dindirect, l1, l1p)?;
                }
                let mut ptr = self.read_ptr(l1p, l2)?;
                if ptr == 0 {
                    ptr = self.alloc_data_block(inner, PageClass::Data)?;
                    inode.blocks += 1;
                    self.write_ptr(l1p, l2, ptr)?;
                }
                Ok(ptr)
            }
        }
    }

    /// Blocks (data + new indirect blocks) a write to file-blocks
    /// `[start_idx, end_idx)` would have to allocate. Used for the
    /// all-or-nothing `NoSpace` pre-check.
    fn count_missing_blocks(
        &self,
        inode: &DiskInode,
        start_idx: u64,
        end_idx: u64,
    ) -> FsResult<u64> {
        let mut need = 0u64;
        let mut need_indirect = inode.indirect == 0;
        let mut need_dindirect = inode.dindirect == 0;
        let mut l1_seen: HashMap<usize, bool> = HashMap::new();
        for idx in start_idx..end_idx {
            match locate_block(idx)? {
                BlockPtrLoc::Direct(s) => {
                    if inode.direct[s] == 0 {
                        need += 1;
                    }
                }
                BlockPtrLoc::Indirect { slot } => {
                    if need_indirect {
                        need += 1;
                        need_indirect = false;
                    }
                    if inode.indirect == 0 || self.read_ptr(inode.indirect, slot)? == 0 {
                        need += 1;
                    }
                }
                BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                    if need_dindirect {
                        need += 1;
                        need_dindirect = false;
                    }
                    let l1_missing = if inode.dindirect == 0 {
                        true
                    } else {
                        match l1_seen.get(&l1) {
                            Some(&m) => m,
                            None => {
                                let m = self.read_ptr(inode.dindirect, l1)? == 0;
                                l1_seen.insert(l1, m);
                                m
                            }
                        }
                    };
                    if l1_missing {
                        if !l1_seen.get(&l1).copied().unwrap_or(false) || inode.dindirect == 0 {
                            // count the L1 block itself once
                            if l1_seen.insert(l1, true) != Some(true) {
                                need += 1;
                            }
                        }
                        need += 1; // the data block
                    } else if self.read_ptr(self.read_ptr(inode.dindirect, l1)?, l2)? == 0 {
                        need += 1;
                    }
                }
            }
        }
        Ok(need)
    }

    /// Free `bno` and drop any committed-but-not-checkpointed journal
    /// image of it.
    ///
    /// Every block free must come through here: a freed block can be
    /// reallocated immediately — possibly as a data block, which
    /// bypasses the journal in ordered mode — and a stale pending
    /// image left in the journal manager would overwrite the new
    /// contents at the next checkpoint.
    fn release_block(&self, inner: &mut Inner, bno: u64) -> FsResult<()> {
        inner.alloc.free_block(&self.pages, bno)?;
        inner.jmgr.drop_pending(bno);
        Ok(())
    }

    /// Free blocks past `new_size`, zero the partial tail, update size
    /// and block count. The caller stores the inode.
    fn truncate_core(
        &self,
        inner: &mut Inner,
        inode: &mut DiskInode,
        new_size: u64,
    ) -> FsResult<()> {
        let old_nb = inode.size.div_ceil(BLOCK_SIZE as u64);
        let new_nb = new_size.div_ceil(BLOCK_SIZE as u64);

        for idx in new_nb..old_nb {
            match locate_block(idx)? {
                BlockPtrLoc::Direct(s) => {
                    if inode.direct[s] != 0 {
                        self.release_block(inner, inode.direct[s])?;
                        inode.direct[s] = 0;
                        inode.blocks -= 1;
                    }
                }
                BlockPtrLoc::Indirect { slot } => {
                    if inode.indirect != 0 {
                        let ptr = self.read_ptr(inode.indirect, slot)?;
                        if ptr != 0 {
                            self.release_block(inner, ptr)?;
                            self.write_ptr(inode.indirect, slot, 0)?;
                            inode.blocks -= 1;
                        }
                    }
                }
                BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                    if inode.dindirect != 0 {
                        let l1p = self.read_ptr(inode.dindirect, l1)?;
                        if l1p != 0 {
                            let ptr = self.read_ptr(l1p, l2)?;
                            if ptr != 0 {
                                self.release_block(inner, ptr)?;
                                self.write_ptr(l1p, l2, 0)?;
                                inode.blocks -= 1;
                            }
                        }
                    }
                }
            }
        }

        // free indirect structures that became entirely unused
        if new_nb <= 12 && inode.indirect != 0 {
            self.release_block(inner, inode.indirect)?;
            inode.indirect = 0;
            inode.blocks -= 1;
        }
        if inode.dindirect != 0 {
            let covered = 12 + PTRS_PER_BLOCK as u64;
            if new_nb <= covered {
                // every L1 chain is gone
                for l1 in 0..PTRS_PER_BLOCK {
                    let l1p = self.read_ptr(inode.dindirect, l1)?;
                    if l1p != 0 {
                        self.release_block(inner, l1p)?;
                        self.write_ptr(inode.dindirect, l1, 0)?;
                        inode.blocks -= 1;
                    }
                }
                self.release_block(inner, inode.dindirect)?;
                inode.dindirect = 0;
                inode.blocks -= 1;
            } else {
                // free fully-vacated L1 blocks
                let first_live_l1 =
                    ((new_nb - covered).saturating_sub(1) / PTRS_PER_BLOCK as u64 + 1) as usize;
                for l1 in first_live_l1..PTRS_PER_BLOCK {
                    let l1p = self.read_ptr(inode.dindirect, l1)?;
                    if l1p != 0 {
                        self.release_block(inner, l1p)?;
                        self.write_ptr(inode.dindirect, l1, 0)?;
                        inode.blocks -= 1;
                    }
                }
            }
        }

        // zero the partial tail so a later extension reads zeroes
        if !new_size.is_multiple_of(BLOCK_SIZE as u64) && new_size < inode.size {
            let tail_idx = new_size / BLOCK_SIZE as u64;
            let bno = self.get_file_block(inode, tail_idx)?;
            if bno != 0 {
                let from = (new_size % BLOCK_SIZE as u64) as usize;
                let zeros = vec![0u8; BLOCK_SIZE - from];
                self.pages.update(bno, from, &zeros, PageClass::Data)?;
            }
        }
        inode.size = new_size;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Directories
    // ------------------------------------------------------------------

    /// Allocated block numbers of a directory, in file order.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] on holes or a misshapen size (directories
    /// are always fully allocated, block-aligned files).
    fn dir_blocks(&self, inode: &DiskInode) -> FsResult<Vec<u64>> {
        if !inode.size.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Corrupted {
                detail: "directory size not block-aligned".to_string(),
            });
        }
        let nb = inode.size / BLOCK_SIZE as u64;
        let mut out = Vec::with_capacity(nb as usize);
        for idx in 0..nb {
            let bno = self.get_file_block(inode, idx)?;
            if bno == 0 {
                return Err(FsError::Corrupted {
                    detail: "hole inside a directory".to_string(),
                });
            }
            out.push(bno);
        }
        Ok(out)
    }

    fn dir_lookup(&self, dir_ino: InodeNo, name: &str) -> FsResult<Option<InodeNo>> {
        if let Some(ino) = self.dcache.lookup(dir_ino, name) {
            return Ok(Some(ino));
        }
        let dir = self.load_inode(dir_ino)?;
        for bno in self.dir_blocks(&dir)? {
            let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if let Some(rec) = db.find(name) {
                self.dcache.insert(dir_ino, name, rec.ino);
                return Ok(Some(rec.ino));
            }
        }
        Ok(None)
    }

    /// Whether the directory-entry insert below can succeed without
    /// running out of space.
    fn dir_insert_precheck(&self, inner: &Inner, dir: &DiskInode, name_len: usize) -> FsResult<()> {
        for bno in self.dir_blocks(dir)? {
            let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if db.fits(name_len) {
                return Ok(());
            }
        }
        let nb = dir.size / BLOCK_SIZE as u64;
        let need = self.count_missing_blocks(dir, nb, nb + 1)?;
        if inner.alloc.free_blocks < need {
            return Err(FsError::NoSpace);
        }
        Ok(())
    }

    /// Insert an entry; the caller has checked for duplicates and run
    /// the pre-check. Stores the directory inode if it grows.
    fn dir_insert(
        &self,
        inner: &mut Inner,
        dir_ino: InodeNo,
        name: &str,
        ino: InodeNo,
        ftype: FileType,
    ) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Create, Site::DirModify).with_path(name);
        let _ = self.hook(&ctx)?;

        let mut dir = self.load_inode(dir_ino)?;
        for bno in self.dir_blocks(&dir)? {
            let mut db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if db.try_insert(name, ino, ftype)? {
                self.pages.write(bno, db.into_bytes(), PageClass::Meta)?;
                self.dcache.insert(dir_ino, name, ino);
                return Ok(());
            }
        }
        // grow the directory by one block
        let nb = dir.size / BLOCK_SIZE as u64;
        let bno = self.ensure_file_block(inner, &mut dir, nb)?;
        let mut db = DirBlock::empty();
        let inserted = db.try_insert(name, ino, ftype)?;
        debug_assert!(inserted);
        self.pages.write(bno, db.into_bytes(), PageClass::Meta)?;
        dir.size += BLOCK_SIZE as u64;
        let now = Self::tick(inner);
        dir.mtime = now;
        self.store_inode(dir_ino, &dir)?;
        self.dcache.insert(dir_ino, name, ino);
        Ok(())
    }

    /// Remove an entry; `Ok(true)` if found. Shrinks trailing empty
    /// blocks.
    fn dir_remove(&self, inner: &mut Inner, dir_ino: InodeNo, name: &str) -> FsResult<bool> {
        let ctx = OpContext::new(OpKind::Unlink, Site::DirModify).with_path(name);
        let _ = self.hook(&ctx)?;

        let mut dir = self.load_inode(dir_ino)?;
        let blocks = self.dir_blocks(&dir)?;
        let mut found = false;
        for &bno in &blocks {
            let mut db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if db.remove(name) {
                self.pages.write(bno, db.into_bytes(), PageClass::Meta)?;
                found = true;
                break;
            }
        }
        if !found {
            return Ok(false);
        }
        self.dcache.invalidate(dir_ino, name);
        // shrink trailing empty blocks
        let mut nb = dir.size / BLOCK_SIZE as u64;
        let mut changed = false;
        while nb > 0 {
            let last = self.get_file_block(&dir, nb - 1)?;
            if last == 0 {
                break;
            }
            let db = DirBlock::from_bytes(self.pages.read(last, PageClass::Meta)?)?;
            if !db.is_empty() {
                break;
            }
            self.truncate_core(inner, &mut dir, (nb - 1) * BLOCK_SIZE as u64)?;
            nb -= 1;
            changed = true;
        }
        let now = Self::tick(inner);
        dir.mtime = now;
        let _ = changed;
        self.store_inode(dir_ino, &dir)?;
        Ok(true)
    }

    fn dir_entry_count(&self, inode: &DiskInode) -> FsResult<usize> {
        let mut n = 0;
        for bno in self.dir_blocks(inode)? {
            let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            n += db.len();
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    fn resolve(&self, comps: &[&str]) -> FsResult<InodeNo> {
        if !comps.is_empty() {
            let joined = comps.join("/");
            let ctx = OpContext::new(OpKind::Stat, Site::PathLookup).with_path(&joined);
            let _ = self.hook(&ctx)?;
        }
        let mut cur = ROOT_INO;
        for comp in comps {
            let inode = self.load_inode(cur)?;
            if inode.ftype != FileType::Directory {
                return Err(FsError::NotDir);
            }
            match self.dir_lookup(cur, comp)? {
                Some(next) => cur = next,
                None => return Err(FsError::NotFound),
            }
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(InodeNo, &'p str)> {
        let (parent_comps, name) = split_parent(path)?;
        let parent = self.resolve(&parent_comps)?;
        let pinode = self.load_inode(parent)?;
        if pinode.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        Ok((parent, name))
    }

    /// Whether `target` equals `anc` or lies anywhere below it.
    fn is_self_or_descendant(&self, anc: InodeNo, target: InodeNo) -> FsResult<bool> {
        if anc == target {
            return Ok(true);
        }
        let mut stack = vec![anc];
        while let Some(cur) = stack.pop() {
            let inode = self.load_inode(cur)?;
            if inode.ftype != FileType::Directory {
                continue;
            }
            for bno in self.dir_blocks(&inode)? {
                let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
                for rec in db.records() {
                    if rec.ino == target {
                        return Ok(true);
                    }
                    if rec.ftype == FileType::Directory {
                        stack.push(rec.ino);
                    }
                }
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Journal commit
    // ------------------------------------------------------------------

    fn commit_locked(&self, inner: &mut Inner) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Sync, Site::JournalCommit);
        let _ = self.hook(&ctx)?;

        // ordered mode: file data reaches the disk before the metadata
        // that references it
        self.pages.flush_data()?;
        let mut images = self.pages.take_dirty_meta();
        if images.is_empty() {
            return Ok(());
        }
        let sb = Superblock {
            geometry: self.geo,
            free_inodes: inner.alloc.free_inodes,
            free_blocks: inner.alloc.free_blocks,
            mount_state: MountState::Dirty,
            mount_count: inner.mount_count,
        };
        images.push((0, sb.encode()));
        if self.validate_on_commit {
            self.validate_commit_images(&images)?;
        }
        inner.jmgr.commit(self.dev.as_ref(), images)?;
        self.persisted_seq
            .store(self.cur_seq.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    /// Commit if the running transaction has grown past the bound.
    fn maybe_autocommit(&self, inner: &mut Inner) -> FsResult<()> {
        if self.pages.dirty_meta_count() >= self.max_dirty_meta {
            self.commit_locked(inner)?;
        }
        Ok(())
    }

    /// Free every block of a file/symlink inode and the inode itself.
    fn destroy_inode(
        &self,
        inner: &mut Inner,
        ino: InodeNo,
        inode: &mut DiskInode,
    ) -> FsResult<()> {
        self.truncate_core(inner, inode, 0)?;
        inner.alloc.free_ino(&self.pages, ino)?;
        self.clear_inode(ino)
    }
}

impl BaseFs {
    /// `open` returning the allocated descriptor, the inode it refers
    /// to, and whether the file was created — the outcome the RAE
    /// recorder logs (the shadow later validates these choices).
    ///
    /// # Errors
    ///
    /// As [`FileSystem::open`].
    pub fn open_ex(&self, path: &str, flags: OpenFlags) -> FsResult<(Fd, InodeNo, bool)> {
        let ctx = OpContext::new(OpKind::Open, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        if !flags.valid() {
            self.counters.record_error(OpKind::Open);
            return Err(FsError::InvalidArgument);
        }
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let (parent, name) = self.resolve_parent(path)?;
            match self.dir_lookup(parent, name)? {
                Some(ino) => {
                    if flags.creates() && flags.contains(OpenFlags::EXCL) {
                        return Err(FsError::Exists);
                    }
                    let mut inode = self.load_inode(ino)?;
                    match inode.ftype {
                        FileType::Directory => return Err(FsError::IsDir),
                        FileType::Symlink => return Err(FsError::InvalidArgument),
                        FileType::Regular => {}
                    }
                    if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                        self.truncate_core(inner, &mut inode, 0)?;
                        let now = Self::tick(inner);
                        inode.mtime = now;
                        inode.ctime = now;
                        self.store_inode(ino, &inode)?;
                    }
                    inner.fds.alloc(ino, flags, path).map(|fd| (fd, ino, false))
                }
                None => {
                    if !flags.creates() {
                        return Err(FsError::NotFound);
                    }
                    let ctx = OpContext::new(OpKind::Create, Site::Alloc).with_path(path);
                    let _ = self.hook(&ctx)?;
                    let dir = self.load_inode(parent)?;
                    self.dir_insert_precheck(inner, &dir, name.len())?;
                    if inner.alloc.free_inodes == 0 {
                        return Err(FsError::NoInodes);
                    }
                    let ino = inner.alloc.alloc_ino(&self.pages)?;
                    let now = Self::tick(inner);
                    let inode = DiskInode::new(FileType::Regular, now);
                    self.store_inode(ino, &inode)?;
                    self.dir_insert(inner, parent, name, ino, FileType::Regular)?;
                    let mut pdir = self.load_inode(parent)?;
                    pdir.mtime = now;
                    self.store_inode(parent, &pdir)?;
                    match inner.fds.alloc(ino, flags, path) {
                        Ok(fd) => Ok((fd, ino, true)),
                        Err(e) => {
                            // roll back the creation on fd exhaustion
                            self.dir_remove(inner, parent, name)?;
                            let mut dead = inode;
                            self.destroy_inode(inner, ino, &mut dead)?;
                            Err(e)
                        }
                    }
                }
            }
        })();
        match &result {
            Ok(_) => self.counters.record(OpKind::Open),
            Err(_) => self.counters.record_error(OpKind::Open),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    /// Restore a descriptor by inode (the recovery path's `RestoreFd`;
    /// also exercised by tests). The inode must be an allocated regular
    /// file; the descriptor number must be free.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] for a bad inode; [`FsError::Internal`]
    /// for a duplicate descriptor.
    pub fn restore_fd(&self, fd: Fd, ino: InodeNo, flags: OpenFlags, path: &str) -> FsResult<()> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::Corrupted {
                detail: format!("descriptor restore aimed at non-file {ino}"),
            });
        }
        inner.fds.install(fd, ino, flags, path)
    }
}

impl FileSystem for BaseFs {
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.open_ex(path, flags).map(|(fd, _, _)| fd)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let mut inner = self.inner.write();
        let r = inner.fds.close(fd).map(|_| ());
        match &r {
            Ok(()) => self.counters.record(OpKind::Close),
            Err(_) => self.counters.record_error(OpKind::Close),
        }
        r
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let inner = self.lock_read();
        let result = (|| {
            let entry = inner.fds.get(fd)?;
            if !entry.flags.readable() {
                return Err(FsError::BadAccessMode);
            }
            let inode = self.load_inode(entry.ino)?;
            let start = offset.min(inode.size);
            let end = offset.saturating_add(len as u64).min(inode.size);
            let mut out = Vec::with_capacity((end - start) as usize);
            let mut pos = start;
            while pos < end {
                let idx = pos / BLOCK_SIZE as u64;
                let in_blk = (pos % BLOCK_SIZE as u64) as usize;
                let take = ((BLOCK_SIZE - in_blk) as u64).min(end - pos) as usize;
                let bno = self.get_file_block(&inode, idx)?;
                if bno == 0 {
                    out.extend(std::iter::repeat_n(0u8, take));
                } else {
                    let blk = self.pages.read(bno, PageClass::Data)?;
                    out.extend_from_slice(&blk[in_blk..in_blk + take]);
                }
                pos += take as u64;
            }
            Ok(out)
        })();
        match &result {
            Ok(data) => {
                self.counters.record(OpKind::Read);
                self.counters.add_bytes_read(data.len() as u64);
            }
            Err(_) => self.counters.record_error(OpKind::Read),
        }
        result
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let entry = inner.fds.get(fd)?;
            if !entry.flags.writable() {
                return Err(FsError::BadAccessMode);
            }
            if data.is_empty() {
                return Ok(0);
            }
            let ctx = OpContext::new(OpKind::Write, Site::Write)
                .with_path(&entry.path)
                .with_io(offset, data.len());
            let corrupt = self.hook(&ctx)?;
            let mut payload; // only materialized when corrupting
            let data: &[u8] = if corrupt {
                payload = data.to_vec();
                payload[0] ^= 0x01; // the silent wrong result
                &payload
            } else {
                data
            };

            let mut inode = self.load_inode(entry.ino)?;
            let at = if entry.flags.contains(OpenFlags::APPEND) {
                inode.size
            } else {
                offset
            };
            let end = at
                .checked_add(data.len() as u64)
                .ok_or(FsError::FileTooBig)?;
            if end > MAX_FILE_SIZE {
                return Err(FsError::FileTooBig);
            }
            // all-or-nothing space pre-check
            let start_idx = at / BLOCK_SIZE as u64;
            let end_idx = end.div_ceil(BLOCK_SIZE as u64);
            let need = self.count_missing_blocks(&inode, start_idx, end_idx)?;
            if need > inner.alloc.free_blocks {
                return Err(FsError::NoSpace);
            }

            let mut pos = at;
            let mut src = 0usize;
            while pos < end {
                let idx = pos / BLOCK_SIZE as u64;
                let in_blk = (pos % BLOCK_SIZE as u64) as usize;
                let take = ((BLOCK_SIZE - in_blk) as u64).min(end - pos) as usize;
                let bno = self.ensure_file_block(inner, &mut inode, idx)?;
                if take == BLOCK_SIZE {
                    self.pages
                        .write(bno, data[src..src + take].to_vec(), PageClass::Data)?;
                } else {
                    self.pages
                        .update(bno, in_blk, &data[src..src + take], PageClass::Data)?;
                }
                pos += take as u64;
                src += take;
            }
            if end > inode.size {
                inode.size = end;
            }
            let now = Self::tick(inner);
            inode.mtime = now;
            inode.ctime = now;
            self.store_inode(entry.ino, &inode)?;
            Ok(data.len())
        })();
        match &result {
            Ok(n) => {
                self.counters.record(OpKind::Write);
                self.counters.add_bytes_written(*n as u64);
            }
            Err(_) => self.counters.record_error(OpKind::Write),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let entry = inner.fds.get(fd)?;
            if !entry.flags.writable() {
                return Err(FsError::BadAccessMode);
            }
            let ctx = OpContext::new(OpKind::Truncate, Site::Truncate).with_path(&entry.path);
            let _ = self.hook(&ctx)?;
            if size > MAX_FILE_SIZE {
                return Err(FsError::FileTooBig);
            }
            let mut inode = self.load_inode(entry.ino)?;
            if size < inode.size {
                self.truncate_core(inner, &mut inode, size)?;
            } else {
                inode.size = size; // extension is sparse
            }
            let now = Self::tick(inner);
            inode.mtime = now;
            inode.ctime = now;
            self.store_inode(entry.ino, &inode)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Truncate),
            Err(_) => self.counters.record_error(OpKind::Truncate),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn setattr(&self, path: &str, attr: SetAttr) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::SetAttr, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let comps = split_path(path)?;
            let ino = self.resolve(&comps)?;
            let mut inode = self.load_inode(ino)?;
            if let Some(size) = attr.size {
                match inode.ftype {
                    FileType::Directory => return Err(FsError::IsDir),
                    FileType::Symlink => return Err(FsError::InvalidArgument),
                    FileType::Regular => {}
                }
                if size > MAX_FILE_SIZE {
                    return Err(FsError::FileTooBig);
                }
                if size < inode.size {
                    self.truncate_core(inner, &mut inode, size)?;
                } else {
                    inode.size = size;
                }
                let now = Self::tick(inner);
                inode.mtime = now;
                inode.ctime = now;
            }
            if let Some(mtime) = attr.mtime {
                inode.mtime = mtime;
            }
            self.store_inode(ino, &inode)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::SetAttr),
            Err(_) => self.counters.record_error(OpKind::SetAttr),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            inner.fds.get(fd)?;
            self.commit_locked(inner)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Fsync),
            Err(_) => self.counters.record_error(OpKind::Fsync),
        }
        result
    }

    fn sync(&self) -> FsResult<()> {
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = self.commit_locked(inner);
        match &result {
            Ok(()) => self.counters.record(OpKind::Sync),
            Err(_) => self.counters.record_error(OpKind::Sync),
        }
        result
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Mkdir, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let (parent, name) = self.resolve_parent(path)?;
            if self.dir_lookup(parent, name)?.is_some() {
                return Err(FsError::Exists);
            }
            let ctx = OpContext::new(OpKind::Mkdir, Site::Alloc).with_path(path);
            let _ = self.hook(&ctx)?;
            let pdir = self.load_inode(parent)?;
            self.dir_insert_precheck(inner, &pdir, name.len())?;
            if inner.alloc.free_inodes == 0 {
                return Err(FsError::NoInodes);
            }
            let ino = inner.alloc.alloc_ino(&self.pages)?;
            let now = Self::tick(inner);
            let inode = DiskInode::new(FileType::Directory, now);
            self.store_inode(ino, &inode)?;
            self.dir_insert(inner, parent, name, ino, FileType::Directory)?;
            let mut pdir = self.load_inode(parent)?;
            pdir.links += 1;
            pdir.mtime = now;
            self.store_inode(parent, &pdir)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Mkdir),
            Err(_) => self.counters.record_error(OpKind::Mkdir),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Rmdir, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let (parent, name) = self.resolve_parent(path)?;
            let ino = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
            let mut inode = self.load_inode(ino)?;
            if inode.ftype != FileType::Directory {
                return Err(FsError::NotDir);
            }
            if self.dir_entry_count(&inode)? != 0 {
                return Err(FsError::NotEmpty);
            }
            self.dir_remove(inner, parent, name)?;
            self.destroy_inode(inner, ino, &mut inode)?;
            let now = Self::tick(inner);
            let mut pdir = self.load_inode(parent)?;
            pdir.links -= 1;
            pdir.mtime = now;
            self.store_inode(parent, &pdir)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Rmdir),
            Err(_) => self.counters.record_error(OpKind::Rmdir),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Unlink, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let (parent, name) = self.resolve_parent(path)?;
            let ino = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
            let mut inode = self.load_inode(ino)?;
            match inode.ftype {
                FileType::Directory => return Err(FsError::IsDir),
                FileType::Regular => {
                    if inner.fds.has_open(ino) {
                        return Err(FsError::Busy);
                    }
                }
                FileType::Symlink => {}
            }
            self.dir_remove(inner, parent, name)?;
            inode.links -= 1;
            if inode.links == 0 {
                self.destroy_inode(inner, ino, &mut inode)?;
            } else {
                let now = Self::tick(inner);
                inode.ctime = now;
                self.store_inode(ino, &inode)?;
            }
            let now = Self::tick(inner);
            let mut pdir = self.load_inode(parent)?;
            pdir.mtime = now;
            self.store_inode(parent, &pdir)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Unlink),
            Err(_) => self.counters.record_error(OpKind::Unlink),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Rename, Site::Rename)
            .with_path(from)
            .with_path2(to);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let (from_parent, from_name) = self.resolve_parent(from)?;
            let (to_parent, to_name) = self.resolve_parent(to)?;
            let src = self
                .dir_lookup(from_parent, from_name)?
                .ok_or(FsError::NotFound)?;
            if from_parent == to_parent && from_name == to_name {
                return Ok(());
            }
            let src_inode = self.load_inode(src)?;
            let src_is_dir = src_inode.ftype == FileType::Directory;
            if src_is_dir && self.is_self_or_descendant(src, to_parent)? {
                return Err(FsError::RenameLoop);
            }
            let existing_dst = self.dir_lookup(to_parent, to_name)?;
            if let Some(dst) = existing_dst {
                if dst == src {
                    return Ok(()); // hard links to the same inode
                }
                let mut dst_inode = self.load_inode(dst)?;
                match (src_is_dir, dst_inode.ftype == FileType::Directory) {
                    (true, true) => {
                        if self.dir_entry_count(&dst_inode)? != 0 {
                            return Err(FsError::NotEmpty);
                        }
                    }
                    (true, false) => return Err(FsError::NotDir),
                    (false, true) => return Err(FsError::IsDir),
                    (false, false) => {
                        if dst_inode.ftype == FileType::Regular && inner.fds.has_open(dst) {
                            return Err(FsError::Busy);
                        }
                    }
                }
                // remove and destroy (or unlink) the replaced target
                self.dir_remove(inner, to_parent, to_name)?;
                if dst_inode.ftype == FileType::Directory {
                    self.destroy_inode(inner, dst, &mut dst_inode)?;
                    let mut tp = self.load_inode(to_parent)?;
                    tp.links -= 1;
                    self.store_inode(to_parent, &tp)?;
                } else {
                    dst_inode.links -= 1;
                    if dst_inode.links == 0 {
                        self.destroy_inode(inner, dst, &mut dst_inode)?;
                    } else {
                        self.store_inode(dst, &dst_inode)?;
                    }
                }
            } else {
                // the insert below must not fail halfway: pre-check space
                let tp = self.load_inode(to_parent)?;
                self.dir_insert_precheck(inner, &tp, to_name.len())?;
            }

            self.dir_remove(inner, from_parent, from_name)?;
            self.dir_insert(inner, to_parent, to_name, src, src_inode.ftype)?;
            let now = Self::tick(inner);
            if src_is_dir && from_parent != to_parent {
                let mut fp = self.load_inode(from_parent)?;
                fp.links -= 1;
                fp.mtime = now;
                self.store_inode(from_parent, &fp)?;
                let mut tp = self.load_inode(to_parent)?;
                tp.links += 1;
                tp.mtime = now;
                self.store_inode(to_parent, &tp)?;
            } else {
                let mut fp = self.load_inode(from_parent)?;
                fp.mtime = now;
                self.store_inode(from_parent, &fp)?;
                if from_parent != to_parent {
                    let mut tp = self.load_inode(to_parent)?;
                    tp.mtime = now;
                    self.store_inode(to_parent, &tp)?;
                }
            }
            Ok(())
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Rename),
            Err(_) => self.counters.record_error(OpKind::Rename),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn link(&self, existing: &str, new: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Link, Site::ApiEntry)
            .with_path(existing)
            .with_path2(new);
        let _ = self.hook(&ctx)?;
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let comps = split_path(existing)?;
            if comps.is_empty() {
                return Err(FsError::IsDir);
            }
            let src = self.resolve(&comps)?;
            let mut src_inode = self.load_inode(src)?;
            match src_inode.ftype {
                FileType::Directory => return Err(FsError::IsDir),
                FileType::Symlink => return Err(FsError::InvalidArgument),
                FileType::Regular => {}
            }
            if u32::from(src_inode.links) >= MAX_LINKS {
                return Err(FsError::TooManyLinks);
            }
            let (new_parent, new_name) = self.resolve_parent(new)?;
            if self.dir_lookup(new_parent, new_name)?.is_some() {
                return Err(FsError::Exists);
            }
            let np = self.load_inode(new_parent)?;
            self.dir_insert_precheck(inner, &np, new_name.len())?;
            self.dir_insert(inner, new_parent, new_name, src, FileType::Regular)?;
            let now = Self::tick(inner);
            src_inode.links += 1;
            src_inode.ctime = now;
            self.store_inode(src, &src_inode)?;
            let mut np = self.load_inode(new_parent)?;
            np.mtime = now;
            self.store_inode(new_parent, &np)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Link),
            Err(_) => self.counters.record_error(OpKind::Link),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Symlink, Site::ApiEntry).with_path(linkpath);
        let _ = self.hook(&ctx)?;
        if target.len() > BLOCK_SIZE {
            return Err(FsError::NameTooLong);
        }
        let mut inner = self.inner.write();
        let inner = &mut *inner;
        let result = (|| {
            let (parent, name) = self.resolve_parent(linkpath)?;
            if self.dir_lookup(parent, name)?.is_some() {
                return Err(FsError::Exists);
            }
            let pdir = self.load_inode(parent)?;
            self.dir_insert_precheck(inner, &pdir, name.len())?;
            if inner.alloc.free_inodes == 0 {
                return Err(FsError::NoInodes);
            }
            let target_blocks = if target.is_empty() { 0 } else { 1 };
            if inner.alloc.free_blocks < target_blocks {
                return Err(FsError::NoSpace);
            }
            let ino = inner.alloc.alloc_ino(&self.pages)?;
            let now = Self::tick(inner);
            let mut inode = DiskInode::new(FileType::Symlink, now);
            if !target.is_empty() {
                let bno = self.alloc_data_block(inner, PageClass::Data)?;
                let mut blk = vec![0u8; BLOCK_SIZE];
                blk[..target.len()].copy_from_slice(target.as_bytes());
                self.pages.write(bno, blk, PageClass::Data)?;
                inode.direct[0] = bno;
                inode.blocks = 1;
            }
            inode.size = target.len() as u64;
            self.store_inode(ino, &inode)?;
            self.dir_insert(inner, parent, name, ino, FileType::Symlink)?;
            let mut pdir = self.load_inode(parent)?;
            pdir.mtime = now;
            self.store_inode(parent, &pdir)
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Symlink),
            Err(_) => self.counters.record_error(OpKind::Symlink),
        }
        self.maybe_autocommit(inner)?;
        result
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        // guard held for reader/writer exclusion; body reads via &self
        let _inner = self.lock_read();
        let result = (|| {
            let comps = split_path(path)?;
            let ino = self.resolve(&comps)?;
            let inode = self.load_inode(ino)?;
            if inode.ftype != FileType::Symlink {
                return Err(FsError::InvalidArgument);
            }
            if inode.size == 0 {
                return Ok(String::new());
            }
            let bno = inode.direct[0];
            if bno == 0 || inode.size > BLOCK_SIZE as u64 {
                return Err(FsError::Corrupted {
                    detail: format!("symlink {ino} has inconsistent target storage"),
                });
            }
            let blk = self.pages.read(bno, PageClass::Data)?;
            String::from_utf8(blk[..inode.size as usize].to_vec()).map_err(|_| FsError::Corrupted {
                detail: format!("symlink {ino} target is not UTF-8"),
            })
        })();
        match &result {
            Ok(_) => self.counters.record(OpKind::Readlink),
            Err(_) => self.counters.record_error(OpKind::Readlink),
        }
        result
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        // guard held for reader/writer exclusion; body reads via &self
        let _inner = self.lock_read();
        let result = (|| {
            let comps = split_path(path)?;
            let ino = self.resolve(&comps)?;
            let inode = self.load_inode(ino)?;
            Ok(FileStat {
                ino,
                ftype: inode.ftype,
                size: inode.size,
                nlink: u32::from(inode.links),
                blocks: u64::from(inode.blocks),
                mtime: inode.mtime,
                ctime: inode.ctime,
            })
        })();
        match &result {
            Ok(_) => self.counters.record(OpKind::Stat),
            Err(_) => self.counters.record_error(OpKind::Stat),
        }
        result
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        let inner = self.lock_read();
        let result = (|| {
            let entry = inner.fds.get(fd)?;
            let inode = self.load_inode(entry.ino)?;
            Ok(FileStat {
                ino: entry.ino,
                ftype: inode.ftype,
                size: inode.size,
                nlink: u32::from(inode.links),
                blocks: u64::from(inode.blocks),
                mtime: inode.mtime,
                ctime: inode.ctime,
            })
        })();
        match &result {
            Ok(_) => self.counters.record(OpKind::Fstat),
            Err(_) => self.counters.record_error(OpKind::Fstat),
        }
        result
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ctx = OpContext::new(OpKind::Readdir, Site::Readdir).with_path(path);
        let corrupt = self.hook(&ctx)?;
        // guard held for reader/writer exclusion; body reads via &self
        let _inner = self.lock_read();
        let result = (|| {
            let comps = split_path(path)?;
            let ino = self.resolve(&comps)?;
            let inode = self.load_inode(ino)?;
            if inode.ftype != FileType::Directory {
                return Err(FsError::NotDir);
            }
            let mut out = Vec::new();
            for bno in self.dir_blocks(&inode)? {
                let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
                for rec in db.records() {
                    out.push(DirEntry {
                        ino: rec.ino,
                        ftype: rec.ftype,
                        name: rec.name,
                    });
                }
            }
            if corrupt {
                out.pop(); // the silent wrong result: one entry vanishes
            }
            Ok(out)
        })();
        match &result {
            Ok(_) => self.counters.record(OpKind::Readdir),
            Err(_) => self.counters.record_error(OpKind::Readdir),
        }
        result
    }

    fn statfs(&self) -> FsResult<FsGeometryInfo> {
        let inner = self.lock_read();
        self.counters.record(OpKind::Statfs);
        Ok(FsGeometryInfo {
            block_size: BLOCK_SIZE as u32,
            total_blocks: self.geo.data_blocks,
            free_blocks: inner.alloc.free_blocks,
            total_inodes: u64::from(self.geo.inode_count) - 2,
            free_inodes: u64::from(inner.alloc.free_inodes),
        })
    }
}
