//! The `BaseFs` type: lifecycle, internal machinery, and the
//! [`FileSystem`] implementation.
//!
//! # Locking protocol (§4g of DESIGN.md)
//!
//! The write path is sharded. A mutation takes, in order:
//!
//! 1. `fence` (shared) — a global rename fence. `rename` is the one
//!    operation that rewrites the namespace *between* directories, so
//!    it takes `fence` exclusively and runs alone; every other
//!    operation (mutating or reading) takes it shared and never sees a
//!    rename in flight.
//! 2. `txn` (shared) — the journal-transaction lock. Mutations hold it
//!    shared for their whole critical section; the group-commit leader
//!    takes it exclusively, so a commit sees no half-finished
//!    mutation. `serial_writes` baseline mode makes every mutation
//!    take it exclusively (the pre-sharding behaviour).
//! 3. The **inode stripe locks** for the op's write set, acquired in
//!    ascending stripe order (deadlock-free). Each op declares the
//!    inodes it mutates (e.g. `unlink` = {parent, victim}) and holds
//!    their stripes exclusively.
//! 4. Leaf mutexes (`fds`, `alloc`, `jmgr`, `commit_state`) — short
//!    capture/release holds only, never nested with one another.
//!
//! Because path resolution runs before the write-set is known, every
//! mutation resolves optimistically, locks its stripes, then
//! *revalidates* (the resolved entry must still be there) and retries
//! from scratch on a miss. Readers take one stripe shared at a time
//! while walking and retry a bounded number of times on `Corrupted`
//! (a benign race with a concurrent unlink reads as transient
//! corruption; real corruption persists across retries).
//!
//! Known relaxation: an unlocked path walk can race inode reuse and
//! return a just-reallocated inode's data. Reads are unrecorded, and
//! the next-fit allocation hint makes immediate reuse rare; the
//! recorded mutation history is unaffected.

use crate::alloc::Allocators;
use crate::dentry::DentryCache;
use crate::fdtable::{FdEntry, FdTable};
use crate::icache::InodeCache;
use crate::jmgr::JournalMgr;
use crate::pagecache::{CacheStats, PageCache, PageClass};
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use rae_blockdev::{BlockDevice, QueueConfig, BLOCK_SIZE};
use rae_faults::{FaultAction, FaultRegistry, OpContext, Site};
use rae_fsformat::dirent::DirBlock;
use rae_fsformat::inode::{
    locate_block, BlockPtrLoc, DiskInode, INODES_PER_BLOCK, INODE_SIZE, PTRS_PER_BLOCK,
};
use rae_fsformat::journal::{self, ReplayReport};
use rae_fsformat::{Geometry, MountState, RecoveryDelta, Superblock};
use rae_vfs::{
    split_parent, split_path, DirEntry, Fd, FileStat, FileSystem, FileType, FsError,
    FsGeometryInfo, FsResult, InodeNo, OpCounters, OpKind, OpOutcome, OpenFlags, SetAttr,
    MAX_FILE_SIZE, MAX_LINKS, ROOT_INO,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of inode lock stripes. Inode `i` maps to stripe
/// `i % ILOCK_STRIPES`; two files contend only on a stripe collision.
const ILOCK_STRIPES: usize = 1024;
/// Optimistic-resolution retries before a mutation gives up with
/// [`FsError::Busy`]. A retry needs a concurrent racing rename/unlink
/// of the same entry, so in practice one retry is already rare.
const MUT_RETRIES: usize = 64;
/// Reader retries on [`FsError::Corrupted`] (transient under races
/// with unlink; persistent when the metadata really is damaged).
const READ_RETRIES: usize = 3;
/// Group-commit results kept for late-waking followers.
const RESULTS_KEPT: usize = 64;

/// Assigns completed mutations their position in a global operation
/// log. Installed by the RAE runtime via [`BaseFs::set_sequencer`]; the
/// base filesystem calls it at each operation's *sequence point* —
/// inside the op's locks, at the moment the mutation's effects become
/// observable to concurrent operations — so log order equals
/// observation order and a replay of the log reproduces the tree.
pub trait OpSequencer: Send + Sync {
    /// Record `outcome` and return its sequence number, or `None` when
    /// the operation should not be logged (e.g. recovery-path calls).
    fn sequenced(&self, outcome: &OpOutcome) -> Option<u64>;
}

/// Configuration of a [`BaseFs`] instance.
#[derive(Debug, Clone)]
pub struct BaseFsConfig {
    /// Page-cache capacity in blocks.
    pub page_cache_blocks: usize,
    /// Dentry-cache capacity in entries.
    pub dentry_cache_entries: usize,
    /// Write-back queue configuration.
    pub queue: QueueConfig,
    /// Fault registry consulted by the bug hooks (empty = no faults).
    pub faults: FaultRegistry,
    /// Commit the running transaction when this many dirty metadata
    /// pages accumulate (bounds journal transaction size).
    pub max_dirty_meta: usize,
    /// Validate metadata images before each journal commit
    /// (validate-on-sync: the paper's fault-model assumption that
    /// errors are detected before being persisted to disk).
    pub validate_on_commit: bool,
    /// Serialize read-only operations behind the exclusive lock (the
    /// pre-concurrency baseline; benchmarks use this together with
    /// `cache_shards: Some(1)` for before/after comparisons).
    pub serial_reads: bool,
    /// Page-cache shard override (`None` = automatic sizing).
    pub cache_shards: Option<usize>,
    /// Telemetry handle shared with the page cache and journal manager
    /// (journal-commit and cache-fill timings, stale-eviction events).
    pub telemetry: Option<Arc<rae_telemetry::Telemetry>>,
    /// Serialize mutations behind one exclusive transaction lock (the
    /// pre-sharding write path, kept live as the E11 baseline). Group
    /// commit still runs, but mutations never overlap so batches stay
    /// at one.
    pub serial_writes: bool,
    /// Microseconds a group-commit leader waits before sealing its
    /// batch, giving concurrent committers time to join. Zero (the
    /// default) seals immediately; contention alone still forms
    /// batches because joiners accumulate while the leader waits for
    /// the exclusive transaction lock.
    pub group_commit_leader_wait_us: u64,
}

impl Default for BaseFsConfig {
    fn default() -> BaseFsConfig {
        BaseFsConfig {
            page_cache_blocks: 2048,
            dentry_cache_entries: 4096,
            queue: QueueConfig::default(),
            faults: FaultRegistry::new(),
            max_dirty_meta: 192,
            validate_on_commit: true,
            serial_reads: false,
            cache_shards: None,
            telemetry: None,
            serial_writes: false,
            group_commit_leader_wait_us: 0,
        }
    }
}

/// Point-in-time performance statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseFsStats {
    /// Page-cache counters.
    pub cache: CacheStats,
    /// Dentry-cache hits.
    pub dentry_hits: u64,
    /// Dentry-cache misses.
    pub dentry_misses: u64,
    /// Journal transactions committed.
    pub journal_commits: u64,
    /// Journal checkpoints performed.
    pub journal_checkpoints: u64,
    /// Open descriptors.
    pub open_fds: usize,
    /// Pages resident in the page cache.
    pub resident_pages: usize,
}

/// Group-commit coordination state (under its own mutex, paired with
/// [`BaseFs::commit_cv`]).
#[derive(Debug, Default)]
struct CommitState {
    /// A leader is driving a commit right now.
    leader_running: bool,
    /// The running leader's batch is still accepting joiners (it flips
    /// closed when the leader acquires the transaction lock).
    batch_open: bool,
    /// Callers folded into the forming batch (leader included).
    joined: u64,
    /// Generation counter of the latest batch to start.
    gen_started: u64,
    /// Generation counter of the latest batch to finish.
    gen_completed: u64,
    /// Recent `(generation, result)` pairs for waking followers.
    results: VecDeque<(u64, FsResult<()>)>,
}

/// Blocks and inodes freed by an operation, applied in one batch at
/// the op's end (after its sequence point, locks still held). Deferring
/// the frees keeps the free→reuse ordering hazard out of the sharded
/// critical sections: a free drops the journal's pending image *before*
/// the allocator can hand the block to anyone else.
#[derive(Debug, Default)]
struct Frees {
    blocks: Vec<u64>,
    inos: Vec<InodeNo>,
}

impl Frees {
    fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.inos.is_empty()
    }
}

/// Guard for the journal-transaction lock: shared for normal sharded
/// mutations, exclusive in the `serial_writes` baseline.
enum TxnGuard<'a> {
    Shared(#[allow(dead_code)] RwLockReadGuard<'a, ()>),
    Exclusive(#[allow(dead_code)] RwLockWriteGuard<'a, ()>),
}

/// Outcome of revalidating an optimistic resolution under locks.
enum Reval {
    /// The resolution still holds; proceed.
    Ok,
    /// A concurrent mutation invalidated it; drop the locks and retry.
    Retry,
}

/// A worst-case block reservation, returned to the allocator on drop.
struct ResGuard<'a> {
    fs: &'a BaseFs,
    n: u64,
}

impl Drop for ResGuard<'_> {
    fn drop(&mut self) {
        if self.n > 0 {
            self.fs.alloc.lock().release_reservation(self.n);
        }
    }
}

/// The performance-oriented base filesystem. See the crate docs for the
/// architecture and the RAE integration surface, and the module docs
/// for the locking protocol.
pub struct BaseFs {
    dev: Arc<dyn BlockDevice>,
    geo: Geometry,
    pages: PageCache,
    icache: InodeCache,
    dcache: DentryCache,
    fds: Mutex<FdTable>,
    alloc: Mutex<Allocators>,
    jmgr: Mutex<JournalMgr>,
    commit_state: Mutex<CommitState>,
    commit_cv: Condvar,
    /// Journal-transaction lock: shared by mutations, exclusive for
    /// commit leaders (and the `serial_writes`/`serial_reads` modes).
    txn: RwLock<()>,
    /// Global rename fence: exclusive for `rename`, shared otherwise.
    fence: RwLock<()>,
    /// Per-inode stripe locks (see the module docs).
    ilocks: Box<[RwLock<()>]>,
    clock: AtomicU64,
    mount_count: u32,
    serial_reads: bool,
    serial_writes: bool,
    leader_wait_us: u64,
    counters: OpCounters,
    faults: FaultRegistry,
    max_dirty_meta: usize,
    validate_on_commit: bool,
    cur_seq: AtomicU64,
    persisted_seq: AtomicU64,
    sequencer: RwLock<Option<Arc<dyn OpSequencer>>>,
    /// Kept so the journal manager rebuilt by a contained reboot can be
    /// re-attached to the same telemetry stream.
    telemetry: Option<Arc<rae_telemetry::Telemetry>>,
}

impl std::fmt::Debug for BaseFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaseFs")
            .field("geometry", &self.geo)
            .field("pages", &self.pages)
            .finish()
    }
}

impl BaseFs {
    /// Mount a filesystem from `dev`, replaying the journal.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] if the superblock or journal header fail
    /// validation; device errors.
    ///
    /// # Panics
    ///
    /// An armed [`Site::MountImage`] bug with a panic effect fires here
    /// (the crafted-image crash class).
    pub fn mount(dev: Arc<dyn BlockDevice>, config: BaseFsConfig) -> FsResult<BaseFs> {
        let faults = config.faults.clone();
        if let Some(action) = faults.check(&OpContext::new(OpKind::Mount, Site::MountImage)) {
            Self::act_static(action)?;
        }
        let sb = Superblock::read_from(dev.as_ref())?;
        let geo = sb.geometry;
        if dev.block_count() < geo.total_blocks {
            return Err(FsError::Corrupted {
                detail: "device smaller than the filesystem".to_string(),
            });
        }
        let replay = journal::replay(dev.as_ref(), &geo)?;
        let mut sb = Superblock::read_from(dev.as_ref())?;
        sb.mount_state = MountState::Dirty;
        sb.mount_count += 1;
        sb.write_to(dev.as_ref())?;
        dev.flush()?;

        let pages = match config.cache_shards {
            Some(n) => {
                PageCache::with_shards(Arc::clone(&dev), config.page_cache_blocks, config.queue, n)
            }
            None => PageCache::new(Arc::clone(&dev), config.page_cache_blocks, config.queue),
        };
        if let Some(t) = &config.telemetry {
            pages.set_telemetry(Arc::clone(t));
        }
        let mut jmgr = JournalMgr::new(geo, replay.next_seq);
        jmgr.set_telemetry(config.telemetry.clone());
        let alloc = Allocators::load(geo, &pages)?;
        let ilocks: Vec<RwLock<()>> = (0..ILOCK_STRIPES).map(|_| RwLock::new(())).collect();
        Ok(BaseFs {
            dev,
            geo,
            pages,
            icache: InodeCache::new(),
            dcache: DentryCache::new(config.dentry_cache_entries),
            fds: Mutex::new(FdTable::new()),
            alloc: Mutex::new(alloc),
            jmgr: Mutex::new(jmgr),
            commit_state: Mutex::new(CommitState::default()),
            commit_cv: Condvar::new(),
            txn: RwLock::new(()),
            fence: RwLock::new(()),
            ilocks: ilocks.into_boxed_slice(),
            clock: AtomicU64::new(0),
            mount_count: sb.mount_count,
            serial_reads: config.serial_reads,
            serial_writes: config.serial_writes,
            leader_wait_us: config.group_commit_leader_wait_us,
            counters: OpCounters::new(),
            faults,
            max_dirty_meta: config.max_dirty_meta.max(8),
            validate_on_commit: config.validate_on_commit,
            cur_seq: AtomicU64::new(0),
            persisted_seq: AtomicU64::new(0),
            sequencer: RwLock::new(None),
            telemetry: config.telemetry,
        })
    }

    /// Cleanly unmount: commit, checkpoint, mark the superblock clean.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn unmount(self) -> FsResult<()> {
        let _txn = self.txn.write();
        self.commit_with_txn_held()?;
        self.jmgr.lock().checkpoint(self.dev.as_ref())?;
        self.pages.checkpoint_done();
        let (free_inodes, free_blocks) = {
            let alloc = self.alloc.lock();
            (alloc.free_inodes, alloc.free_blocks)
        };
        let sb = Superblock {
            geometry: self.geo,
            free_inodes,
            free_blocks,
            mount_state: MountState::Clean,
            mount_count: self.mount_count,
        };
        sb.write_to(self.dev.as_ref())?;
        self.dev.flush()?;
        Ok(())
    }

    /// Commit the running transaction and checkpoint the journal: all
    /// durable state reaches its home location, so a reader of the raw
    /// device (e.g. an auditing shadow) sees the complete filesystem
    /// without replaying the journal.
    ///
    /// # Errors
    ///
    /// Device errors.
    pub fn checkpoint(&self) -> FsResult<()> {
        let _txn = self.txn.write();
        self.commit_with_txn_held()?;
        self.jmgr.lock().checkpoint(self.dev.as_ref())?;
        self.pages.checkpoint_done();
        Ok(())
    }

    /// Simulate a kernel crash: every in-memory structure vanishes
    /// without a commit. Writes already handed to the write-back queue
    /// may still land (as on real hardware); dirty cached state is
    /// lost. This is the baseline recovery path experiment E4 compares
    /// RAE against.
    pub fn crash(self) {
        drop(self);
    }

    // ------------------------------------------------------------------
    // RAE integration surface
    // ------------------------------------------------------------------

    /// Contained reboot (§3.2): discard all in-memory state and rebuild
    /// from the trusted on-disk state, replaying the journal.
    /// Applications keep running; descriptors are restored afterwards
    /// via [`BaseFs::absorb_recovery`].
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] / device errors if the on-disk state
    /// itself cannot be trusted — recovery is then impossible.
    pub fn contained_reboot(&self) -> FsResult<ReplayReport> {
        // recovery-path fault site: tooling can fail while the system
        // is already degraded (the nested-fault campaign, E8)
        let ctx = OpContext::new(OpKind::Sync, Site::RecoveryReboot);
        let _ = self.hook(&ctx)?;
        let _fence = self.fence.write();
        let _txn = self.txn.write();
        // Quiesce in-flight write-back, then drop every cached page —
        // nothing in memory is trusted after an error.
        self.pages.quiesce()?;
        self.pages.discard_all();
        self.icache.clear();
        self.dcache.clear();
        self.fds.lock().clear();

        let report = journal::replay(self.dev.as_ref(), &self.geo)?;
        *self.alloc.lock() = Allocators::load(self.geo, &self.pages)?;
        let mut jmgr = JournalMgr::new(self.geo, report.next_seq);
        jmgr.set_telemetry(self.telemetry.clone());
        *self.jmgr.lock() = jmgr;
        Ok(report)
    }

    /// Metadata downloading (§3.2): absorb the shadow's reconstructed
    /// state. Block images land in the page cache marked dirty (the
    /// existing journal machinery persists them at the next commit);
    /// the descriptor table is rebuilt with identical numbering.
    ///
    /// # Errors
    ///
    /// [`FsError::Internal`] on duplicate descriptors; cache errors.
    pub fn absorb_recovery(&self, delta: &RecoveryDelta) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Sync, Site::RecoveryAbsorb);
        let _ = self.hook(&ctx)?;
        let _fence = self.fence.write();
        let _txn = self.txn.write();
        for (bno, img) in &delta.meta_blocks {
            if *bno == 0 {
                continue; // superblock is rebuilt from the bitmaps below
            }
            self.pages.write(*bno, img.clone(), PageClass::Meta)?;
        }
        for (bno, img) in &delta.data_blocks {
            self.pages.write(*bno, img.clone(), PageClass::Data)?;
        }
        self.icache.clear();
        self.dcache.clear();
        {
            let mut alloc = self.alloc.lock();
            *alloc = Allocators::load(self.geo, &self.pages)?;
            let mut fds = self.fds.lock();
            fds.clear();
            for rfd in &delta.fd_entries {
                if !alloc.ino_allocated(rfd.ino)? {
                    return Err(FsError::Internal {
                        detail: format!(
                            "recovery delta restores {} on unallocated {}",
                            rfd.fd, rfd.ino
                        ),
                    });
                }
                fds.install(rfd.fd, rfd.ino, rfd.flags, &rfd.path)?;
            }
        }
        Ok(())
    }

    /// Record the sequence number of the operation about to execute
    /// (called by the RAE runtime before each logged operation).
    pub fn note_op_seq(&self, seq: u64) {
        self.cur_seq.fetch_max(seq, Ordering::Relaxed);
    }

    /// Install (or clear) the operation sequencer consulted at each
    /// mutation's sequence point.
    pub fn set_sequencer(&self, sequencer: Option<Arc<dyn OpSequencer>>) {
        *self.sequencer.write() = sequencer;
    }

    /// The persistence barrier: every logged operation with a sequence
    /// number at or below this value is recoverable from disk alone
    /// (journal replay included), so its record can be discarded.
    #[must_use]
    pub fn persisted_seq(&self) -> u64 {
        self.persisted_seq.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The filesystem geometry.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// A handle to the underlying device (shared with the shadow).
    #[must_use]
    pub fn device(&self) -> Arc<dyn BlockDevice> {
        Arc::clone(&self.dev)
    }

    /// The fault registry driving this instance's bug hooks.
    #[must_use]
    pub fn fault_registry(&self) -> FaultRegistry {
        self.faults.clone()
    }

    /// Operation counters.
    #[must_use]
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Performance statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> BaseFsStats {
        let (journal_commits, journal_checkpoints) = {
            let jm = self.jmgr.lock();
            (jm.commits(), jm.checkpoints())
        };
        BaseFsStats {
            cache: self.pages.stats(),
            dentry_hits: self.dcache.hits(),
            dentry_misses: self.dcache.misses(),
            journal_commits,
            journal_checkpoints,
            open_fds: self.fds.lock().len(),
            resident_pages: self.pages.resident(),
        }
    }

    /// Number of lock stripes in the page cache (1 in the serial
    /// baseline configuration).
    #[must_use]
    pub fn cache_shard_count(&self) -> usize {
        self.pages.shard_count()
    }

    /// Snapshot of the open-descriptor table (for the RAE recorder).
    #[must_use]
    pub fn fd_snapshot(&self) -> Vec<(Fd, InodeNo, OpenFlags, String)> {
        self.fds
            .lock()
            .entries()
            .into_iter()
            .map(|(fd, e)| (fd, e.ino, e.flags, e.path))
            .collect()
    }

    // ------------------------------------------------------------------
    // Locking
    // ------------------------------------------------------------------

    /// The stripe lock covering `ino`.
    fn stripe(&self, ino: InodeNo) -> &RwLock<()> {
        &self.ilocks[ino.0 as usize % ILOCK_STRIPES]
    }

    /// Exclusively lock the stripes covering a mutation's write set.
    /// Stripes are acquired in ascending index order after dedup, so
    /// concurrent mutations can never deadlock on each other.
    fn lock_stripes(&self, inos: &[InodeNo]) -> Vec<RwLockWriteGuard<'_, ()>> {
        let mut idx: Vec<usize> = inos.iter().map(|i| i.0 as usize % ILOCK_STRIPES).collect();
        idx.sort_unstable();
        idx.dedup();
        let t0 = self.telemetry.as_ref().and_then(|t| t.layer_clock());
        let guards = idx.into_iter().map(|i| self.ilocks[i].write()).collect();
        if let Some(t) = self.telemetry.as_ref() {
            t.layer_observed(rae_telemetry::SpanLayer::LockWait, t0);
        }
        guards
    }

    /// Take the transaction lock for a mutation: shared normally,
    /// exclusive in the `serial_writes` baseline.
    fn txn_shared(&self) -> TxnGuard<'_> {
        if self.serial_writes {
            TxnGuard::Exclusive(self.txn.write())
        } else {
            TxnGuard::Shared(self.txn.read())
        }
    }

    /// In `serial_reads` baseline mode, readers exclude all mutations
    /// by taking the transaction lock exclusively; otherwise readers
    /// take no transaction-level lock at all.
    fn read_excl(&self) -> Option<RwLockWriteGuard<'_, ()>> {
        if self.serial_reads {
            Some(self.txn.write())
        } else {
            None
        }
    }

    /// Run a read-only closure, retrying a bounded number of times on
    /// [`FsError::Corrupted`]: a reader racing an unlink can observe a
    /// half-removed file as transient corruption, and the retry sees
    /// the settled state (`NotFound`/`BadFd`). Persistent corruption
    /// still surfaces after the retries are spent.
    fn with_read_retries<T>(&self, f: impl Fn() -> FsResult<T>) -> FsResult<T> {
        let mut last = f();
        for _ in 1..READ_RETRIES {
            match last {
                Err(FsError::Corrupted { .. }) => last = f(),
                r => return r,
            }
        }
        last
    }

    // ------------------------------------------------------------------
    // Sequencing
    // ------------------------------------------------------------------

    /// An operation's sequence point: hand the outcome to the installed
    /// sequencer (if any) at the moment the mutation becomes observable
    /// to concurrent operations, while the op's locks are still held.
    fn sequence(&self, outcome: &OpOutcome) {
        let assigned = {
            let g = self.sequencer.read();
            g.as_ref().and_then(|s| s.sequenced(outcome))
        };
        if let Some(seq) = assigned {
            self.cur_seq.fetch_max(seq, Ordering::Relaxed);
        }
    }

    /// The logical-mtime clock tick.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    // ------------------------------------------------------------------
    // Fault hooks
    // ------------------------------------------------------------------

    fn act_static(action: FaultAction) -> FsResult<bool> {
        match action {
            FaultAction::FailDetected { bug_id } => Err(FsError::DetectedBug { bug_id }),
            FaultAction::Panic { bug_id } => {
                panic!("injected filesystem bug #{bug_id}: simulated kernel BUG()")
            }
            FaultAction::Warn { .. } => Ok(false),
            FaultAction::CorruptSilently { .. } => Ok(true),
            FaultAction::CorruptMetadata { .. } => Ok(false), // handled in hook()
        }
    }

    /// Consult the registry at a hook site. Returns `Ok(true)` when the
    /// operation should corrupt its payload silently.
    ///
    /// # Errors
    ///
    /// [`FsError::DetectedBug`] for detected-error effects.
    fn hook(&self, ctx: &OpContext<'_>) -> FsResult<bool> {
        match self.faults.check(ctx) {
            Some(FaultAction::CorruptMetadata { .. }) => {
                // the memory-scribbler class: a dirty metadata page is
                // silently damaged; validate-on-commit catches it at
                // the next persistence point
                let _ = self.pages.scribble_dirty_meta((
                    self.geo.inode_table_start,
                    self.geo.inode_table_start + self.geo.inode_table_blocks,
                ));
                Ok(false)
            }
            Some(action) => Self::act_static(action),
            None => Ok(false),
        }
    }

    /// Validate metadata images about to be committed: the superblock
    /// must decode, and every inode-table block must hold 16 decodable
    /// slots. Bitmap and directory/indirect images have no per-block
    /// self-description and are covered by the shadow's full checks.
    fn validate_commit_images(&self, images: &[(u64, Vec<u8>)]) -> FsResult<()> {
        let it_start = self.geo.inode_table_start;
        let it_end = it_start + self.geo.inode_table_blocks;
        for (bno, img) in images {
            if *bno == 0 {
                Superblock::decode(img)?;
            } else if (it_start..it_end).contains(bno) {
                for slot in 0..INODES_PER_BLOCK {
                    DiskInode::decode(&img[slot * INODE_SIZE..(slot + 1) * INODE_SIZE]).map_err(
                        |e| FsError::Corrupted {
                            detail: format!(
                                "validate-on-commit: inode table block {bno} slot {slot}: {e}"
                            ),
                        },
                    )?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Inode access
    // ------------------------------------------------------------------

    fn load_inode_opt(&self, ino: InodeNo) -> FsResult<Option<DiskInode>> {
        if let Some(i) = self.icache.get(ino) {
            return Ok(Some(i));
        }
        let (bno, off) = self.geo.inode_location(ino)?;
        let block = self.pages.read(bno, PageClass::Meta)?;
        let decoded = DiskInode::decode(&block[off..off + INODE_SIZE])?;
        if let Some(i) = decoded {
            self.icache.insert(ino, i);
        }
        Ok(decoded)
    }

    fn load_inode(&self, ino: InodeNo) -> FsResult<DiskInode> {
        self.load_inode_opt(ino)?.ok_or(FsError::Corrupted {
            detail: format!("{ino} referenced but not allocated"),
        })
    }

    /// Cache-quiet inode load for revalidation: consults the caches
    /// but never populates them (a revalidation probe must not plant
    /// state that the retry then trusts).
    fn load_inode_nofill(&self, ino: InodeNo) -> FsResult<Option<DiskInode>> {
        if let Some(i) = self.icache.get(ino) {
            return Ok(Some(i));
        }
        let (bno, off) = self.geo.inode_location(ino)?;
        let block = self.pages.read(bno, PageClass::Meta)?;
        DiskInode::decode(&block[off..off + INODE_SIZE])
    }

    fn store_inode(&self, ino: InodeNo, inode: &DiskInode) -> FsResult<()> {
        let (bno, off) = self.geo.inode_location(ino)?;
        self.pages
            .update(bno, off, &inode.encode(), PageClass::Meta)?;
        self.icache.insert(ino, *inode);
        Ok(())
    }

    fn clear_inode(&self, ino: InodeNo) -> FsResult<()> {
        let (bno, off) = self.geo.inode_location(ino)?;
        self.pages
            .update(bno, off, &[0u8; INODE_SIZE], PageClass::Meta)?;
        self.icache.remove(ino);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Block mapping
    // ------------------------------------------------------------------

    fn read_ptr(&self, bno: u64, slot: usize) -> FsResult<u64> {
        let img = self.pages.read(bno, PageClass::Meta)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&img[slot * 8..slot * 8 + 8]);
        Ok(u64::from_le_bytes(b))
    }

    fn write_ptr(&self, bno: u64, slot: usize, value: u64) -> FsResult<()> {
        self.pages
            .update(bno, slot * 8, &value.to_le_bytes(), PageClass::Meta)
    }

    /// The data block backing file-block `idx` (0 = hole).
    fn get_file_block(&self, inode: &DiskInode, idx: u64) -> FsResult<u64> {
        match locate_block(idx)? {
            BlockPtrLoc::Direct(s) => Ok(inode.direct[s]),
            BlockPtrLoc::Indirect { slot } => {
                if inode.indirect == 0 {
                    Ok(0)
                } else {
                    self.read_ptr(inode.indirect, slot)
                }
            }
            BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                if inode.dindirect == 0 {
                    return Ok(0);
                }
                let l1p = self.read_ptr(inode.dindirect, l1)?;
                if l1p == 0 {
                    Ok(0)
                } else {
                    self.read_ptr(l1p, l2)
                }
            }
        }
    }

    fn alloc_data_block(&self, class: PageClass) -> FsResult<u64> {
        let bno = self.alloc.lock().alloc_block(&self.pages)?;
        self.pages.write(bno, vec![0u8; BLOCK_SIZE], class)?;
        Ok(bno)
    }

    /// Get-or-allocate the data block backing file-block `idx`,
    /// updating the inode's pointers and block count in place. The
    /// caller must store the inode afterwards.
    fn ensure_file_block(&self, inode: &mut DiskInode, idx: u64) -> FsResult<u64> {
        match locate_block(idx)? {
            BlockPtrLoc::Direct(s) => {
                if inode.direct[s] == 0 {
                    inode.direct[s] = self.alloc_data_block(PageClass::Data)?;
                    inode.blocks += 1;
                }
                Ok(inode.direct[s])
            }
            BlockPtrLoc::Indirect { slot } => {
                if inode.indirect == 0 {
                    inode.indirect = self.alloc_data_block(PageClass::Meta)?;
                    inode.blocks += 1;
                }
                let mut ptr = self.read_ptr(inode.indirect, slot)?;
                if ptr == 0 {
                    ptr = self.alloc_data_block(PageClass::Data)?;
                    inode.blocks += 1;
                    self.write_ptr(inode.indirect, slot, ptr)?;
                }
                Ok(ptr)
            }
            BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                if inode.dindirect == 0 {
                    inode.dindirect = self.alloc_data_block(PageClass::Meta)?;
                    inode.blocks += 1;
                }
                let mut l1p = self.read_ptr(inode.dindirect, l1)?;
                if l1p == 0 {
                    l1p = self.alloc_data_block(PageClass::Meta)?;
                    inode.blocks += 1;
                    self.write_ptr(inode.dindirect, l1, l1p)?;
                }
                let mut ptr = self.read_ptr(l1p, l2)?;
                if ptr == 0 {
                    ptr = self.alloc_data_block(PageClass::Data)?;
                    inode.blocks += 1;
                    self.write_ptr(l1p, l2, ptr)?;
                }
                Ok(ptr)
            }
        }
    }

    /// Blocks (data + new indirect blocks) a write to file-blocks
    /// `[start_idx, end_idx)` would have to allocate. Used for the
    /// all-or-nothing `NoSpace` reservation.
    fn count_missing_blocks(
        &self,
        inode: &DiskInode,
        start_idx: u64,
        end_idx: u64,
    ) -> FsResult<u64> {
        let mut need = 0u64;
        let mut need_indirect = inode.indirect == 0;
        let mut need_dindirect = inode.dindirect == 0;
        let mut l1_seen: HashMap<usize, bool> = HashMap::new();
        for idx in start_idx..end_idx {
            match locate_block(idx)? {
                BlockPtrLoc::Direct(s) => {
                    if inode.direct[s] == 0 {
                        need += 1;
                    }
                }
                BlockPtrLoc::Indirect { slot } => {
                    if need_indirect {
                        need += 1;
                        need_indirect = false;
                    }
                    if inode.indirect == 0 || self.read_ptr(inode.indirect, slot)? == 0 {
                        need += 1;
                    }
                }
                BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                    if need_dindirect {
                        need += 1;
                        need_dindirect = false;
                    }
                    let l1_missing = if inode.dindirect == 0 {
                        true
                    } else {
                        match l1_seen.get(&l1) {
                            Some(&m) => m,
                            None => {
                                let m = self.read_ptr(inode.dindirect, l1)? == 0;
                                l1_seen.insert(l1, m);
                                m
                            }
                        }
                    };
                    if l1_missing {
                        if !l1_seen.get(&l1).copied().unwrap_or(false) || inode.dindirect == 0 {
                            // count the L1 block itself once
                            if l1_seen.insert(l1, true) != Some(true) {
                                need += 1;
                            }
                        }
                        need += 1; // the data block
                    } else if self.read_ptr(self.read_ptr(inode.dindirect, l1)?, l2)? == 0 {
                        need += 1;
                    }
                }
            }
        }
        Ok(need)
    }

    // ------------------------------------------------------------------
    // Reservations and deferred frees
    // ------------------------------------------------------------------

    /// Reserve `n` blocks for the running mutation; the reservation is
    /// returned to the allocator when the guard drops.
    ///
    /// All-or-nothing space prechecks are reservations under sharding:
    /// a raw free-count check would let two concurrent mutations both
    /// pass and then collide mid-op in `alloc_block`, failing *after*
    /// partial mutation.
    fn reserve(&self, n: u64) -> FsResult<ResGuard<'_>> {
        if n > 0 {
            self.alloc.lock().reserve_blocks(n)?;
        }
        Ok(ResGuard { fs: self, n })
    }

    /// Reserve the worst-case block need of inserting a `name_len`
    /// entry into `dir` (zero when an existing block has room).
    fn reserve_dir_insert(&self, dir: &DiskInode, name_len: usize) -> FsResult<ResGuard<'_>> {
        for bno in self.dir_blocks(dir)? {
            let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if db.fits(name_len) {
                return Ok(ResGuard { fs: self, n: 0 });
            }
        }
        let nb = dir.size / BLOCK_SIZE as u64;
        let need = self.count_missing_blocks(dir, nb, nb + 1)?;
        self.reserve(need)
    }

    /// Apply an operation's deferred frees, in hazard order: drop the
    /// journal's pending images first (a freed block can be
    /// reallocated immediately — possibly as a data block, which
    /// bypasses the journal in ordered mode — and a stale pending
    /// image would overwrite the new contents at the next checkpoint),
    /// then discard the freed blocks' cached metadata pages (a
    /// still-dirty page would be re-journaled by the *next* commit,
    /// recreating the same hazard), then return everything to the
    /// allocator.
    fn apply_frees(&self, frees: &Frees) -> FsResult<()> {
        if frees.is_empty() {
            return Ok(());
        }
        {
            let mut jm = self.jmgr.lock();
            for &b in &frees.blocks {
                jm.drop_pending(b);
            }
        }
        for &b in &frees.blocks {
            self.pages.discard_meta(b);
        }
        let mut alloc = self.alloc.lock();
        for &b in &frees.blocks {
            alloc.free_block(&self.pages, b)?;
        }
        for &i in &frees.inos {
            alloc.free_ino(&self.pages, i)?;
        }
        Ok(())
    }

    /// Free blocks past `new_size` into `frees`, zero the partial
    /// tail, update size and block count. The caller stores the inode
    /// and applies the frees.
    fn truncate_core(
        &self,
        inode: &mut DiskInode,
        new_size: u64,
        frees: &mut Frees,
    ) -> FsResult<()> {
        let old_nb = inode.size.div_ceil(BLOCK_SIZE as u64);
        let new_nb = new_size.div_ceil(BLOCK_SIZE as u64);

        for idx in new_nb..old_nb {
            match locate_block(idx)? {
                BlockPtrLoc::Direct(s) => {
                    if inode.direct[s] != 0 {
                        frees.blocks.push(inode.direct[s]);
                        inode.direct[s] = 0;
                        inode.blocks -= 1;
                    }
                }
                BlockPtrLoc::Indirect { slot } => {
                    if inode.indirect != 0 {
                        let ptr = self.read_ptr(inode.indirect, slot)?;
                        if ptr != 0 {
                            frees.blocks.push(ptr);
                            self.write_ptr(inode.indirect, slot, 0)?;
                            inode.blocks -= 1;
                        }
                    }
                }
                BlockPtrLoc::DoubleIndirect { l1, l2 } => {
                    if inode.dindirect != 0 {
                        let l1p = self.read_ptr(inode.dindirect, l1)?;
                        if l1p != 0 {
                            let ptr = self.read_ptr(l1p, l2)?;
                            if ptr != 0 {
                                frees.blocks.push(ptr);
                                self.write_ptr(l1p, l2, 0)?;
                                inode.blocks -= 1;
                            }
                        }
                    }
                }
            }
        }

        // free indirect structures that became entirely unused
        if new_nb <= 12 && inode.indirect != 0 {
            frees.blocks.push(inode.indirect);
            inode.indirect = 0;
            inode.blocks -= 1;
        }
        if inode.dindirect != 0 {
            let covered = 12 + PTRS_PER_BLOCK as u64;
            if new_nb <= covered {
                // every L1 chain is gone
                for l1 in 0..PTRS_PER_BLOCK {
                    let l1p = self.read_ptr(inode.dindirect, l1)?;
                    if l1p != 0 {
                        frees.blocks.push(l1p);
                        self.write_ptr(inode.dindirect, l1, 0)?;
                        inode.blocks -= 1;
                    }
                }
                frees.blocks.push(inode.dindirect);
                inode.dindirect = 0;
                inode.blocks -= 1;
            } else {
                // free fully-vacated L1 blocks
                let first_live_l1 =
                    ((new_nb - covered).saturating_sub(1) / PTRS_PER_BLOCK as u64 + 1) as usize;
                for l1 in first_live_l1..PTRS_PER_BLOCK {
                    let l1p = self.read_ptr(inode.dindirect, l1)?;
                    if l1p != 0 {
                        frees.blocks.push(l1p);
                        self.write_ptr(inode.dindirect, l1, 0)?;
                        inode.blocks -= 1;
                    }
                }
            }
        }

        // zero the partial tail so a later extension reads zeroes
        if !new_size.is_multiple_of(BLOCK_SIZE as u64) && new_size < inode.size {
            let tail_idx = new_size / BLOCK_SIZE as u64;
            let bno = self.get_file_block(inode, tail_idx)?;
            if bno != 0 {
                let from = (new_size % BLOCK_SIZE as u64) as usize;
                let zeros = vec![0u8; BLOCK_SIZE - from];
                self.pages.update(bno, from, &zeros, PageClass::Data)?;
            }
        }
        inode.size = new_size;
        Ok(())
    }

    /// Free every block of a file/symlink inode and the inode itself
    /// (into `frees`; the entry must already be unpublished).
    fn destroy_inode(
        &self,
        ino: InodeNo,
        inode: &mut DiskInode,
        frees: &mut Frees,
    ) -> FsResult<()> {
        self.truncate_core(inode, 0, frees)?;
        frees.inos.push(ino);
        self.clear_inode(ino)
    }

    // ------------------------------------------------------------------
    // Directories
    // ------------------------------------------------------------------

    /// Allocated block numbers of a directory, in file order.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] on holes or a misshapen size (directories
    /// are always fully allocated, block-aligned files).
    fn dir_blocks(&self, inode: &DiskInode) -> FsResult<Vec<u64>> {
        if !inode.size.is_multiple_of(BLOCK_SIZE as u64) {
            return Err(FsError::Corrupted {
                detail: "directory size not block-aligned".to_string(),
            });
        }
        let nb = inode.size / BLOCK_SIZE as u64;
        let mut out = Vec::with_capacity(nb as usize);
        for idx in 0..nb {
            let bno = self.get_file_block(inode, idx)?;
            if bno == 0 {
                return Err(FsError::Corrupted {
                    detail: "hole inside a directory".to_string(),
                });
            }
            out.push(bno);
        }
        Ok(out)
    }

    fn dir_lookup(&self, dir_ino: InodeNo, name: &str) -> FsResult<Option<InodeNo>> {
        if let Some(ino) = self.dcache.lookup(dir_ino, name) {
            return Ok(Some(ino));
        }
        let dir = self.load_inode(dir_ino)?;
        for bno in self.dir_blocks(&dir)? {
            let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if let Some(rec) = db.find(name) {
                self.dcache.insert(dir_ino, name, rec.ino);
                return Ok(Some(rec.ino));
            }
        }
        Ok(None)
    }

    /// Cache-quiet directory lookup for revalidation (no cache fills).
    fn lookup_nofill(&self, dir_ino: InodeNo, name: &str) -> FsResult<Option<InodeNo>> {
        if let Some(ino) = self.dcache.lookup(dir_ino, name) {
            return Ok(Some(ino));
        }
        let dir = self.load_inode_nofill(dir_ino)?.ok_or(FsError::Corrupted {
            detail: format!("{dir_ino} referenced but not allocated"),
        })?;
        if dir.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        for bno in self.dir_blocks(&dir)? {
            let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if let Some(rec) = db.find(name) {
                return Ok(Some(rec.ino));
            }
        }
        Ok(None)
    }

    /// Insert an entry; the caller has checked for duplicates and holds
    /// a reservation covering a possible grow. Stores the directory
    /// inode if it grows.
    fn dir_insert(
        &self,
        dir_ino: InodeNo,
        name: &str,
        ino: InodeNo,
        ftype: FileType,
    ) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Create, Site::DirModify).with_path(name);
        let _ = self.hook(&ctx)?;

        let mut dir = self.load_inode(dir_ino)?;
        for bno in self.dir_blocks(&dir)? {
            let mut db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if db.try_insert(name, ino, ftype)? {
                self.pages.write(bno, db.into_bytes(), PageClass::Meta)?;
                self.dcache.insert(dir_ino, name, ino);
                return Ok(());
            }
        }
        // grow the directory by one block
        let nb = dir.size / BLOCK_SIZE as u64;
        let bno = self.ensure_file_block(&mut dir, nb)?;
        let mut db = DirBlock::empty();
        let inserted = db.try_insert(name, ino, ftype)?;
        debug_assert!(inserted);
        self.pages.write(bno, db.into_bytes(), PageClass::Meta)?;
        dir.size += BLOCK_SIZE as u64;
        let now = self.tick();
        dir.mtime = now;
        self.store_inode(dir_ino, &dir)?;
        self.dcache.insert(dir_ino, name, ino);
        Ok(())
    }

    /// Remove an entry; `Ok(true)` if found. Shrinks trailing empty
    /// blocks (freed into `frees`).
    fn dir_remove(&self, dir_ino: InodeNo, name: &str, frees: &mut Frees) -> FsResult<bool> {
        let ctx = OpContext::new(OpKind::Unlink, Site::DirModify).with_path(name);
        let _ = self.hook(&ctx)?;

        let mut dir = self.load_inode(dir_ino)?;
        let blocks = self.dir_blocks(&dir)?;
        let mut found = false;
        for &bno in &blocks {
            let mut db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            if db.remove(name) {
                self.pages.write(bno, db.into_bytes(), PageClass::Meta)?;
                found = true;
                break;
            }
        }
        if !found {
            return Ok(false);
        }
        self.dcache.invalidate(dir_ino, name);
        // shrink trailing empty blocks
        let mut nb = dir.size / BLOCK_SIZE as u64;
        while nb > 0 {
            let last = self.get_file_block(&dir, nb - 1)?;
            if last == 0 {
                break;
            }
            let db = DirBlock::from_bytes(self.pages.read(last, PageClass::Meta)?)?;
            if !db.is_empty() {
                break;
            }
            self.truncate_core(&mut dir, (nb - 1) * BLOCK_SIZE as u64, frees)?;
            nb -= 1;
        }
        let now = self.tick();
        dir.mtime = now;
        self.store_inode(dir_ino, &dir)?;
        Ok(true)
    }

    fn dir_entry_count(&self, inode: &DiskInode) -> FsResult<usize> {
        let mut n = 0;
        for bno in self.dir_blocks(inode)? {
            let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
            n += db.len();
        }
        Ok(n)
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    /// Resolve a path, taking each directory's stripe shared for the
    /// single step that reads it (one stripe at a time — never two, so
    /// walks cannot deadlock with write-set holders).
    fn resolve_locked(&self, comps: &[&str], fire_hook: bool) -> FsResult<InodeNo> {
        if fire_hook && !comps.is_empty() {
            let joined = comps.join("/");
            let ctx = OpContext::new(OpKind::Stat, Site::PathLookup).with_path(&joined);
            let _ = self.hook(&ctx)?;
        }
        let mut cur = ROOT_INO;
        for comp in comps {
            let _g = self.stripe(cur).read();
            let inode = self.load_inode(cur)?;
            if inode.ftype != FileType::Directory {
                return Err(FsError::NotDir);
            }
            match self.dir_lookup(cur, comp)? {
                Some(next) => cur = next,
                None => return Err(FsError::NotFound),
            }
        }
        Ok(cur)
    }

    /// Resolve a path that must be a directory (the parent side of a
    /// mutation).
    fn resolve_dir(&self, comps: &[&str], fire_hook: bool) -> FsResult<InodeNo> {
        let ino = self.resolve_locked(comps, fire_hook)?;
        let _g = self.stripe(ino).read();
        let inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        Ok(ino)
    }

    /// Lock-free, cache-quiet resolution used only to revalidate an
    /// optimistic walk after the write-set stripes are held.
    fn resolve_quiet(&self, comps: &[&str]) -> FsResult<InodeNo> {
        let mut cur = ROOT_INO;
        for comp in comps {
            cur = self.lookup_nofill(cur, comp)?.ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    /// Revalidate that `comps` still resolves to `parent` now that the
    /// op's stripes are held. The rename fence (held shared by every
    /// non-rename op) guarantees no cross-directory move can interleave
    /// with the probe, so a stable mismatch means a genuine concurrent
    /// create/unlink — retry from the top.
    fn revalidate_parent(&self, comps: &[&str], parent: InodeNo) -> FsResult<Reval> {
        match self.resolve_quiet(comps) {
            Ok(ino) if ino == parent => Ok(Reval::Ok),
            Ok(_) => Ok(Reval::Retry),
            Err(FsError::NotFound | FsError::NotDir | FsError::Corrupted { .. }) => {
                Ok(Reval::Retry)
            }
            Err(e) => Err(e),
        }
    }

    /// Revalidate that `parent` still maps `name` to `child`. Holding
    /// `child`'s stripe exclusively makes the answer stable: removing
    /// that entry (unlink/rmdir) requires the same stripe, and renames
    /// are fenced out entirely.
    fn revalidate_entry(&self, parent: InodeNo, name: &str, child: InodeNo) -> FsResult<Reval> {
        match self.lookup_nofill(parent, name) {
            Ok(Some(ino)) if ino == child => Ok(Reval::Ok),
            Ok(_) => Ok(Reval::Retry),
            Err(FsError::NotDir | FsError::Corrupted { .. }) => Ok(Reval::Retry),
            Err(e) => Err(e),
        }
    }

    /// Whether `target` equals `anc` or lies anywhere below it. Only
    /// called under the exclusive rename fence, so the subtree cannot
    /// change mid-walk.
    fn is_self_or_descendant(&self, anc: InodeNo, target: InodeNo) -> FsResult<bool> {
        if anc == target {
            return Ok(true);
        }
        let mut stack = vec![anc];
        while let Some(cur) = stack.pop() {
            let inode = self.load_inode(cur)?;
            if inode.ftype != FileType::Directory {
                continue;
            }
            for bno in self.dir_blocks(&inode)? {
                let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
                for rec in db.records() {
                    if rec.ino == target {
                        return Ok(true);
                    }
                    if rec.ftype == FileType::Directory {
                        stack.push(rec.ino);
                    }
                }
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Journal group commit
    // ------------------------------------------------------------------

    /// Commit the running transaction, batching with concurrent
    /// committers: the first caller becomes the *leader*, later callers
    /// *join* its batch and park until the leader publishes the shared
    /// result. One journal write persists every batched caller's
    /// metadata at once.
    fn commit_coordinated(&self) -> FsResult<()> {
        let t0 = self.telemetry.as_ref().and_then(|t| t.layer_clock());
        let r = self.commit_coordinated_inner();
        if let Some(t) = self.telemetry.as_ref() {
            t.layer_observed(rae_telemetry::SpanLayer::CommitStall, t0);
        }
        r
    }

    fn commit_coordinated_inner(&self) -> FsResult<()> {
        let my_gen;
        {
            let mut st = self.commit_state.lock();
            loop {
                if st.leader_running && st.batch_open {
                    // join the forming batch and wait for its result
                    let gen = st.gen_started;
                    st.joined += 1;
                    while st.gen_completed < gen {
                        self.commit_cv.wait(&mut st);
                    }
                    let res = st
                        .results
                        .iter()
                        .find(|(g, _)| *g == gen)
                        .map(|(_, r)| r.clone());
                    debug_assert!(res.is_some(), "group-commit result expired early");
                    return res.unwrap_or(Ok(()));
                }
                if st.leader_running {
                    // batch already sealed: wait for the next opening
                    self.commit_cv.wait(&mut st);
                    continue;
                }
                st.leader_running = true;
                // the serial_writes baseline commits one caller at a
                // time: the batch never opens, so concurrent fsyncs
                // serialize exactly as before group commit existed
                st.batch_open = !self.serial_writes;
                st.gen_started += 1;
                st.joined = 1;
                my_gen = st.gen_started;
                break;
            }
        }
        // Leader. Optionally linger to let more committers join, then
        // drain in-flight mutations by taking the transaction lock
        // exclusively (joiners keep accumulating while we wait).
        if self.leader_wait_us > 0 && !self.serial_writes {
            std::thread::sleep(std::time::Duration::from_micros(self.leader_wait_us));
        }
        let txn = self.txn.write();
        let batch = {
            let mut st = self.commit_state.lock();
            st.batch_open = false;
            st.joined
        };
        // The commit itself can panic (injected `Panic` faults at the
        // JournalCommit site). Followers must still be woken with a
        // result, or they would park forever.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _txn = txn;
            self.commit_with_txn_held()
        }));
        if let Some(t) = self.telemetry.as_ref() {
            t.record_commit_batch(batch);
        }
        let publish = match &result {
            Ok(r) => r.clone(),
            Err(_) => Err(FsError::Internal {
                detail: "journal commit leader panicked".to_string(),
            }),
        };
        {
            let mut st = self.commit_state.lock();
            st.gen_completed = my_gen;
            st.leader_running = false;
            st.results.push_back((my_gen, publish));
            while st.results.len() > RESULTS_KEPT {
                st.results.pop_front();
            }
        }
        self.commit_cv.notify_all();
        match result {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// The commit body. The caller holds the transaction lock
    /// exclusively, so no mutation is mid-flight: the dirty metadata
    /// set is a consistent cut and `cur_seq` is a true high-water mark.
    fn commit_with_txn_held(&self) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Sync, Site::JournalCommit);
        let _ = self.hook(&ctx)?;

        // ordered mode: file data reaches the disk before the metadata
        // that references it
        self.pages.flush_data()?;
        let mut images = self.pages.take_dirty_meta();
        if images.is_empty() {
            return Ok(());
        }
        let (free_inodes, free_blocks) = {
            let alloc = self.alloc.lock();
            (alloc.free_inodes, alloc.free_blocks)
        };
        let sb = Superblock {
            geometry: self.geo,
            free_inodes,
            free_blocks,
            mount_state: MountState::Dirty,
            mount_count: self.mount_count,
        };
        images.push((0, sb.encode()));
        if self.validate_on_commit {
            self.validate_commit_images(&images)?;
        }
        self.jmgr.lock().commit(self.dev.as_ref(), images)?;
        self.persisted_seq
            .fetch_max(self.cur_seq.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    /// Commit if the running transaction has grown past the bound.
    /// Callers must have dropped every op-level lock first (the leader
    /// path takes the transaction lock exclusively).
    fn maybe_autocommit(&self) -> FsResult<()> {
        if self.pages.dirty_meta_count() >= self.max_dirty_meta {
            self.commit_coordinated()?;
        }
        Ok(())
    }
}

impl BaseFs {
    /// `open` returning the allocated descriptor, the inode it refers
    /// to, and whether the file was created — the outcome the RAE
    /// recorder logs (the shadow later validates these choices).
    ///
    /// # Errors
    ///
    /// As [`FileSystem::open`].
    pub fn open_ex(&self, path: &str, flags: OpenFlags) -> FsResult<(Fd, InodeNo, bool)> {
        let ctx = OpContext::new(OpKind::Open, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        if !flags.valid() {
            self.counters.record_error(OpKind::Open);
            return Err(FsError::InvalidArgument);
        }
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                let (parent_comps, name) = split_parent(path)?;
                for _ in 0..MUT_RETRIES {
                    let parent = self.resolve_dir(&parent_comps, true)?;
                    let existing = {
                        let _g = self.stripe(parent).read();
                        self.dir_lookup(parent, name)?
                    };
                    if let Some(ino) = existing {
                        let _w = self.lock_stripes(&[ino]);
                        match self.revalidate_entry(parent, name, ino)? {
                            Reval::Ok => {}
                            Reval::Retry => continue,
                        }
                        return self.open_existing_body(path, flags, ino);
                    }
                    let _w = self.lock_stripes(&[parent]);
                    match self.revalidate_parent(&parent_comps, parent)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    if self.dir_lookup(parent, name)?.is_some() {
                        continue; // created meanwhile — retake as existing
                    }
                    return self.open_create_body(path, flags, parent, name);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(_) => self.counters.record(OpKind::Open),
            Err(_) => self.counters.record_error(OpKind::Open),
        }
        self.maybe_autocommit()?;
        result
    }

    /// Open of an existing file, under `W{ino}`.
    fn open_existing_body(
        &self,
        path: &str,
        flags: OpenFlags,
        ino: InodeNo,
    ) -> FsResult<(Fd, InodeNo, bool)> {
        if flags.creates() && flags.contains(OpenFlags::EXCL) {
            return Err(FsError::Exists);
        }
        let mut inode = self.load_inode(ino)?;
        match inode.ftype {
            FileType::Directory => return Err(FsError::IsDir),
            FileType::Symlink => return Err(FsError::InvalidArgument),
            FileType::Regular => {}
        }
        let mut frees = Frees::default();
        if flags.contains(OpenFlags::TRUNC) && flags.writable() {
            self.truncate_core(&mut inode, 0, &mut frees)?;
            let now = self.tick();
            inode.mtime = now;
            inode.ctime = now;
            self.store_inode(ino, &inode)?;
        }
        // sequence inside the descriptor-table hold: the table mutation
        // order must equal log order for the shadow's lowest-free fd
        // allocation to reproduce the same numbering
        let r = {
            let mut fds = self.fds.lock();
            let r = fds.alloc(ino, flags, path);
            if let Ok(fd) = r {
                self.sequence(&OpOutcome::Opened {
                    fd,
                    ino,
                    created: false,
                });
            }
            r
        };
        self.apply_frees(&frees)?;
        r.map(|fd| (fd, ino, false))
    }

    /// Open-with-create of a missing file, under `W{parent}`. The new
    /// inode is sequenced *before* it is published in the directory, so
    /// no concurrent operation can observe (and sequence after) an
    /// entry that the log has not assigned yet.
    fn open_create_body(
        &self,
        path: &str,
        flags: OpenFlags,
        parent: InodeNo,
        name: &str,
    ) -> FsResult<(Fd, InodeNo, bool)> {
        if !flags.creates() {
            return Err(FsError::NotFound);
        }
        let ctx = OpContext::new(OpKind::Create, Site::Alloc).with_path(path);
        let _ = self.hook(&ctx)?;
        let dir = self.load_inode(parent)?;
        let _res = self.reserve_dir_insert(&dir, name.len())?;
        let ino = {
            let mut alloc = self.alloc.lock();
            if alloc.free_inodes == 0 {
                return Err(FsError::NoInodes);
            }
            alloc.alloc_ino(&self.pages)?
        };
        let now = self.tick();
        let inode = DiskInode::new(FileType::Regular, now);
        self.store_inode(ino, &inode)?;
        let fd = {
            let mut fds = self.fds.lock();
            match fds.alloc(ino, flags, path) {
                Ok(fd) => {
                    self.sequence(&OpOutcome::Opened {
                        fd,
                        ino,
                        created: true,
                    });
                    fd
                }
                Err(e) => {
                    drop(fds);
                    // roll back the unpublished inode on fd exhaustion
                    let mut frees = Frees::default();
                    let mut dead = inode;
                    self.destroy_inode(ino, &mut dead, &mut frees)?;
                    self.apply_frees(&frees)?;
                    return Err(e);
                }
            }
        };
        self.dir_insert(parent, name, ino, FileType::Regular)?;
        let mut pdir = self.load_inode(parent)?;
        pdir.mtime = now;
        self.store_inode(parent, &pdir)?;
        Ok((fd, ino, true))
    }

    /// Restore a descriptor by inode (the recovery path's `RestoreFd`;
    /// also exercised by tests). The inode must be an allocated regular
    /// file; the descriptor number must be free.
    ///
    /// # Errors
    ///
    /// [`FsError::Corrupted`] for a bad inode; [`FsError::Internal`]
    /// for a duplicate descriptor.
    pub fn restore_fd(&self, fd: Fd, ino: InodeNo, flags: OpenFlags, path: &str) -> FsResult<()> {
        let _fence = self.fence.read();
        let _txn = self.txn_shared();
        let _w = self.lock_stripes(&[ino]);
        let inode = self.load_inode(ino)?;
        if inode.ftype != FileType::Regular {
            return Err(FsError::Corrupted {
                detail: format!("descriptor restore aimed at non-file {ino}"),
            });
        }
        let mut fds = self.fds.lock();
        fds.install(fd, ino, flags, path)?;
        self.sequence(&OpOutcome::Opened {
            fd,
            ino,
            created: false,
        });
        Ok(())
    }

    /// The write body, under `W{entry.ino}`.
    fn write_body(&self, entry: &FdEntry, offset: u64, data: &[u8]) -> FsResult<usize> {
        let ctx = OpContext::new(OpKind::Write, Site::Write)
            .with_path(&entry.path)
            .with_io(offset, data.len());
        let corrupt = self.hook(&ctx)?;
        let mut payload; // only materialized when corrupting
        let data: &[u8] = if corrupt {
            payload = data.to_vec();
            payload[0] ^= 0x01; // the silent wrong result
            &payload
        } else {
            data
        };

        let mut inode = self.load_inode(entry.ino)?;
        let at = if entry.flags.contains(OpenFlags::APPEND) {
            inode.size
        } else {
            offset
        };
        let end = at
            .checked_add(data.len() as u64)
            .ok_or(FsError::FileTooBig)?;
        if end > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        // all-or-nothing space reservation
        let start_idx = at / BLOCK_SIZE as u64;
        let end_idx = end.div_ceil(BLOCK_SIZE as u64);
        let need = self.count_missing_blocks(&inode, start_idx, end_idx)?;
        let _res = self.reserve(need)?;

        let mut pos = at;
        let mut src = 0usize;
        while pos < end {
            let idx = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let take = ((BLOCK_SIZE - in_blk) as u64).min(end - pos) as usize;
            let bno = self.ensure_file_block(&mut inode, idx)?;
            if take == BLOCK_SIZE {
                self.pages
                    .write(bno, data[src..src + take].to_vec(), PageClass::Data)?;
            } else {
                self.pages
                    .update(bno, in_blk, &data[src..src + take], PageClass::Data)?;
            }
            pos += take as u64;
            src += take;
        }
        if end > inode.size {
            inode.size = end;
        }
        let now = self.tick();
        inode.mtime = now;
        inode.ctime = now;
        self.store_inode(entry.ino, &inode)?;
        self.sequence(&OpOutcome::Written { n: data.len() });
        Ok(data.len())
    }

    /// The fd-truncate body, under `W{entry.ino}`.
    fn truncate_body(&self, entry: &FdEntry, size: u64) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Truncate, Site::Truncate).with_path(&entry.path);
        let _ = self.hook(&ctx)?;
        if size > MAX_FILE_SIZE {
            return Err(FsError::FileTooBig);
        }
        let mut frees = Frees::default();
        let mut inode = self.load_inode(entry.ino)?;
        if size < inode.size {
            self.truncate_core(&mut inode, size, &mut frees)?;
        } else {
            inode.size = size; // extension is sparse
        }
        let now = self.tick();
        inode.mtime = now;
        inode.ctime = now;
        self.store_inode(entry.ino, &inode)?;
        self.sequence(&OpOutcome::Unit);
        self.apply_frees(&frees)
    }

    /// The setattr body, under `W{ino}`.
    fn setattr_body(&self, ino: InodeNo, attr: &SetAttr) -> FsResult<()> {
        let mut frees = Frees::default();
        let mut inode = self.load_inode(ino)?;
        if let Some(size) = attr.size {
            match inode.ftype {
                FileType::Directory => return Err(FsError::IsDir),
                FileType::Symlink => return Err(FsError::InvalidArgument),
                FileType::Regular => {}
            }
            if size > MAX_FILE_SIZE {
                return Err(FsError::FileTooBig);
            }
            if size < inode.size {
                self.truncate_core(&mut inode, size, &mut frees)?;
            } else {
                inode.size = size;
            }
            let now = self.tick();
            inode.mtime = now;
            inode.ctime = now;
        }
        if let Some(mtime) = attr.mtime {
            inode.mtime = mtime;
        }
        self.store_inode(ino, &inode)?;
        self.sequence(&OpOutcome::Unit);
        self.apply_frees(&frees)
    }

    /// The file-read body, under `R{entry.ino}`.
    fn read_body(&self, entry: &FdEntry, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let inode = self.load_inode(entry.ino)?;
        let start = offset.min(inode.size);
        let end = offset.saturating_add(len as u64).min(inode.size);
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut pos = start;
        while pos < end {
            let idx = pos / BLOCK_SIZE as u64;
            let in_blk = (pos % BLOCK_SIZE as u64) as usize;
            let take = ((BLOCK_SIZE - in_blk) as u64).min(end - pos) as usize;
            let bno = self.get_file_block(&inode, idx)?;
            if bno == 0 {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let blk = self.pages.read(bno, PageClass::Data)?;
                out.extend_from_slice(&blk[in_blk..in_blk + take]);
            }
            pos += take as u64;
        }
        Ok(out)
    }

    /// The mkdir body, under `W{parent}` (duplicate check done).
    fn mkdir_body(&self, path: &str, parent: InodeNo, name: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Mkdir, Site::Alloc).with_path(path);
        let _ = self.hook(&ctx)?;
        let pdir = self.load_inode(parent)?;
        let _res = self.reserve_dir_insert(&pdir, name.len())?;
        let ino = {
            let mut alloc = self.alloc.lock();
            if alloc.free_inodes == 0 {
                return Err(FsError::NoInodes);
            }
            alloc.alloc_ino(&self.pages)?
        };
        let now = self.tick();
        let inode = DiskInode::new(FileType::Directory, now);
        self.store_inode(ino, &inode)?;
        // sequence before publication: a concurrent op inside the new
        // directory must not reach the log first
        self.sequence(&OpOutcome::Unit);
        self.dir_insert(parent, name, ino, FileType::Directory)?;
        let mut pdir = self.load_inode(parent)?;
        pdir.links += 1;
        pdir.mtime = now;
        self.store_inode(parent, &pdir)?;
        Ok(())
    }

    /// The rmdir body, under `W{parent, child}` (entry revalidated).
    fn rmdir_body(&self, parent: InodeNo, name: &str, child: InodeNo) -> FsResult<()> {
        let mut frees = Frees::default();
        let mut inode = self.load_inode(child)?;
        if inode.ftype != FileType::Directory {
            return Err(FsError::NotDir);
        }
        if self.dir_entry_count(&inode)? != 0 {
            return Err(FsError::NotEmpty);
        }
        self.dir_remove(parent, name, &mut frees)?;
        self.destroy_inode(child, &mut inode, &mut frees)?;
        let now = self.tick();
        let mut pdir = self.load_inode(parent)?;
        pdir.links -= 1;
        pdir.mtime = now;
        self.store_inode(parent, &pdir)?;
        self.sequence(&OpOutcome::Unit);
        self.apply_frees(&frees)
    }

    /// The unlink body, under `W{parent, child}` (entry revalidated).
    fn unlink_body(&self, parent: InodeNo, name: &str, child: InodeNo) -> FsResult<()> {
        let mut frees = Frees::default();
        let mut inode = self.load_inode(child)?;
        match inode.ftype {
            FileType::Directory => return Err(FsError::IsDir),
            FileType::Regular => {
                if self.fds.lock().has_open(child) {
                    return Err(FsError::Busy);
                }
            }
            FileType::Symlink => {}
        }
        self.dir_remove(parent, name, &mut frees)?;
        inode.links -= 1;
        if inode.links == 0 {
            self.destroy_inode(child, &mut inode, &mut frees)?;
        } else {
            let now = self.tick();
            inode.ctime = now;
            self.store_inode(child, &inode)?;
        }
        let now = self.tick();
        let mut pdir = self.load_inode(parent)?;
        pdir.mtime = now;
        self.store_inode(parent, &pdir)?;
        self.sequence(&OpOutcome::Unit);
        self.apply_frees(&frees)
    }

    /// The symlink body, under `W{parent}` (duplicate check done).
    fn symlink_body(&self, target: &str, parent: InodeNo, name: &str) -> FsResult<()> {
        let pdir = self.load_inode(parent)?;
        let _res = self.reserve_dir_insert(&pdir, name.len())?;
        {
            let alloc = self.alloc.lock();
            if alloc.free_inodes == 0 {
                return Err(FsError::NoInodes);
            }
        }
        let target_blocks = if target.is_empty() { 0 } else { 1 };
        let _res2 = self.reserve(target_blocks)?;
        let ino = {
            let mut alloc = self.alloc.lock();
            if alloc.free_inodes == 0 {
                return Err(FsError::NoInodes);
            }
            alloc.alloc_ino(&self.pages)?
        };
        let now = self.tick();
        let mut inode = DiskInode::new(FileType::Symlink, now);
        if !target.is_empty() {
            let bno = self.alloc_data_block(PageClass::Data)?;
            let mut blk = vec![0u8; BLOCK_SIZE];
            blk[..target.len()].copy_from_slice(target.as_bytes());
            self.pages.write(bno, blk, PageClass::Data)?;
            inode.direct[0] = bno;
            inode.blocks = 1;
        }
        inode.size = target.len() as u64;
        self.store_inode(ino, &inode)?;
        // sequence before publication (see mkdir_body)
        self.sequence(&OpOutcome::Unit);
        self.dir_insert(parent, name, ino, FileType::Symlink)?;
        let mut pdir = self.load_inode(parent)?;
        pdir.mtime = now;
        self.store_inode(parent, &pdir)?;
        Ok(())
    }

    /// The link body, under `W{new_parent, src}` (revalidated, duplicate
    /// check done). Sequencing at the end is safe here: any operation
    /// that could observe the new entry (open/unlink of the new name)
    /// needs `W{src}`, which this op holds.
    fn link_body(&self, src: InodeNo, new_parent: InodeNo, new_name: &str) -> FsResult<()> {
        let mut src_inode = self.load_inode(src)?;
        match src_inode.ftype {
            FileType::Directory => return Err(FsError::IsDir),
            FileType::Symlink => return Err(FsError::InvalidArgument),
            FileType::Regular => {}
        }
        if u32::from(src_inode.links) >= MAX_LINKS {
            return Err(FsError::TooManyLinks);
        }
        let np = self.load_inode(new_parent)?;
        let _res = self.reserve_dir_insert(&np, new_name.len())?;
        self.dir_insert(new_parent, new_name, src, FileType::Regular)?;
        let now = self.tick();
        src_inode.links += 1;
        src_inode.ctime = now;
        self.store_inode(src, &src_inode)?;
        let mut np = self.load_inode(new_parent)?;
        np.mtime = now;
        self.store_inode(new_parent, &np)?;
        self.sequence(&OpOutcome::Unit);
        Ok(())
    }

    /// The rename body, under the exclusive fence (no stripes, no
    /// revalidation: nothing else runs). Frees are applied eagerly —
    /// exactly where the pre-sharding code freed — because the only
    /// allocation point (`dir_insert` growing the target directory)
    /// must be able to reuse blocks vacated by the removals on a full
    /// disk.
    fn rename_body(&self, from: &str, to: &str) -> FsResult<()> {
        let (from_parent, from_name) = {
            let (comps, name) = split_parent(from)?;
            (self.resolve_dir(&comps, true)?, name)
        };
        let (to_parent, to_name) = {
            let (comps, name) = split_parent(to)?;
            (self.resolve_dir(&comps, true)?, name)
        };
        let src = self
            .dir_lookup(from_parent, from_name)?
            .ok_or(FsError::NotFound)?;
        if from_parent == to_parent && from_name == to_name {
            return Ok(());
        }
        let src_inode = self.load_inode(src)?;
        let src_is_dir = src_inode.ftype == FileType::Directory;
        if src_is_dir && self.is_self_or_descendant(src, to_parent)? {
            return Err(FsError::RenameLoop);
        }
        let mut frees = Frees::default();
        let mut res_guard = None;
        let existing_dst = self.dir_lookup(to_parent, to_name)?;
        if let Some(dst) = existing_dst {
            if dst == src {
                return Ok(()); // hard links to the same inode
            }
            let mut dst_inode = self.load_inode(dst)?;
            match (src_is_dir, dst_inode.ftype == FileType::Directory) {
                (true, true) => {
                    if self.dir_entry_count(&dst_inode)? != 0 {
                        return Err(FsError::NotEmpty);
                    }
                }
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
                (false, false) => {
                    if dst_inode.ftype == FileType::Regular && self.fds.lock().has_open(dst) {
                        return Err(FsError::Busy);
                    }
                }
            }
            // remove and destroy (or unlink) the replaced target
            self.dir_remove(to_parent, to_name, &mut frees)?;
            if dst_inode.ftype == FileType::Directory {
                self.destroy_inode(dst, &mut dst_inode, &mut frees)?;
                let mut tp = self.load_inode(to_parent)?;
                tp.links -= 1;
                self.store_inode(to_parent, &tp)?;
            } else {
                dst_inode.links -= 1;
                if dst_inode.links == 0 {
                    self.destroy_inode(dst, &mut dst_inode, &mut frees)?;
                } else {
                    self.store_inode(dst, &dst_inode)?;
                }
            }
        } else {
            // the insert below must not fail halfway: reserve space
            let tp = self.load_inode(to_parent)?;
            res_guard = Some(self.reserve_dir_insert(&tp, to_name.len())?);
        }

        self.dir_remove(from_parent, from_name, &mut frees)?;
        // make the vacated blocks reusable before the insert allocates
        self.apply_frees(&frees)?;
        self.dir_insert(to_parent, to_name, src, src_inode.ftype)?;
        drop(res_guard);
        let now = self.tick();
        if src_is_dir && from_parent != to_parent {
            let mut fp = self.load_inode(from_parent)?;
            fp.links -= 1;
            fp.mtime = now;
            self.store_inode(from_parent, &fp)?;
            let mut tp = self.load_inode(to_parent)?;
            tp.links += 1;
            tp.mtime = now;
            self.store_inode(to_parent, &tp)?;
        } else {
            let mut fp = self.load_inode(from_parent)?;
            fp.mtime = now;
            self.store_inode(from_parent, &fp)?;
            if from_parent != to_parent {
                let mut tp = self.load_inode(to_parent)?;
                tp.mtime = now;
                self.store_inode(to_parent, &tp)?;
            }
        }
        Ok(())
    }
}

impl FileSystem for BaseFs {
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        self.open_ex(path, flags).map(|(fd, _, _)| fd)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let r = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                for _ in 0..MUT_RETRIES {
                    // Take the file's stripe before sequencing so a close
                    // can never reach the log ahead of an in-flight write
                    // on the same inode; re-check the binding under the
                    // stripe (the fd could have been closed and reused).
                    let ino = self.fds.lock().get(fd)?.ino;
                    let _w = self.lock_stripes(&[ino]);
                    let mut fds = self.fds.lock();
                    match fds.get(fd) {
                        Ok(cur) if cur.ino == ino => {
                            fds.close(fd)?;
                            self.sequence(&OpOutcome::Unit);
                            return Ok(());
                        }
                        Ok(_) => continue, // rebound to another file: retry
                        Err(e) => return Err(e),
                    }
                }
                Err(FsError::Busy)
            })()
        };
        match &r {
            Ok(()) => self.counters.record(OpKind::Close),
            Err(_) => self.counters.record_error(OpKind::Close),
        }
        r
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let result = {
            let _fence = self.fence.read();
            let _excl = self.read_excl();
            self.with_read_retries(|| {
                let entry = self.fds.lock().get(fd)?;
                if !entry.flags.readable() {
                    return Err(FsError::BadAccessMode);
                }
                let _g = self.stripe(entry.ino).read();
                self.read_body(&entry, offset, len)
            })
        };
        match &result {
            Ok(data) => {
                self.counters.record(OpKind::Read);
                self.counters.add_bytes_read(data.len() as u64);
            }
            Err(_) => self.counters.record_error(OpKind::Read),
        }
        result
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                for _ in 0..MUT_RETRIES {
                    let entry = self.fds.lock().get(fd)?;
                    if !entry.flags.writable() {
                        return Err(FsError::BadAccessMode);
                    }
                    if data.is_empty() {
                        return Ok(0);
                    }
                    let _w = self.lock_stripes(&[entry.ino]);
                    // revalidate the fd→inode binding under the stripe
                    // (a concurrent close/open may have rebound it)
                    match self.fds.lock().get(fd) {
                        Ok(cur) if cur.ino == entry.ino => {}
                        Ok(_) => continue,
                        Err(e) => return Err(e),
                    }
                    return self.write_body(&entry, offset, data);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(n) => {
                self.counters.record(OpKind::Write);
                self.counters.add_bytes_written(*n as u64);
            }
            Err(_) => self.counters.record_error(OpKind::Write),
        }
        self.maybe_autocommit()?;
        result
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                for _ in 0..MUT_RETRIES {
                    let entry = self.fds.lock().get(fd)?;
                    if !entry.flags.writable() {
                        return Err(FsError::BadAccessMode);
                    }
                    let _w = self.lock_stripes(&[entry.ino]);
                    match self.fds.lock().get(fd) {
                        Ok(cur) if cur.ino == entry.ino => {}
                        Ok(_) => continue,
                        Err(e) => return Err(e),
                    }
                    return self.truncate_body(&entry, size);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::Truncate),
            Err(_) => self.counters.record_error(OpKind::Truncate),
        }
        self.maybe_autocommit()?;
        result
    }

    fn setattr(&self, path: &str, attr: SetAttr) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::SetAttr, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                let comps = split_path(path)?;
                if comps.is_empty() {
                    let _w = self.lock_stripes(&[ROOT_INO]);
                    return self.setattr_body(ROOT_INO, &attr);
                }
                let (pcomps, name) = (&comps[..comps.len() - 1], comps[comps.len() - 1]);
                for _ in 0..MUT_RETRIES {
                    let ino = self.resolve_locked(&comps, true)?;
                    let _w = self.lock_stripes(&[ino]);
                    let parent = match self.resolve_quiet(pcomps) {
                        Ok(p) => p,
                        Err(FsError::NotFound | FsError::NotDir | FsError::Corrupted { .. }) => {
                            continue
                        }
                        Err(e) => return Err(e),
                    };
                    match self.revalidate_entry(parent, name, ino)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    return self.setattr_body(ino, &attr);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::SetAttr),
            Err(_) => self.counters.record_error(OpKind::SetAttr),
        }
        self.maybe_autocommit()?;
        result
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let result = (|| {
            self.fds.lock().get(fd)?;
            self.commit_coordinated()
        })();
        match &result {
            Ok(()) => self.counters.record(OpKind::Fsync),
            Err(_) => self.counters.record_error(OpKind::Fsync),
        }
        result
    }

    fn sync(&self) -> FsResult<()> {
        let result = self.commit_coordinated();
        match &result {
            Ok(()) => self.counters.record(OpKind::Sync),
            Err(_) => self.counters.record_error(OpKind::Sync),
        }
        result
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Mkdir, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                let (parent_comps, name) = split_parent(path)?;
                for _ in 0..MUT_RETRIES {
                    let parent = self.resolve_dir(&parent_comps, true)?;
                    let _w = self.lock_stripes(&[parent]);
                    match self.revalidate_parent(&parent_comps, parent)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    if self.dir_lookup(parent, name)?.is_some() {
                        return Err(FsError::Exists);
                    }
                    return self.mkdir_body(path, parent, name);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::Mkdir),
            Err(_) => self.counters.record_error(OpKind::Mkdir),
        }
        self.maybe_autocommit()?;
        result
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Rmdir, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                let (parent_comps, name) = split_parent(path)?;
                for _ in 0..MUT_RETRIES {
                    let parent = self.resolve_dir(&parent_comps, true)?;
                    let child = {
                        let _g = self.stripe(parent).read();
                        self.dir_lookup(parent, name)?
                    }
                    .ok_or(FsError::NotFound)?;
                    let _w = self.lock_stripes(&[parent, child]);
                    match self.revalidate_entry(parent, name, child)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    return self.rmdir_body(parent, name, child);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::Rmdir),
            Err(_) => self.counters.record_error(OpKind::Rmdir),
        }
        self.maybe_autocommit()?;
        result
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Unlink, Site::ApiEntry).with_path(path);
        let _ = self.hook(&ctx)?;
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                let (parent_comps, name) = split_parent(path)?;
                for _ in 0..MUT_RETRIES {
                    let parent = self.resolve_dir(&parent_comps, true)?;
                    let child = {
                        let _g = self.stripe(parent).read();
                        self.dir_lookup(parent, name)?
                    }
                    .ok_or(FsError::NotFound)?;
                    let _w = self.lock_stripes(&[parent, child]);
                    match self.revalidate_entry(parent, name, child)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    return self.unlink_body(parent, name, child);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::Unlink),
            Err(_) => self.counters.record_error(OpKind::Unlink),
        }
        self.maybe_autocommit()?;
        result
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Rename, Site::Rename)
            .with_path(from)
            .with_path2(to);
        let _ = self.hook(&ctx)?;
        let result = {
            // rename is the one operation that takes the fence
            // exclusively: it runs with no concurrent ops at all, so
            // the body needs no stripes and no revalidation
            let _fence = self.fence.write();
            let _txn = self.txn_shared();
            let r = self.rename_body(from, to);
            if r.is_ok() {
                self.sequence(&OpOutcome::Unit);
            }
            r
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::Rename),
            Err(_) => self.counters.record_error(OpKind::Rename),
        }
        self.maybe_autocommit()?;
        result
    }

    fn link(&self, existing: &str, new: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Link, Site::ApiEntry)
            .with_path(existing)
            .with_path2(new);
        let _ = self.hook(&ctx)?;
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                let ecomps = split_path(existing)?;
                if ecomps.is_empty() {
                    return Err(FsError::IsDir);
                }
                let (esrc_parent, ename) = (&ecomps[..ecomps.len() - 1], ecomps[ecomps.len() - 1]);
                let (ncomps, nname) = split_parent(new)?;
                for _ in 0..MUT_RETRIES {
                    let src = self.resolve_locked(&ecomps, true)?;
                    // optimistic type/link-count checks, preserving the
                    // error precedence of the serial implementation
                    // (source checks come before the new-path resolve)
                    {
                        let _g = self.stripe(src).read();
                        let src_inode = self.load_inode(src)?;
                        match src_inode.ftype {
                            FileType::Directory => return Err(FsError::IsDir),
                            FileType::Symlink => return Err(FsError::InvalidArgument),
                            FileType::Regular => {}
                        }
                        if u32::from(src_inode.links) >= MAX_LINKS {
                            return Err(FsError::TooManyLinks);
                        }
                    }
                    let new_parent = self.resolve_dir(&ncomps, true)?;
                    let src_parent = match self.resolve_quiet(esrc_parent) {
                        Ok(p) => p,
                        Err(FsError::NotFound | FsError::NotDir | FsError::Corrupted { .. }) => {
                            continue
                        }
                        Err(e) => return Err(e),
                    };
                    let _w = self.lock_stripes(&[new_parent, src]);
                    match self.revalidate_entry(src_parent, ename, src)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    match self.revalidate_parent(&ncomps, new_parent)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    if self.dir_lookup(new_parent, nname)?.is_some() {
                        return Err(FsError::Exists);
                    }
                    return self.link_body(src, new_parent, nname);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::Link),
            Err(_) => self.counters.record_error(OpKind::Link),
        }
        self.maybe_autocommit()?;
        result
    }

    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<()> {
        let ctx = OpContext::new(OpKind::Symlink, Site::ApiEntry).with_path(linkpath);
        let _ = self.hook(&ctx)?;
        if target.len() > BLOCK_SIZE {
            return Err(FsError::NameTooLong);
        }
        let result = {
            let _fence = self.fence.read();
            let _txn = self.txn_shared();
            (|| {
                let (parent_comps, name) = split_parent(linkpath)?;
                for _ in 0..MUT_RETRIES {
                    let parent = self.resolve_dir(&parent_comps, true)?;
                    let _w = self.lock_stripes(&[parent]);
                    match self.revalidate_parent(&parent_comps, parent)? {
                        Reval::Ok => {}
                        Reval::Retry => continue,
                    }
                    if self.dir_lookup(parent, name)?.is_some() {
                        return Err(FsError::Exists);
                    }
                    return self.symlink_body(target, parent, name);
                }
                Err(FsError::Busy)
            })()
        };
        match &result {
            Ok(()) => self.counters.record(OpKind::Symlink),
            Err(_) => self.counters.record_error(OpKind::Symlink),
        }
        self.maybe_autocommit()?;
        result
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        let result = {
            let _fence = self.fence.read();
            let _excl = self.read_excl();
            self.with_read_retries(|| {
                let comps = split_path(path)?;
                let ino = self.resolve_locked(&comps, true)?;
                let _g = self.stripe(ino).read();
                let inode = self.load_inode(ino)?;
                if inode.ftype != FileType::Symlink {
                    return Err(FsError::InvalidArgument);
                }
                if inode.size == 0 {
                    return Ok(String::new());
                }
                let bno = inode.direct[0];
                if bno == 0 || inode.size > BLOCK_SIZE as u64 {
                    return Err(FsError::Corrupted {
                        detail: format!("symlink {ino} has inconsistent target storage"),
                    });
                }
                let blk = self.pages.read(bno, PageClass::Data)?;
                String::from_utf8(blk[..inode.size as usize].to_vec()).map_err(|_| {
                    FsError::Corrupted {
                        detail: format!("symlink {ino} target is not UTF-8"),
                    }
                })
            })
        };
        match &result {
            Ok(_) => self.counters.record(OpKind::Readlink),
            Err(_) => self.counters.record_error(OpKind::Readlink),
        }
        result
    }

    fn stat(&self, path: &str) -> FsResult<FileStat> {
        let result = {
            let _fence = self.fence.read();
            let _excl = self.read_excl();
            self.with_read_retries(|| {
                let comps = split_path(path)?;
                let ino = self.resolve_locked(&comps, true)?;
                let _g = self.stripe(ino).read();
                let inode = self.load_inode(ino)?;
                Ok(FileStat {
                    ino,
                    ftype: inode.ftype,
                    size: inode.size,
                    nlink: u32::from(inode.links),
                    blocks: u64::from(inode.blocks),
                    mtime: inode.mtime,
                    ctime: inode.ctime,
                })
            })
        };
        match &result {
            Ok(_) => self.counters.record(OpKind::Stat),
            Err(_) => self.counters.record_error(OpKind::Stat),
        }
        result
    }

    fn fstat(&self, fd: Fd) -> FsResult<FileStat> {
        let result = {
            let _fence = self.fence.read();
            let _excl = self.read_excl();
            self.with_read_retries(|| {
                let entry = self.fds.lock().get(fd)?;
                let _g = self.stripe(entry.ino).read();
                let inode = self.load_inode(entry.ino)?;
                Ok(FileStat {
                    ino: entry.ino,
                    ftype: inode.ftype,
                    size: inode.size,
                    nlink: u32::from(inode.links),
                    blocks: u64::from(inode.blocks),
                    mtime: inode.mtime,
                    ctime: inode.ctime,
                })
            })
        };
        match &result {
            Ok(_) => self.counters.record(OpKind::Fstat),
            Err(_) => self.counters.record_error(OpKind::Fstat),
        }
        result
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ctx = OpContext::new(OpKind::Readdir, Site::Readdir).with_path(path);
        let corrupt = self.hook(&ctx)?;
        let result = {
            let _fence = self.fence.read();
            let _excl = self.read_excl();
            self.with_read_retries(|| {
                let comps = split_path(path)?;
                let ino = self.resolve_locked(&comps, true)?;
                let _g = self.stripe(ino).read();
                let inode = self.load_inode(ino)?;
                if inode.ftype != FileType::Directory {
                    return Err(FsError::NotDir);
                }
                let mut out = Vec::new();
                for bno in self.dir_blocks(&inode)? {
                    let db = DirBlock::from_bytes(self.pages.read(bno, PageClass::Meta)?)?;
                    for rec in db.records() {
                        out.push(DirEntry {
                            ino: rec.ino,
                            ftype: rec.ftype,
                            name: rec.name,
                        });
                    }
                }
                if corrupt {
                    out.pop(); // the silent wrong result: one entry vanishes
                }
                Ok(out)
            })
        };
        match &result {
            Ok(_) => self.counters.record(OpKind::Readdir),
            Err(_) => self.counters.record_error(OpKind::Readdir),
        }
        result
    }

    fn statfs(&self) -> FsResult<FsGeometryInfo> {
        let _fence = self.fence.read();
        let _excl = self.read_excl();
        let (free_blocks, free_inodes) = {
            let alloc = self.alloc.lock();
            (alloc.free_blocks, u64::from(alloc.free_inodes))
        };
        self.counters.record(OpKind::Statfs);
        Ok(FsGeometryInfo {
            block_size: BLOCK_SIZE as u32,
            total_blocks: self.geo.data_blocks,
            free_blocks,
            total_inodes: u64::from(self.geo.inode_count) - 2,
            free_inodes,
        })
    }
}
