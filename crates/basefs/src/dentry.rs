//! The dentry cache: `(parent inode, component name) -> child inode`.
//!
//! Hot path lookups skip directory-block scanning entirely. Negative
//! entries are not cached (a deliberate simplification — negative
//! dentries are a classic bug source the shadow does without, and the
//! base keeps its cache coherent more easily this way).

use rae_vfs::InodeNo;
use std::collections::{HashMap, VecDeque};

/// A capacity-bounded dentry cache with LRU eviction (lazy-queue).
#[derive(Debug)]
pub(crate) struct DentryCache {
    map: HashMap<(InodeNo, String), (InodeNo, u64)>,
    lru: VecDeque<(InodeNo, String, u64)>,
    capacity: usize,
    next_stamp: u64,
    hits: u64,
    misses: u64,
}

impl DentryCache {
    pub(crate) fn new(capacity: usize) -> DentryCache {
        DentryCache {
            map: HashMap::new(),
            lru: VecDeque::new(),
            capacity: capacity.max(1),
            next_stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub(crate) fn lookup(&mut self, parent: InodeNo, name: &str) -> Option<InodeNo> {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        // borrow dance: compute hit first
        let hit = self.map.get_mut(&(parent, name.to_string()));
        match hit {
            Some((ino, s)) => {
                *s = stamp;
                let ino = *ino;
                self.lru.push_back((parent, name.to_string(), stamp));
                self.hits += 1;
                Some(ino)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, parent: InodeNo, name: &str, child: InodeNo) {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        self.map.insert((parent, name.to_string()), (child, stamp));
        self.lru.push_back((parent, name.to_string(), stamp));
        while self.map.len() > self.capacity {
            let Some((p, n, s)) = self.lru.pop_front() else {
                break;
            };
            if let Some(&(_, cur)) = self.map.get(&(p, n.clone())) {
                if cur == s {
                    self.map.remove(&(p, n));
                }
            }
        }
    }

    /// Invalidate one entry (unlink/rmdir/rename source or target).
    pub(crate) fn invalidate(&mut self, parent: InodeNo, name: &str) {
        self.map.remove(&(parent, name.to_string()));
    }

    /// Drop everything (contained reboot).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_invalidate() {
        let mut dc = DentryCache::new(8);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        assert_eq!(dc.lookup(InodeNo(1), "a"), Some(InodeNo(2)));
        assert_eq!(dc.lookup(InodeNo(1), "b"), None);
        assert_eq!(dc.lookup(InodeNo(2), "a"), None);
        dc.invalidate(InodeNo(1), "a");
        assert_eq!(dc.lookup(InodeNo(1), "a"), None);
        assert_eq!(dc.hits(), 1);
        assert_eq!(dc.misses(), 3);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut dc = DentryCache::new(2);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        dc.insert(InodeNo(1), "b", InodeNo(3));
        let _ = dc.lookup(InodeNo(1), "a"); // touch a
        dc.insert(InodeNo(1), "c", InodeNo(4)); // evicts b
        assert_eq!(dc.len(), 2);
        assert_eq!(dc.lookup(InodeNo(1), "a"), Some(InodeNo(2)));
        assert_eq!(dc.lookup(InodeNo(1), "b"), None);
        assert_eq!(dc.lookup(InodeNo(1), "c"), Some(InodeNo(4)));
    }

    #[test]
    fn reinsert_updates_value() {
        let mut dc = DentryCache::new(4);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        dc.insert(InodeNo(1), "a", InodeNo(9));
        assert_eq!(dc.lookup(InodeNo(1), "a"), Some(InodeNo(9)));
    }

    #[test]
    fn clear_empties() {
        let mut dc = DentryCache::new(4);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        dc.clear();
        assert_eq!(dc.lookup(InodeNo(1), "a"), None);
    }
}
