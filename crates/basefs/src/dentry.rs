//! The dentry cache: `(parent inode, component name) -> child inode`.
//!
//! Hot path lookups skip directory-block scanning entirely. Negative
//! entries are not cached (a deliberate simplification — negative
//! dentries are a classic bug source the shadow does without, and the
//! base keeps its cache coherent more easily this way).
//!
//! The cache is interior-mutable (`&self` API) and lock-striped so
//! concurrent *readers* of the filesystem — which populate the cache
//! during path resolution — never serialize on a single dcache lock.
//! Coherence against mutations (rename/unlink/rmdir) is provided one
//! level up: `BaseFs` only mutates directories under its exclusive
//! `inner` write lock, so an invalidate can never race a stale insert.

use parking_lot::Mutex;
use rae_vfs::InodeNo;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Stripe count for production-sized caches; small caches collapse to
/// one shard so LRU eviction order stays exact for tests.
const DCACHE_SHARDS: usize = 8;
const SINGLE_SHARD_THRESHOLD: usize = 64;

#[derive(Debug, Default)]
struct DcShard {
    map: HashMap<(InodeNo, String), (InodeNo, u64)>,
    lru: VecDeque<(InodeNo, String, u64)>,
}

/// A capacity-bounded dentry cache with LRU eviction (lazy-queue),
/// striped across shards keyed by `(parent, name)` hash.
#[derive(Debug)]
pub(crate) struct DentryCache {
    shards: Vec<Mutex<DcShard>>,
    shard_capacity: usize,
    next_stamp: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DentryCache {
    pub(crate) fn new(capacity: usize) -> DentryCache {
        let capacity = capacity.max(1);
        let nshards = if capacity < SINGLE_SHARD_THRESHOLD {
            1
        } else {
            DCACHE_SHARDS
        };
        DentryCache {
            shards: (0..nshards)
                .map(|_| Mutex::new(DcShard::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(nshards),
            next_stamp: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, parent: InodeNo, name: &str) -> &Mutex<DcShard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        parent.0.hash(&mut h);
        name.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    pub(crate) fn lookup(&self, parent: InodeNo, name: &str) -> Option<InodeNo> {
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard_for(parent, name).lock();
        match shard.map.get_mut(&(parent, name.to_string())) {
            Some((ino, s)) => {
                *s = stamp;
                let ino = *ino;
                shard.lru.push_back((parent, name.to_string(), stamp));
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(ino)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn insert(&self, parent: InodeNo, name: &str, child: InodeNo) {
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard_for(parent, name).lock();
        shard.map.insert((parent, name.to_string()), (child, stamp));
        shard.lru.push_back((parent, name.to_string(), stamp));
        while shard.map.len() > self.shard_capacity {
            let Some((p, n, s)) = shard.lru.pop_front() else {
                break;
            };
            if let Some(&(_, cur)) = shard.map.get(&(p, n.clone())) {
                if cur == s {
                    shard.map.remove(&(p, n));
                }
            }
        }
    }

    /// Invalidate one entry (unlink/rmdir/rename source or target).
    pub(crate) fn invalidate(&self, parent: InodeNo, name: &str) {
        self.shard_for(parent, name)
            .lock()
            .map
            .remove(&(parent, name.to_string()));
    }

    /// Drop everything (contained reboot).
    pub(crate) fn clear(&self) {
        for stripe in &self.shards {
            let mut shard = stripe.lock();
            shard.map.clear();
            shard.lru.clear();
        }
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_invalidate() {
        let dc = DentryCache::new(8);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        assert_eq!(dc.lookup(InodeNo(1), "a"), Some(InodeNo(2)));
        assert_eq!(dc.lookup(InodeNo(1), "b"), None);
        assert_eq!(dc.lookup(InodeNo(2), "a"), None);
        dc.invalidate(InodeNo(1), "a");
        assert_eq!(dc.lookup(InodeNo(1), "a"), None);
        assert_eq!(dc.hits(), 1);
        assert_eq!(dc.misses(), 3);
    }

    #[test]
    fn capacity_evicts_lru() {
        let dc = DentryCache::new(2);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        dc.insert(InodeNo(1), "b", InodeNo(3));
        let _ = dc.lookup(InodeNo(1), "a"); // touch a
        dc.insert(InodeNo(1), "c", InodeNo(4)); // evicts b
        assert_eq!(dc.len(), 2);
        assert_eq!(dc.lookup(InodeNo(1), "a"), Some(InodeNo(2)));
        assert_eq!(dc.lookup(InodeNo(1), "b"), None);
        assert_eq!(dc.lookup(InodeNo(1), "c"), Some(InodeNo(4)));
    }

    #[test]
    fn reinsert_updates_value() {
        let dc = DentryCache::new(4);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        dc.insert(InodeNo(1), "a", InodeNo(9));
        assert_eq!(dc.lookup(InodeNo(1), "a"), Some(InodeNo(9)));
    }

    #[test]
    fn clear_empties() {
        let dc = DentryCache::new(4);
        dc.insert(InodeNo(1), "a", InodeNo(2));
        dc.clear();
        assert_eq!(dc.lookup(InodeNo(1), "a"), None);
    }

    #[test]
    fn concurrent_lookups_and_inserts_are_safe() {
        use std::sync::Arc;
        use std::thread;
        let dc = Arc::new(DentryCache::new(256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let dc = Arc::clone(&dc);
            handles.push(thread::spawn(move || {
                for i in 0..200u64 {
                    let name = format!("f{}", (t * 31 + i) % 64);
                    if dc.lookup(InodeNo(1), &name).is_none() {
                        dc.insert(InodeNo(1), &name, InodeNo((100 + (t * 31 + i) % 64) as u32));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dc.lookup(InodeNo(1), "f0"), Some(InodeNo(100)));
    }
}
