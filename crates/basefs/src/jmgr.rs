//! The journal manager: running-transaction commit and checkpointing.
//!
//! Write-ahead rule: dirty metadata reaches the disk *only* as journal
//! records; the home locations are rewritten at checkpoint time.
//! Ordered mode: the caller flushes file data before calling
//! [`JournalMgr::commit`], so committed metadata never references
//! unwritten data.
//!
//! The journal is append-only and resets at each checkpoint (see
//! `rae_fsformat::journal` for the format rationale).

use rae_blockdev::BlockDevice;
use rae_fsformat::journal::{self, TxnTag, MAX_TXN_BLOCKS};
use rae_fsformat::{crc::crc32c, Geometry};
use rae_telemetry::{SpanLayer, Telemetry};
use rae_vfs::{FsError, FsResult};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug)]
pub(crate) struct JournalMgr {
    geo: Geometry,
    next_seq: u64,
    /// Next free block, relative to the journal region start (block 0
    /// is the header).
    write_ptr: u64,
    /// Committed-but-not-checkpointed home images (latest per block).
    pending: HashMap<u64, Vec<u8>>,
    commits: u64,
    checkpoints: u64,
    telemetry: Option<Arc<Telemetry>>,
}

impl JournalMgr {
    /// Set up after a mount-time replay left the journal empty with
    /// `next_seq` as its base sequence.
    pub(crate) fn new(geo: Geometry, next_seq: u64) -> JournalMgr {
        JournalMgr {
            geo,
            next_seq,
            write_ptr: 1,
            pending: HashMap::new(),
            commits: 0,
            checkpoints: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry handle: commits record their wall-clock
    /// duration (descriptor + data + both flush barriers).
    pub(crate) fn set_telemetry(&mut self, telemetry: Option<Arc<Telemetry>>) {
        self.telemetry = telemetry;
    }

    fn capacity(&self) -> u64 {
        self.geo.journal_blocks - 1
    }

    fn max_chunk(&self) -> usize {
        // descriptor + data + commit must fit the record area
        let by_region = self.capacity().saturating_sub(2);
        (MAX_TXN_BLOCKS as u64).min(by_region).max(1) as usize
    }

    /// Number of committed transactions so far.
    pub(crate) fn commits(&self) -> u64 {
        self.commits
    }

    /// Number of checkpoints so far.
    pub(crate) fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Commit a set of metadata images. Ordered-mode contract: the
    /// caller has already flushed file data. On return the images are
    /// durable (recoverable by replay).
    pub(crate) fn commit<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &D,
        images: Vec<(u64, Vec<u8>)>,
    ) -> FsResult<()> {
        if images.is_empty() {
            return Ok(());
        }
        let t0 = self.telemetry.as_ref().and_then(|t| t.layer_clock());
        let result = self.commit_inner(dev, images);
        if let Some(t) = self.telemetry.as_ref() {
            t.layer_observed(SpanLayer::JournalIo, t0);
        }
        result
    }

    fn commit_inner<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &D,
        images: Vec<(u64, Vec<u8>)>,
    ) -> FsResult<()> {
        let chunk_size = self.max_chunk();
        let mut idx = 0;
        while idx < images.len() {
            let chunk = &images[idx..(idx + chunk_size).min(images.len())];
            let needed = chunk.len() as u64 + 2;
            if self.write_ptr + needed > self.geo.journal_blocks {
                self.checkpoint(dev)?;
            }
            if self.write_ptr + needed > self.geo.journal_blocks {
                return Err(FsError::Internal {
                    detail: format!(
                        "transaction of {} blocks cannot fit a {}-block journal",
                        chunk.len(),
                        self.geo.journal_blocks
                    ),
                });
            }
            let seq = self.next_seq;
            let tags: Vec<TxnTag> = chunk
                .iter()
                .map(|(bno, img)| TxnTag {
                    target: *bno,
                    crc: crc32c(img),
                })
                .collect();
            let base = self.geo.journal_start + self.write_ptr;
            dev.write_block(base, &journal::encode_descriptor(seq, &tags))?;
            for (i, (_, img)) in chunk.iter().enumerate() {
                dev.write_block(base + 1 + i as u64, img)?;
            }
            // all record content durable before the commit block
            dev.flush()?;
            dev.write_block(base + 1 + chunk.len() as u64, &journal::encode_commit(seq))?;
            dev.flush()?;

            self.write_ptr += needed;
            self.next_seq += 1;
            self.commits += 1;
            for (bno, img) in chunk {
                self.pending.insert(*bno, img.clone());
            }
            idx += chunk.len();
        }
        Ok(())
    }

    /// Write all committed images home, then reset the journal.
    pub(crate) fn checkpoint<D: BlockDevice + ?Sized>(&mut self, dev: &D) -> FsResult<()> {
        if self.pending.is_empty() && self.write_ptr == 1 {
            return Ok(());
        }
        let mut homes: Vec<(&u64, &Vec<u8>)> = self.pending.iter().collect();
        homes.sort_by_key(|(b, _)| **b);
        for (bno, img) in homes {
            dev.write_block(*bno, img)?;
        }
        dev.flush()?;
        journal::reset(dev, &self.geo, self.next_seq)?;
        self.pending.clear();
        self.write_ptr = 1;
        self.checkpoints += 1;
        Ok(())
    }

    /// Forget the committed-but-not-checkpointed image for `bno`.
    ///
    /// Must be called when a block is freed. Once a block is back on
    /// the free list it can be reallocated — possibly as a *data*
    /// block, whose contents bypass the journal in ordered mode — and a
    /// stale pending metadata image would silently overwrite the new
    /// contents at the next checkpoint. Dropping the entry at free time
    /// closes that reuse hazard.
    pub(crate) fn drop_pending(&mut self, bno: u64) {
        self.pending.remove(&bno);
    }

    /// Blocks with committed-but-not-checkpointed images (tests).
    #[cfg(test)]
    pub(crate) fn pending_blocks(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::{BlockDevice, MemDisk, BLOCK_SIZE};
    use rae_fsformat::{mkfs, MkfsParams};

    fn setup() -> (MemDisk, Geometry, JournalMgr) {
        let dev = MemDisk::new(4096);
        let geo = mkfs(&dev, MkfsParams::default()).unwrap();
        let mgr = JournalMgr::new(geo, 0);
        (dev, geo, mgr)
    }

    fn img(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn committed_images_replay_after_crash() {
        let (dev, geo, mut mgr) = setup();
        let target = geo.data_start + 5;
        mgr.commit(&dev, vec![(target, img(0xAB))]).unwrap();

        // crash before checkpoint: home location still stale
        let mut raw = img(0);
        dev.read_block(target, &mut raw).unwrap();
        assert_eq!(raw[0], 0);

        // replay applies it
        let report = journal::replay(&dev, &geo).unwrap();
        assert_eq!(report.transactions, 1);
        dev.read_block(target, &mut raw).unwrap();
        assert_eq!(raw[0], 0xAB);
    }

    #[test]
    fn checkpoint_writes_home_and_empties_journal() {
        let (dev, geo, mut mgr) = setup();
        let target = geo.data_start + 9;
        mgr.commit(&dev, vec![(target, img(0x77))]).unwrap();
        mgr.checkpoint(&dev).unwrap();
        assert_eq!(mgr.pending_blocks(), 0);

        let mut raw = img(0);
        dev.read_block(target, &mut raw).unwrap();
        assert_eq!(raw[0], 0x77);
        let report = journal::replay(&dev, &geo).unwrap();
        assert_eq!(report.transactions, 0, "journal empty after checkpoint");
        assert_eq!(report.next_seq, 1, "sequence survives the reset");
    }

    #[test]
    fn multiple_commits_replay_in_order() {
        let (dev, geo, mut mgr) = setup();
        let target = geo.data_start;
        mgr.commit(&dev, vec![(target, img(1))]).unwrap();
        mgr.commit(&dev, vec![(target, img(2))]).unwrap();
        mgr.commit(&dev, vec![(target, img(3))]).unwrap();
        let report = journal::replay(&dev, &geo).unwrap();
        assert_eq!(report.transactions, 3);
        let mut raw = img(0);
        dev.read_block(target, &mut raw).unwrap();
        assert_eq!(raw[0], 3, "last committed image wins");
    }

    #[test]
    fn auto_checkpoint_when_journal_fills() {
        let (dev, geo, mut mgr) = setup();
        // each commit consumes 3 blocks of the 255-block record area
        let mut expected_fill = 0u8;
        for i in 0..200u64 {
            expected_fill = (i % 250) as u8 + 1;
            mgr.commit(&dev, vec![(geo.data_start + 1, img(expected_fill))])
                .unwrap();
        }
        assert!(mgr.checkpoints() > 0, "journal wrapped via checkpoint");
        // final state must still be recoverable
        journal::replay(&dev, &geo).unwrap();
        let mut raw = img(0);
        dev.read_block(geo.data_start + 1, &mut raw).unwrap();
        assert_eq!(raw[0], expected_fill);
    }

    #[test]
    fn oversized_commit_splits_into_transactions() {
        let (dev, geo, mut mgr) = setup();
        // journal record area is 255 blocks; 300 images must split
        let images: Vec<(u64, Vec<u8>)> = (0..300)
            .map(|i| (geo.data_start + 10 + i, img((i % 251) as u8)))
            .collect();
        mgr.commit(&dev, images).unwrap();
        journal::replay(&dev, &geo).unwrap();
        let mut raw = img(0);
        dev.read_block(geo.data_start + 10 + 299, &mut raw).unwrap();
        assert_eq!(raw[0], (299 % 251) as u8);
    }

    #[test]
    fn empty_commit_is_free() {
        let (dev, _geo, mut mgr) = setup();
        mgr.commit(&dev, vec![]).unwrap();
        assert_eq!(mgr.commits(), 0);
    }

    #[test]
    fn drop_pending_prevents_stale_checkpoint_overwrite() {
        let (dev, geo, mut mgr) = setup();
        let target = geo.data_start + 3;
        mgr.commit(&dev, vec![(target, img(0xEE))]).unwrap();
        assert_eq!(mgr.pending_blocks(), 1);

        // the block is freed and reused as file data, which reaches its
        // home location directly (ordered mode)
        mgr.drop_pending(target);
        assert_eq!(mgr.pending_blocks(), 0);
        dev.write_block(target, &img(0x42)).unwrap();

        mgr.checkpoint(&dev).unwrap();
        let mut raw = img(0);
        dev.read_block(target, &mut raw).unwrap();
        assert_eq!(raw[0], 0x42, "checkpoint must not resurrect a freed image");
    }

    #[test]
    fn torn_commit_is_discarded_by_replay() {
        let (dev, geo, mut mgr) = setup();
        let t1 = geo.data_start + 1;
        mgr.commit(&dev, vec![(t1, img(0x11))]).unwrap();

        // hand-write a descriptor for the *next* seq without a commit
        // block (simulating a crash mid-commit)
        let tags = [TxnTag {
            target: t1,
            crc: crc32c(&img(0x22)),
        }];
        let base = geo.journal_start + mgr.write_ptr;
        dev.write_block(base, &journal::encode_descriptor(mgr.next_seq, &tags))
            .unwrap();
        dev.write_block(base + 1, &img(0x22)).unwrap();

        let report = journal::replay(&dev, &geo).unwrap();
        assert_eq!(report.transactions, 1, "only the complete txn applied");
        let mut raw = img(0);
        dev.read_block(t1, &mut raw).unwrap();
        assert_eq!(raw[0], 0x11);
    }
}
