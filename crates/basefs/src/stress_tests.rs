//! Stress tests: cache pressure, concurrency, and tiny-resource
//! configurations, each ending in a full consistency check.

use crate::fs::{BaseFs, BaseFsConfig};
use rae_blockdev::{BlockDevice, MemDisk, QueueConfig, BLOCK_SIZE};
use rae_fsformat::{fsck, mkfs, MkfsParams};
use rae_vfs::{FileSystem, FileType, FsError, OpenFlags};
use std::sync::Arc;

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

fn mount(dev: Arc<MemDisk>, config: BaseFsConfig) -> BaseFs {
    BaseFs::mount(dev as Arc<dyn BlockDevice>, config).unwrap()
}

#[test]
fn tiny_page_cache_forces_eviction_churn() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    // a 24-page cache with a realistic workload: constant eviction
    let fs = mount(
        dev.clone(),
        BaseFsConfig {
            page_cache_blocks: 24,
            queue: QueueConfig {
                nr_queues: 2,
                queue_depth: 4, // tiny: exercises backpressure
            },
            ..BaseFsConfig::default()
        },
    );
    for i in 0..40 {
        let fd = fs.open(&format!("/f{i}"), rw_create()).unwrap();
        fs.write(fd, 0, &vec![i as u8; 2 * BLOCK_SIZE]).unwrap();
        fs.close(fd).unwrap();
    }
    // all data readable back despite the churn
    for i in 0..40 {
        let fd = fs.open(&format!("/f{i}"), OpenFlags::RDONLY).unwrap();
        let data = fs.read(fd, 0, 2 * BLOCK_SIZE).unwrap();
        assert!(data.iter().all(|&b| b == i as u8), "file {i} corrupted");
        fs.close(fd).unwrap();
    }
    assert!(fs.stats().cache.evictions > 20, "{:?}", fs.stats());
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn tiny_cache_smaller_than_dirty_metadata_set() {
    // dirty metadata is pinned; the cache must be allowed to exceed its
    // nominal capacity rather than lose pinned pages
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    let fs = mount(
        dev.clone(),
        BaseFsConfig {
            page_cache_blocks: 4,      // absurdly small
            max_dirty_meta: 1_000_000, // never autocommit
            ..BaseFsConfig::default()
        },
    );
    for i in 0..30 {
        fs.mkdir(&format!("/d{i}")).unwrap();
    }
    for i in 0..30 {
        assert!(fs.stat(&format!("/d{i}")).is_ok());
    }
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn inode_exhaustion_and_recovery_of_space() {
    let dev = Arc::new(MemDisk::new(512));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 512,
            inode_count: 16, // 14 usable
            journal_blocks: 16,
        },
    )
    .unwrap();
    let fs = mount(dev.clone(), BaseFsConfig::default());
    let mut created = 0;
    let mut i = 0;
    loop {
        match fs.mkdir(&format!("/d{i}")) {
            Ok(()) => created += 1,
            Err(FsError::NoInodes) => break,
            Err(e) => panic!("{e}"),
        }
        i += 1;
    }
    assert_eq!(created, 14, "16 inodes - null - root");
    // freeing makes room again
    fs.rmdir("/d0").unwrap();
    fs.mkdir("/again").unwrap();
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn mixed_concurrent_workload_many_threads() {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 4096,
            journal_blocks: 512,
        },
    )
    .unwrap();
    let fs = Arc::new(mount(dev.clone(), BaseFsConfig::default()));
    for t in 0..6 {
        fs.mkdir(&format!("/t{t}")).unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            for i in 0..60 {
                let path = format!("/t{t}/f{i}");
                let fd = fs.open(&path, rw_create()).unwrap();
                fs.write(fd, 0, &vec![(t * 40 + i) as u8; 1500]).unwrap();
                let back = fs.read(fd, 0, 1500).unwrap();
                assert!(back.iter().all(|&b| b == (t * 40 + i) as u8));
                fs.close(fd).unwrap();
                if i % 7 == 0 {
                    let _ = fs.readdir(&format!("/t{t}")).unwrap();
                }
                if i % 13 == 0 {
                    fs.rename(&path, &format!("/t{t}/r{i}")).unwrap();
                }
                if i % 17 == 0 {
                    let _ = fs.sync();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let fs = Arc::into_inner(fs).unwrap();
    fs.unmount().unwrap();
    let report = fsck(dev.as_ref()).unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn deep_nesting_and_long_names() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    let fs = mount(dev.clone(), BaseFsConfig::default());

    // 40-deep nesting
    let mut path = String::new();
    for i in 0..40 {
        path.push_str(&format!("/n{i}"));
        fs.mkdir(&path).unwrap();
    }
    let long_name = "x".repeat(rae_vfs::MAX_NAME_LEN);
    let deep_file = format!("{path}/{long_name}");
    let fd = fs.open(&deep_file, rw_create()).unwrap();
    fs.write(fd, 0, b"bottom").unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.stat(&deep_file).unwrap().size, 6);

    // a name one byte too long is rejected cleanly
    let too_long = format!("{path}/{}", "y".repeat(rae_vfs::MAX_NAME_LEN + 1));
    assert_eq!(fs.open(&too_long, rw_create()), Err(FsError::NameTooLong));

    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn file_grows_and_shrinks_through_every_pointer_tier() {
    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 256,
            journal_blocks: 128,
        },
    )
    .unwrap();
    let fs = mount(dev.clone(), BaseFsConfig::default());
    let fd = fs.open("/grow", rw_create()).unwrap();
    let free0 = fs.statfs().unwrap().free_blocks;

    // direct tier (12 blocks), indirect tier (+100), double tier (one
    // far block)
    fs.write(fd, 0, &vec![1u8; 12 * BLOCK_SIZE]).unwrap();
    fs.write(fd, 12 * BLOCK_SIZE as u64, &vec![2u8; 100 * BLOCK_SIZE])
        .unwrap();
    let far = (12 + 512 + 100) as u64 * BLOCK_SIZE as u64;
    fs.write(fd, far, b"far out").unwrap();
    assert_eq!(fs.fstat(fd).unwrap().size, far + 7);

    // spot-check all tiers read back
    assert_eq!(fs.read(fd, 5, 1).unwrap(), vec![1]);
    assert_eq!(fs.read(fd, 50 * BLOCK_SIZE as u64, 1).unwrap(), vec![2]);
    assert_eq!(fs.read(fd, far, 7).unwrap(), b"far out");

    // shrink tier by tier; block accounting must return to zero
    fs.truncate(fd, (12 + 50) as u64 * BLOCK_SIZE as u64)
        .unwrap();
    fs.truncate(fd, 6 * BLOCK_SIZE as u64).unwrap();
    fs.truncate(fd, 0).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().blocks, 0);
    assert_eq!(fs.statfs().unwrap().free_blocks, free0);
    fs.close(fd).unwrap();
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

/// Readers race writers and cache eviction on a sharded, read-mostly
/// locked filesystem; final contents are cross-checked against the
/// sequential model oracle.
#[test]
fn concurrent_readers_race_writers_and_eviction_vs_model_oracle() {
    const FILES_PER_WRITER: usize = 4;
    const WRITERS: u64 = 2;
    const READERS: u64 = 4;
    const ROUNDS: u8 = 25;
    const FILE_BLOCKS: usize = 3;

    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 1024,
            journal_blocks: 512,
        },
    )
    .unwrap();
    // small sharded cache: constant eviction under the read load
    let fs = Arc::new(mount(
        dev.clone(),
        BaseFsConfig {
            page_cache_blocks: 20,
            cache_shards: Some(4),
            queue: QueueConfig {
                nr_queues: 2,
                queue_depth: 4,
            },
            ..BaseFsConfig::default()
        },
    ));
    let path = |w: u64, i: usize| format!("/w{w}_f{i}");
    for w in 0..WRITERS {
        for i in 0..FILES_PER_WRITER {
            let fd = fs.open(&path(w, i), rw_create()).unwrap();
            fs.write(fd, 0, &vec![0u8; FILE_BLOCKS * BLOCK_SIZE])
                .unwrap();
            fs.close(fd).unwrap();
        }
    }
    fs.sync().unwrap();

    let mut handles = Vec::new();
    // writers: each owns a disjoint file set, bumps fill value per round
    for w in 0..WRITERS {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            for round in 1..=ROUNDS {
                for i in 0..FILES_PER_WRITER {
                    let fd = fs.open(&path(w, i), OpenFlags::RDWR).unwrap();
                    fs.write(fd, 0, &vec![round; FILE_BLOCKS * BLOCK_SIZE])
                        .unwrap();
                    fs.close(fd).unwrap();
                }
                if round % 5 == 0 {
                    fs.sync().unwrap();
                }
            }
        }));
    }
    // readers: whole-op atomicity means every read observes exactly one
    // round's uniform fill, and rounds are monotone per file
    for r in 0..READERS {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            let mut last_seen = [[0u8; FILES_PER_WRITER]; WRITERS as usize];
            for k in 0..300u64 {
                let w = (r + k) % WRITERS;
                let i = ((k * 7) % FILES_PER_WRITER as u64) as usize;
                let fd = fs.open(&path(w, i), OpenFlags::RDONLY).unwrap();
                let data = fs.read(fd, 0, FILE_BLOCKS * BLOCK_SIZE).unwrap();
                fs.close(fd).unwrap();
                assert_eq!(data.len(), FILE_BLOCKS * BLOCK_SIZE);
                let v = data[0];
                assert!(
                    data.iter().all(|&b| b == v),
                    "torn read: file /w{w}_f{i} mixes fill values"
                );
                assert!(
                    v >= last_seen[w as usize][i],
                    "non-monotone read: saw {v} after {}",
                    last_seen[w as usize][i]
                );
                last_seen[w as usize][i] = v;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // oracle: the same final state produced sequentially on the model
    let model = rae_fsmodel::ModelFs::new();
    for w in 0..WRITERS {
        for i in 0..FILES_PER_WRITER {
            let fd = model.open(&path(w, i), rw_create()).unwrap();
            model
                .write(fd, 0, &vec![ROUNDS; FILE_BLOCKS * BLOCK_SIZE])
                .unwrap();
            model.close(fd).unwrap();
        }
    }
    for w in 0..WRITERS {
        for i in 0..FILES_PER_WRITER {
            let fd = fs.open(&path(w, i), OpenFlags::RDONLY).unwrap();
            let got = fs.read(fd, 0, FILE_BLOCKS * BLOCK_SIZE).unwrap();
            fs.close(fd).unwrap();
            let mfd = model.open(&path(w, i), OpenFlags::RDONLY).unwrap();
            let want = model.read(mfd, 0, FILE_BLOCKS * BLOCK_SIZE).unwrap();
            model.close(mfd).unwrap();
            assert_eq!(
                got, want,
                "final content of /w{w}_f{i} diverges from oracle"
            );
        }
    }
    let stats = fs.stats();
    assert!(
        stats.cache.evictions > 0,
        "cache too large to stress eviction"
    );
    assert!(stats.cache.hits > 0 && stats.cache.misses > 0, "{stats:?}");

    let fs = Arc::try_unwrap(fs).expect("all threads joined");
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

/// Recursive `(path, size, content)` listing, directories first as
/// `(path, 0, [])`, sorted by the traversal — comparable across
/// filesystems because both sides sort entries by name.
fn tree_of(fs: &dyn FileSystem, dir: &str, out: &mut Vec<(String, u64, Vec<u8>)>) {
    let mut entries = fs.readdir(dir).unwrap();
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    for e in entries {
        let p = if dir == "/" {
            format!("/{}", e.name)
        } else {
            format!("{dir}/{}", e.name)
        };
        if e.ftype == FileType::Directory {
            out.push((p.clone(), 0, Vec::new()));
            tree_of(fs, &p, out);
        } else {
            let st = fs.stat(&p).unwrap();
            let fd = fs.open(&p, OpenFlags::RDONLY).unwrap();
            let data = fs.read(fd, 0, st.size as usize).unwrap();
            fs.close(fd).unwrap();
            out.push((p, st.size, data));
        }
    }
}

/// Sibling races (every thread mutating the same parent directory) and
/// nested-subtree races (threads mutating different levels of one
/// directory chain, so lookups race ancestor mutations) under the
/// sharded mutation path. Thread programs are deterministic and
/// name-disjoint, so any serialization of the interleaving must reach
/// the same final tree — cross-checked against the sequential model
/// oracle running the identical programs.
#[test]
fn concurrent_mutators_sibling_and_nested_races_vs_model_oracle() {
    const THREADS: u64 = 4;
    const ROUNDS: usize = 30;

    fn churn(fs: &dyn FileSystem, t: u64) {
        let level = ["/tree", "/tree/a", "/tree/a/b"][(t % 3) as usize];
        for i in 0..ROUNDS {
            // sibling race: all threads churn /shared concurrently
            let f = format!("/shared/t{t}_f{i}");
            let fd = fs.open(&f, rw_create()).unwrap();
            fs.write(fd, 0, &vec![(t as u8) << 5 | (i as u8); 600])
                .unwrap();
            fs.close(fd).unwrap();
            if i % 3 == 0 {
                fs.rename(&f, &format!("/shared/t{t}_r{i}")).unwrap();
            }
            if i % 4 == 0 {
                let cur = if i % 12 == 0 {
                    format!("/shared/t{t}_r{i}")
                } else {
                    f.clone()
                };
                fs.unlink(&cur).unwrap();
            }
            // nested race: each thread owns one depth of the chain
            let n = format!("{level}/t{t}_n{i}");
            let fd = fs.open(&n, rw_create()).unwrap();
            fs.write(fd, 0, &vec![0xA0 | (t as u8); 300]).unwrap();
            fs.close(fd).unwrap();
            if i % 2 == 0 {
                fs.unlink(&n).unwrap();
            }
        }
    }

    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 1024,
            journal_blocks: 512,
        },
    )
    .unwrap();
    let fs = Arc::new(mount(dev.clone(), BaseFsConfig::default()));
    for d in ["/shared", "/tree", "/tree/a", "/tree/a/b"] {
        fs.mkdir(d).unwrap();
    }
    fs.sync().unwrap();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let fs = Arc::clone(&fs);
            std::thread::spawn(move || churn(fs.as_ref(), t))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // oracle: identical programs, applied sequentially to the model
    let model = rae_fsmodel::ModelFs::new();
    for d in ["/shared", "/tree", "/tree/a", "/tree/a/b"] {
        model.mkdir(d).unwrap();
    }
    for t in 0..THREADS {
        churn(&model, t);
    }
    let mut got = Vec::new();
    let mut want = Vec::new();
    tree_of(fs.as_ref(), "/", &mut got);
    tree_of(&model, "/", &mut want);
    assert_eq!(got, want, "concurrent final tree diverges from oracle");

    let fs = Arc::try_unwrap(fs).expect("all threads joined");
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

/// Concurrent writers fsync in lockstep so the journal group-commits
/// their mutations in shared batches; a crash (all in-memory state
/// lost) must replay the journal to a batch-atomic state equal to the
/// model tree of everything acknowledged before the crash.
#[test]
fn crash_after_group_commits_replays_to_model_tree() {
    const THREADS: usize = 4;
    const ROUNDS: u8 = 12;
    const FILE_BLOCKS: usize = 2;

    let dev = Arc::new(MemDisk::new(16384));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 16384,
            inode_count: 256,
            journal_blocks: 512,
        },
    )
    .unwrap();
    let fs = Arc::new(mount(
        dev.clone(),
        BaseFsConfig {
            // generous leader wait: concurrent fsyncs must coalesce
            group_commit_leader_wait_us: 200,
            ..BaseFsConfig::default()
        },
    ));
    for t in 0..THREADS {
        let fd = fs.open(&format!("/gc{t}"), rw_create()).unwrap();
        fs.write(fd, 0, &vec![0u8; FILE_BLOCKS * BLOCK_SIZE])
            .unwrap();
        fs.close(fd).unwrap();
    }
    fs.sync().unwrap();
    let commits_before = fs.stats().journal_commits;

    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let fs = Arc::clone(&fs);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for round in 1..=ROUNDS {
                    let fd = fs.open(&format!("/gc{t}"), OpenFlags::RDWR).unwrap();
                    fs.write(fd, 0, &vec![round; FILE_BLOCKS * BLOCK_SIZE])
                        .unwrap();
                    // all threads reach fsync together: the commit
                    // leader absorbs the whole round into one batch
                    barrier.wait();
                    fs.fsync(fd).unwrap();
                    fs.close(fd).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let commits = fs.stats().journal_commits - commits_before;
    assert!(
        commits < (THREADS as u64) * u64::from(ROUNDS),
        "fsyncs never coalesced: {commits} commits for {} fsyncs",
        THREADS * ROUNDS as usize
    );

    // crash: caches, queues, and any open batch vanish; only the
    // journal's committed batches survive
    let fs = Arc::try_unwrap(fs).expect("all threads joined");
    fs.crash();
    let fs = mount(dev.clone(), BaseFsConfig::default());

    // every fsync was acknowledged, so replay must land exactly on the
    // model tree of the final round — nothing torn, nothing lost
    let model = rae_fsmodel::ModelFs::new();
    for t in 0..THREADS {
        let fd = model.open(&format!("/gc{t}"), rw_create()).unwrap();
        model
            .write(fd, 0, &vec![ROUNDS; FILE_BLOCKS * BLOCK_SIZE])
            .unwrap();
        model.close(fd).unwrap();
    }
    let mut got = Vec::new();
    let mut want = Vec::new();
    tree_of(&fs, "/", &mut got);
    tree_of(&model, "/", &mut want);
    assert_eq!(got, want, "replayed tree diverges from acknowledged state");

    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

/// Concurrent readers during barrier/commit activity must see
/// post-write content: an evicted-but-unbarriered dirty page is served
/// from the in-flight table, never stale from the device.
#[test]
fn concurrent_readers_during_commit_see_post_write_content() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    // depth-1 single queue: submitted write-back lingers, so the
    // in-flight window between eviction and barrier is wide
    let fs = Arc::new(mount(
        dev.clone(),
        BaseFsConfig {
            page_cache_blocks: 16,
            cache_shards: Some(4),
            queue: QueueConfig {
                nr_queues: 1,
                queue_depth: 1,
            },
            max_dirty_meta: 1_000_000, // commits only when we say so
            ..BaseFsConfig::default()
        },
    ));
    let fd = fs.open("/hot", rw_create()).unwrap();
    fs.write(fd, 0, &vec![0u8; BLOCK_SIZE]).unwrap();
    fs.sync().unwrap();

    for round in 1..=30u8 {
        fs.write(fd, 0, &vec![round; BLOCK_SIZE]).unwrap();
        // flood other files to evict /hot's dirty data page
        for j in 0..24u64 {
            let f = fs.open(&format!("/spill{j}"), rw_create()).unwrap();
            fs.write(f, 0, &vec![0xEE; BLOCK_SIZE]).unwrap();
            fs.close(f).unwrap();
        }
        let mut handles = Vec::new();
        // one thread drives the barrier/commit
        {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                fs.sync().unwrap();
            }));
        }
        // readers race the commit; all must see this round's content
        for _ in 0..3 {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let rfd = fs.open("/hot", OpenFlags::RDONLY).unwrap();
                    let data = fs.read(rfd, 0, BLOCK_SIZE).unwrap();
                    fs.close(rfd).unwrap();
                    assert!(
                        data.iter().all(|&b| b == round),
                        "round {round}: reader saw pre-write content during commit"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
    fs.close(fd).unwrap();
    let fs = Arc::try_unwrap(fs).expect("all threads joined");
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}
