//! The in-memory inode cache: `InodeNo -> DiskInode`.
//!
//! Interior-mutable (`&self` API) and lock-striped, for the same reason
//! as the dentry cache: filesystem *readers* populate it during
//! `load_inode`, so it must tolerate concurrent insertion without a
//! shared exclusive lock. Coherence with on-disk state comes from the
//! `BaseFs` locking discipline — mutations update or remove entries
//! only while holding the exclusive `inner` lock, readers insert only
//! values decoded from the (mutation-quiescent) page cache.

use parking_lot::Mutex;
use rae_fsformat::inode::DiskInode;
use rae_vfs::InodeNo;
use std::collections::HashMap;

const ICACHE_SHARDS: usize = 8;

/// A sharded inode cache (see module docs). Unbounded: the inode table
/// itself is cached block-wise in the page cache, so this only holds
/// decoded copies of inodes that are actually referenced.
#[derive(Debug)]
pub(crate) struct InodeCache {
    shards: Vec<Mutex<HashMap<InodeNo, DiskInode>>>,
}

impl InodeCache {
    pub(crate) fn new() -> InodeCache {
        InodeCache {
            shards: (0..ICACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_for(&self, ino: InodeNo) -> &Mutex<HashMap<InodeNo, DiskInode>> {
        &self.shards[(u64::from(ino.0) % self.shards.len() as u64) as usize]
    }

    pub(crate) fn get(&self, ino: InodeNo) -> Option<DiskInode> {
        self.shard_for(ino).lock().get(&ino).copied()
    }

    pub(crate) fn insert(&self, ino: InodeNo, inode: DiskInode) {
        self.shard_for(ino).lock().insert(ino, inode);
    }

    pub(crate) fn remove(&self, ino: InodeNo) {
        self.shard_for(ino).lock().remove(&ino);
    }

    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_vfs::FileType;

    #[test]
    fn insert_get_remove_clear() {
        let ic = InodeCache::new();
        let inode = DiskInode::new(FileType::Regular, 1);
        assert!(ic.get(InodeNo(5)).is_none());
        ic.insert(InodeNo(5), inode);
        assert_eq!(ic.get(InodeNo(5)).map(|i| i.ftype), Some(FileType::Regular));
        ic.remove(InodeNo(5));
        assert!(ic.get(InodeNo(5)).is_none());
        ic.insert(InodeNo(6), inode);
        ic.insert(InodeNo(14), inode); // same shard as 6
        ic.clear();
        assert!(ic.get(InodeNo(6)).is_none());
        assert!(ic.get(InodeNo(14)).is_none());
    }

    #[test]
    fn concurrent_access_across_shards() {
        use std::sync::Arc;
        use std::thread;
        let ic = Arc::new(InodeCache::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let ic = Arc::clone(&ic);
            handles.push(thread::spawn(move || {
                for i in 0..100u32 {
                    let ino = InodeNo(t * 100 + i);
                    ic.insert(ino, DiskInode::new(FileType::Regular, u64::from(i)));
                    assert!(ic.get(ino).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
