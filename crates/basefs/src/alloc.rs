//! Inode and data-block allocators.
//!
//! In-memory bitmaps with rotating allocation hints (next-fit), the
//! performance-oriented policy; every mutation also updates the bitmap's
//! backing block in the page cache (as dirty metadata) so the journal
//! commit picks it up. The shadow, by contrast, re-derives allocation
//! state from disk with no hints at all.

use crate::pagecache::{PageCache, PageClass};
use rae_fsformat::bitmap::Bitmap;
use rae_fsformat::Geometry;
use rae_vfs::{FsError, FsResult, InodeNo};

#[derive(Debug)]
pub(crate) struct Allocators {
    geo: Geometry,
    ibm: Bitmap,
    dbm: Bitmap,
    ino_hint: u64,
    blk_hint: u64,
    pub(crate) free_inodes: u32,
    pub(crate) free_blocks: u64,
    /// Blocks promised to in-flight mutations but not yet allocated.
    /// Concurrent ops reserve their worst-case block need up front so a
    /// mutation that passed its space precheck can never hit a surprise
    /// mid-op `NoSpace` because a sibling consumed the freelist.
    pub(crate) reserved_blocks: u64,
}

impl Allocators {
    /// Load both bitmaps from the page cache (i.e. from disk or from
    /// absorbed recovery images).
    pub(crate) fn load(geo: Geometry, pages: &PageCache) -> FsResult<Allocators> {
        let mut ibm = Bitmap::new(u64::from(geo.inode_count));
        for i in 0..geo.inode_bitmap_blocks {
            let img = pages.read(geo.inode_bitmap_start + i, PageClass::Meta)?;
            ibm.splice_block(i, &img)?;
        }
        let mut dbm = Bitmap::new(geo.data_blocks);
        for i in 0..geo.data_bitmap_blocks {
            let img = pages.read(geo.data_bitmap_start + i, PageClass::Meta)?;
            dbm.splice_block(i, &img)?;
        }
        ibm.validate_tail()?;
        dbm.validate_tail()?;
        let free_inodes =
            u32::try_from(u64::from(geo.inode_count) - ibm.count_set()).map_err(|_| {
                FsError::Corrupted {
                    detail: "inode bitmap count overflow".to_string(),
                }
            })?;
        let free_blocks = dbm.count_clear();
        Ok(Allocators {
            geo,
            ibm,
            dbm,
            ino_hint: 1,
            blk_hint: 0,
            free_inodes,
            free_blocks,
            reserved_blocks: 0,
        })
    }

    /// Free blocks not already promised to an in-flight mutation.
    /// Reservations are conservative (worst case), so this saturates
    /// rather than underflows when reservers consume their promise.
    pub(crate) fn effective_free_blocks(&self) -> u64 {
        self.free_blocks.saturating_sub(self.reserved_blocks)
    }

    /// Reserve `n` blocks for an in-flight mutation. The caller must
    /// release the same `n` when the op finishes (whatever it actually
    /// consumed — the reservation is a promise, not a ledger).
    pub(crate) fn reserve_blocks(&mut self, n: u64) -> FsResult<()> {
        if self.effective_free_blocks() < n {
            return Err(FsError::NoSpace);
        }
        self.reserved_blocks += n;
        Ok(())
    }

    /// Return a reservation taken with [`Allocators::reserve_blocks`].
    pub(crate) fn release_reservation(&mut self, n: u64) {
        self.reserved_blocks = self.reserved_blocks.saturating_sub(n);
    }

    fn flush_ibm_block(&self, pages: &PageCache, bit: u64) -> FsResult<()> {
        let blk = Bitmap::block_containing(bit);
        pages.write(
            self.geo.inode_bitmap_start + blk,
            self.ibm.block_image(blk).to_vec(),
            PageClass::Meta,
        )
    }

    fn flush_dbm_block(&self, pages: &PageCache, bit: u64) -> FsResult<()> {
        let blk = Bitmap::block_containing(bit);
        pages.write(
            self.geo.data_bitmap_start + blk,
            self.dbm.block_image(blk).to_vec(),
            PageClass::Meta,
        )
    }

    /// Allocate an inode number (next-fit from the rotating hint).
    pub(crate) fn alloc_ino(&mut self, pages: &PageCache) -> FsResult<InodeNo> {
        let bit = self
            .ibm
            .find_free_from(self.ino_hint)
            .ok_or(FsError::NoInodes)?;
        if bit == 0 {
            // bit 0 is the reserved null inode; it is always set, so
            // find_free_from can never legitimately return it
            return Err(FsError::Corrupted {
                detail: "inode bitmap lost the reserved null bit".to_string(),
            });
        }
        let prev = self.ibm.set(bit)?;
        debug_assert!(!prev);
        self.ino_hint = (bit + 1) % u64::from(self.geo.inode_count);
        self.free_inodes -= 1;
        self.flush_ibm_block(pages, bit)?;
        Ok(InodeNo(u32::try_from(bit).expect("inode_count fits u32")))
    }

    /// Free an inode number.
    pub(crate) fn free_ino(&mut self, pages: &PageCache, ino: InodeNo) -> FsResult<()> {
        let prev = self.ibm.clear(u64::from(ino.0))?;
        if !prev {
            return Err(FsError::Internal {
                detail: format!("double free of {ino}"),
            });
        }
        self.free_inodes += 1;
        self.flush_ibm_block(pages, u64::from(ino.0))
    }

    /// Whether `ino` is currently allocated.
    pub(crate) fn ino_allocated(&self, ino: InodeNo) -> FsResult<bool> {
        self.ibm.test(u64::from(ino.0))
    }

    /// Allocate a data block, returning its absolute block number.
    pub(crate) fn alloc_block(&mut self, pages: &PageCache) -> FsResult<u64> {
        let bit = self
            .dbm
            .find_free_from(self.blk_hint)
            .ok_or(FsError::NoSpace)?;
        let prev = self.dbm.set(bit)?;
        debug_assert!(!prev);
        self.blk_hint = (bit + 1) % self.geo.data_blocks;
        self.free_blocks -= 1;
        self.flush_dbm_block(pages, bit)?;
        Ok(self.geo.data_block(bit))
    }

    /// Free a data block by absolute block number.
    pub(crate) fn free_block(&mut self, pages: &PageCache, bno: u64) -> FsResult<()> {
        let bit = self.geo.data_index(bno)?;
        let prev = self.dbm.clear(bit)?;
        if !prev {
            return Err(FsError::Internal {
                detail: format!("double free of block {bno}"),
            });
        }
        self.free_blocks += 1;
        self.flush_dbm_block(pages, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::{MemDisk, QueueConfig};
    use rae_fsformat::{mkfs, MkfsParams};
    use std::sync::Arc;

    fn setup() -> (Geometry, PageCache) {
        let dev = Arc::new(MemDisk::new(4096));
        let geo = mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
        let pages = PageCache::new(dev, 512, QueueConfig::default());
        (geo, pages)
    }

    #[test]
    fn load_fresh_counts() {
        let (geo, pages) = setup();
        let alloc = Allocators::load(geo, &pages).unwrap();
        assert_eq!(alloc.free_inodes, geo.inode_count - 2);
        assert_eq!(alloc.free_blocks, geo.data_blocks);
        assert!(alloc.ino_allocated(InodeNo(1)).unwrap());
        assert!(!alloc.ino_allocated(InodeNo(2)).unwrap());
    }

    #[test]
    fn ino_alloc_free_cycle() {
        let (geo, pages) = setup();
        let mut alloc = Allocators::load(geo, &pages).unwrap();
        let a = alloc.alloc_ino(&pages).unwrap();
        let b = alloc.alloc_ino(&pages).unwrap();
        assert_ne!(a, b);
        assert_eq!(alloc.free_inodes, geo.inode_count - 4);
        alloc.free_ino(&pages, a).unwrap();
        assert_eq!(alloc.free_inodes, geo.inode_count - 3);
        assert!(matches!(
            alloc.free_ino(&pages, a),
            Err(FsError::Internal { .. })
        ));
    }

    #[test]
    fn hint_rotates() {
        let (geo, pages) = setup();
        let mut alloc = Allocators::load(geo, &pages).unwrap();
        let a = alloc.alloc_ino(&pages).unwrap();
        alloc.free_ino(&pages, a).unwrap();
        let b = alloc.alloc_ino(&pages).unwrap();
        assert_ne!(a, b, "next-fit hint does not immediately reuse");
    }

    #[test]
    fn block_alloc_updates_cache_image() {
        let (geo, pages) = setup();
        let mut alloc = Allocators::load(geo, &pages).unwrap();
        let b = alloc.alloc_block(&pages).unwrap();
        assert!(geo.is_data_block(b));
        // the bitmap block in the page cache is dirty meta now
        assert!(pages.dirty_meta_count() >= 1);
        // reloading from the cache sees the allocation
        let alloc2 = Allocators::load(geo, &pages).unwrap();
        assert_eq!(alloc2.free_blocks, geo.data_blocks - 1);
    }

    #[test]
    fn reservations_gate_effective_free() {
        let (geo, pages) = setup();
        let mut alloc = Allocators::load(geo, &pages).unwrap();
        assert_eq!(alloc.effective_free_blocks(), geo.data_blocks);
        alloc.reserve_blocks(geo.data_blocks - 1).unwrap();
        assert_eq!(alloc.effective_free_blocks(), 1);
        assert_eq!(alloc.reserve_blocks(2), Err(FsError::NoSpace));
        alloc.reserve_blocks(1).unwrap();
        assert_eq!(alloc.effective_free_blocks(), 0);
        // the reserver consuming its promise leaves effective free
        // saturated at zero, not underflowed
        let _ = alloc.alloc_block(&pages).unwrap();
        assert_eq!(alloc.effective_free_blocks(), 0);
        alloc.release_reservation(geo.data_blocks);
        assert_eq!(alloc.effective_free_blocks(), geo.data_blocks - 1);
    }

    #[test]
    fn exhaustion_reports_nospace() {
        let (geo, pages) = setup();
        let mut alloc = Allocators::load(geo, &pages).unwrap();
        for _ in 0..geo.data_blocks {
            alloc.alloc_block(&pages).unwrap();
        }
        assert_eq!(alloc.alloc_block(&pages), Err(FsError::NoSpace));
        assert_eq!(alloc.free_blocks, 0);
    }
}
