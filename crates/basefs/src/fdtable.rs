//! The file-descriptor table.
//!
//! Descriptor numbering is part of the application-visible state RAE
//! must reconstruct ("file descriptor numbers must be identical to the
//! applications for completed operations"), so allocation follows the
//! spec exactly: lowest free number from [`rae_vfs::FIRST_FD`].

use rae_vfs::{Fd, FsError, FsResult, InodeNo, OpenFlags, FIRST_FD, MAX_OPEN_FILES};
use std::collections::BTreeMap;

/// One open descriptor. The opening path is retained for diagnostics
/// and fault-trigger contexts (it is not used for resolution — the
/// inode is authoritative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FdEntry {
    pub(crate) ino: InodeNo,
    pub(crate) flags: OpenFlags,
    pub(crate) path: String,
}

#[derive(Debug, Default)]
pub(crate) struct FdTable {
    map: BTreeMap<Fd, FdEntry>,
}

impl FdTable {
    pub(crate) fn new() -> FdTable {
        FdTable::default()
    }

    /// Allocate the lowest free descriptor for `ino`.
    pub(crate) fn alloc(&mut self, ino: InodeNo, flags: OpenFlags, path: &str) -> FsResult<Fd> {
        if self.map.len() >= MAX_OPEN_FILES {
            return Err(FsError::TooManyOpenFiles);
        }
        let mut candidate = FIRST_FD;
        for &fd in self.map.keys() {
            if fd.0 > candidate {
                break;
            }
            if fd.0 >= candidate {
                candidate = fd.0 + 1;
            }
        }
        let fd = Fd(candidate);
        self.map.insert(
            fd,
            FdEntry {
                ino,
                flags,
                path: path.to_string(),
            },
        );
        Ok(fd)
    }

    /// Install a specific descriptor (recovery hand-off path).
    pub(crate) fn install(
        &mut self,
        fd: Fd,
        ino: InodeNo,
        flags: OpenFlags,
        path: &str,
    ) -> FsResult<()> {
        if self.map.contains_key(&fd) {
            return Err(FsError::Internal {
                detail: format!("descriptor {fd} installed twice"),
            });
        }
        self.map.insert(
            fd,
            FdEntry {
                ino,
                flags,
                path: path.to_string(),
            },
        );
        Ok(())
    }

    pub(crate) fn get(&self, fd: Fd) -> FsResult<FdEntry> {
        self.map.get(&fd).cloned().ok_or(FsError::BadFd)
    }

    pub(crate) fn close(&mut self, fd: Fd) -> FsResult<FdEntry> {
        self.map.remove(&fd).ok_or(FsError::BadFd)
    }

    pub(crate) fn has_open(&self, ino: InodeNo) -> bool {
        self.map.values().any(|e| e.ino == ino)
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// All open descriptors, in descriptor order.
    pub(crate) fn entries(&self) -> Vec<(Fd, FdEntry)> {
        self.map.iter().map(|(&fd, e)| (fd, e.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_free_allocation() {
        let mut t = FdTable::new();
        let a = t.alloc(InodeNo(2), OpenFlags::RDONLY, "/a").unwrap();
        let b = t.alloc(InodeNo(3), OpenFlags::RDONLY, "/b").unwrap();
        assert_eq!((a, b), (Fd(FIRST_FD), Fd(FIRST_FD + 1)));
        t.close(a).unwrap();
        let c = t.alloc(InodeNo(4), OpenFlags::RDONLY, "/c").unwrap();
        assert_eq!(c, Fd(FIRST_FD));
        assert_eq!(t.get(c).unwrap().path, "/c");
    }

    #[test]
    fn install_specific_descriptor() {
        let mut t = FdTable::new();
        t.install(Fd(7), InodeNo(5), OpenFlags::RDWR, "/x").unwrap();
        assert_eq!(t.get(Fd(7)).unwrap().ino, InodeNo(5));
        assert!(t.install(Fd(7), InodeNo(6), OpenFlags::RDWR, "/y").is_err());
        // allocation skips over installed descriptors
        for expect in [3, 4, 5, 6, 8] {
            let fd = t.alloc(InodeNo(9), OpenFlags::RDONLY, "/z").unwrap();
            assert_eq!(fd, Fd(expect));
        }
    }

    #[test]
    fn open_tracking() {
        let mut t = FdTable::new();
        let fd = t.alloc(InodeNo(2), OpenFlags::RDONLY, "/a").unwrap();
        assert!(t.has_open(InodeNo(2)));
        assert!(!t.has_open(InodeNo(3)));
        t.close(fd).unwrap();
        assert!(!t.has_open(InodeNo(2)));
        assert_eq!(t.close(fd), Err(FsError::BadFd));
    }

    #[test]
    fn exhaustion() {
        let mut t = FdTable::new();
        for _ in 0..MAX_OPEN_FILES {
            t.alloc(InodeNo(2), OpenFlags::RDONLY, "/a").unwrap();
        }
        assert_eq!(
            t.alloc(InodeNo(2), OpenFlags::RDONLY, "/a"),
            Err(FsError::TooManyOpenFiles)
        );
        assert_eq!(t.len(), MAX_OPEN_FILES);
    }
}
