//! The write-back page cache.
//!
//! Caches whole blocks. Two classes of pages exist:
//!
//! * **Data** pages — evictable at any time; dirty data pages drain
//!   through the asynchronous write-back queue (and are force-drained by
//!   [`PageCache::flush_data`], the ordered-mode barrier before a
//!   journal commit);
//! * **Meta** pages — dirty metadata is *pinned*: it may only reach the
//!   disk through the journal (write-ahead rule), so eviction skips it
//!   and [`PageCache::take_dirty_meta`] hands the images to the journal
//!   manager at commit time.
//!
//! Eviction is LRU via the classic lazy-queue technique (re-stamped
//! entries are skipped when popped).

use parking_lot::Mutex;
use rae_blockdev::{BlockDevice, QueueConfig, WritebackQueue, BLOCK_SIZE};
use rae_vfs::{FsError, FsResult};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The class of a cached page (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// File contents: write-back through the queue.
    Data,
    /// Journaled metadata: leaves memory only via the journal.
    Meta,
}

#[derive(Debug)]
struct Page {
    data: Vec<u8>,
    class: PageClass,
    dirty: bool,
    stamp: u64,
}

#[derive(Debug, Default)]
struct PcInner {
    map: HashMap<u64, Page>,
    lru: VecDeque<(u64, u64)>, // (bno, stamp) — stale entries skipped
    /// Evicted dirty pages whose queued write has not passed a barrier
    /// yet (the PG_writeback analog): reads must be served from here,
    /// not from the device, or they would observe pre-write content.
    inflight: HashMap<u64, Vec<u8>>,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that went to the device.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

/// The write-back page cache (see module docs).
pub struct PageCache {
    inner: Mutex<PcInner>,
    dev: Arc<dyn BlockDevice>,
    queue: WritebackQueue,
    capacity: usize,
    next_stamp: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("capacity", &self.capacity)
            .field("resident", &self.inner.lock().map.len())
            .finish()
    }
}

impl PageCache {
    /// Create a cache of `capacity` pages over `dev`, with a write-back
    /// queue configured by `queue_config`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(dev: Arc<dyn BlockDevice>, capacity: usize, queue_config: QueueConfig) -> PageCache {
        assert!(capacity > 0);
        PageCache {
            inner: Mutex::new(PcInner::default()),
            queue: WritebackQueue::new(Arc::clone(&dev), queue_config),
            dev,
            capacity,
            next_stamp: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stamp(&self) -> u64 {
        self.next_stamp.fetch_add(1, Ordering::Relaxed)
    }

    fn touch(inner: &mut PcInner, bno: u64, stamp: u64) {
        if let Some(p) = inner.map.get_mut(&bno) {
            p.stamp = stamp;
            inner.lru.push_back((bno, stamp));
        }
    }

    /// Evict pages until at most `capacity` resident. Dirty data pages
    /// are submitted to the write-back queue; dirty meta pages are
    /// skipped (pinned).
    fn evict_if_needed(&self, inner: &mut PcInner) -> FsResult<()> {
        let mut skipped: Vec<(u64, u64)> = Vec::new();
        while inner.map.len() > self.capacity {
            let Some((bno, stamp)) = inner.lru.pop_front() else {
                break; // everything left is pinned dirty metadata
            };
            let evictable = match inner.map.get(&bno) {
                Some(p) if p.stamp == stamp => !(p.class == PageClass::Meta && p.dirty),
                _ => continue, // stale queue entry
            };
            if !evictable {
                skipped.push((bno, stamp));
                continue;
            }
            let page = inner.map.remove(&bno).expect("checked above");
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if page.dirty {
                // keep the content visible until the queued write has
                // provably landed (cleared at the next barrier)
                inner.inflight.insert(bno, page.data.clone());
                self.queue.submit(bno, page.data)?;
            }
        }
        // put pinned pages back in LRU order
        for e in skipped.into_iter().rev() {
            inner.lru.push_front(e);
        }
        Ok(())
    }

    /// Read a block through the cache.
    ///
    /// # Errors
    ///
    /// Device errors on a miss.
    pub fn read(&self, bno: u64, class: PageClass) -> FsResult<Vec<u8>> {
        let stamp = self.stamp();
        {
            let mut inner = self.inner.lock();
            if let Some(p) = inner.map.get(&bno) {
                let data = p.data.clone();
                Self::touch(&mut inner, bno, stamp);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data);
            }
            if let Some(data) = inner.inflight.get(&bno) {
                // evicted but the write-back has not landed: the
                // in-flight copy is the truth
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data.clone());
            }
        }
        // Miss: read outside the lock, then insert (double-read on a
        // race is harmless — the block content is identical).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev.read_block(bno, &mut buf)?;
        let mut inner = self.inner.lock();
        if let Some(p) = inner.map.get(&bno) {
            // raced with a writer: their copy is newer
            let data = p.data.clone();
            Self::touch(&mut inner, bno, stamp);
            return Ok(data);
        }
        if let Some(data) = inner.inflight.get(&bno) {
            // raced with an eviction: the in-flight copy is newer than
            // what we just read from the device
            return Ok(data.clone());
        }
        inner.map.insert(
            bno,
            Page {
                data: buf.clone(),
                class,
                dirty: false,
                stamp,
            },
        );
        inner.lru.push_back((bno, stamp));
        self.evict_if_needed(&mut inner)?;
        Ok(buf)
    }

    /// Install a full block image, marking it dirty.
    ///
    /// # Errors
    ///
    /// [`FsError::Internal`] on a misshapen buffer; queue errors from
    /// eviction.
    pub fn write(&self, bno: u64, data: Vec<u8>, class: PageClass) -> FsResult<()> {
        if data.len() != BLOCK_SIZE {
            return Err(FsError::Internal {
                detail: format!("page write of {} bytes", data.len()),
            });
        }
        let stamp = self.stamp();
        let mut inner = self.inner.lock();
        inner.map.insert(
            bno,
            Page {
                data,
                class,
                dirty: true,
                stamp,
            },
        );
        inner.lru.push_back((bno, stamp));
        self.evict_if_needed(&mut inner)
    }

    /// Read-modify-write of a byte range within a block.
    ///
    /// # Errors
    ///
    /// Device errors on a miss; [`FsError::Internal`] on out-of-range
    /// coordinates.
    pub fn update(&self, bno: u64, offset: usize, bytes: &[u8], class: PageClass) -> FsResult<()> {
        if offset + bytes.len() > BLOCK_SIZE {
            return Err(FsError::Internal {
                detail: "page update crosses block boundary".to_string(),
            });
        }
        let mut cur = self.read(bno, class)?;
        cur[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.write(bno, cur, class)
    }

    /// Snapshot all dirty metadata pages and mark them clean (the
    /// journal manager owns them from here — journal commit must follow
    /// or the images are lost).
    #[must_use]
    pub fn take_dirty_meta(&self) -> Vec<(u64, Vec<u8>)> {
        let mut inner = self.inner.lock();
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for (&bno, p) in inner.map.iter_mut() {
            if p.class == PageClass::Meta && p.dirty {
                out.push((bno, p.data.clone()));
                p.dirty = false;
            }
        }
        out.sort_by_key(|(b, _)| *b);
        out
    }

    /// Flip one byte of a dirty metadata page (fault-injection support
    /// for the memory-corruption bug class). Pages within
    /// `prefer_range` are chosen first so tests hit validated
    /// structures deterministically. Returns the scribbled block.
    pub fn scribble_dirty_meta(&self, prefer_range: (u64, u64)) -> Option<u64> {
        let mut inner = self.inner.lock();
        let mut candidates: Vec<u64> = inner
            .map
            .iter()
            .filter(|(_, p)| p.class == PageClass::Meta && p.dirty)
            .map(|(&b, _)| b)
            .collect();
        candidates.sort_unstable();
        let target = candidates
            .iter()
            .copied()
            .find(|b| (prefer_range.0..prefer_range.1).contains(b))
            .or_else(|| candidates.first().copied())?;
        let page = inner.map.get_mut(&target).expect("listed above");
        // byte 273 = offset 17 of the *second* 256-byte inode slot, so
        // an inode-table scribble damages a real inode (slot 0 is the
        // reserved null inode nothing ever reads)
        page.data[273] ^= 0x40;
        Some(target)
    }

    /// Count of dirty metadata pages (for commit-sizing decisions).
    #[must_use]
    pub fn dirty_meta_count(&self) -> usize {
        self.inner
            .lock()
            .map
            .values()
            .filter(|p| p.class == PageClass::Meta && p.dirty)
            .count()
    }

    /// Submit every dirty data page to the write-back queue and wait
    /// for the barrier (ordered-mode data flush).
    ///
    /// # Errors
    ///
    /// Asynchronous write errors surfacing at the barrier.
    pub fn flush_data(&self) -> FsResult<()> {
        {
            let mut inner = self.inner.lock();
            let dirty: Vec<u64> = inner
                .map
                .iter()
                .filter(|(_, p)| p.class == PageClass::Data && p.dirty)
                .map(|(&b, _)| b)
                .collect();
            for bno in dirty {
                let p = inner.map.get_mut(&bno).expect("listed above");
                p.dirty = false;
                let data = p.data.clone();
                self.queue.submit(bno, data)?;
            }
        }
        self.queue.barrier()?;
        // every queued write has landed: in-flight copies are now
        // redundant with the device
        self.inner.lock().inflight.clear();
        Ok(())
    }

    /// Wait for already-submitted write-back I/O to settle *without*
    /// submitting any dirty pages (contained-reboot quiescing: dirty
    /// pages are untrusted and must not reach the disk).
    ///
    /// # Errors
    ///
    /// Stale asynchronous write errors surfacing at the barrier.
    pub fn quiesce(&self) -> FsResult<()> {
        self.queue.barrier()?;
        self.inner.lock().inflight.clear();
        Ok(())
    }

    /// Drop every cached page without writing anything anywhere — the
    /// contained-reboot primitive ("all the states in the base
    /// filesystem's memory are not trusted, so we need to reset them").
    pub fn discard_all(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.lru.clear();
        inner.inflight.clear();
    }

    /// Cache statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::MemDisk;

    fn cache(blocks: u64, cap: usize) -> (Arc<MemDisk>, PageCache) {
        let dev = Arc::new(MemDisk::new(blocks));
        let pc = PageCache::new(dev.clone(), cap, QueueConfig::default());
        (dev, pc)
    }

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn read_caches_and_hits() {
        let (_dev, pc) = cache(8, 4);
        let _ = pc.read(3, PageClass::Data).unwrap();
        let _ = pc.read(3, PageClass::Data).unwrap();
        let s = pc.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn write_then_read_returns_new_content_without_disk_write() {
        let (dev, pc) = cache(8, 4);
        pc.write(2, block(9), PageClass::Data).unwrap();
        assert_eq!(pc.read(2, PageClass::Data).unwrap()[0], 9);
        // not yet on disk (write-back)
        let mut raw = block(0);
        dev.read_block(2, &mut raw).unwrap();
        assert_eq!(raw[0], 0);
        // flush pushes it out
        pc.flush_data().unwrap();
        dev.read_block(2, &mut raw).unwrap();
        assert_eq!(raw[0], 9);
    }

    #[test]
    fn eviction_writes_back_dirty_data() {
        let (dev, pc) = cache(16, 2);
        pc.write(0, block(1), PageClass::Data).unwrap();
        pc.write(1, block(2), PageClass::Data).unwrap();
        pc.write(2, block(3), PageClass::Data).unwrap(); // evicts block 0
        assert!(pc.resident() <= 2);
        pc.flush_data().unwrap(); // barrier also waits for eviction writes
        let mut raw = block(0);
        dev.read_block(0, &mut raw).unwrap();
        assert_eq!(raw[0], 1, "evicted dirty page reached the disk");
        assert!(pc.stats().evictions >= 1);
    }

    #[test]
    fn dirty_meta_is_pinned_not_evicted() {
        let (dev, pc) = cache(16, 2);
        pc.write(0, block(7), PageClass::Meta).unwrap();
        pc.write(1, block(8), PageClass::Meta).unwrap();
        // inserting more data pages must not push dirty meta to disk
        for i in 2..6 {
            pc.write(i, block(i as u8), PageClass::Data).unwrap();
        }
        pc.flush_data().unwrap();
        let mut raw = block(0);
        dev.read_block(0, &mut raw).unwrap();
        assert_eq!(raw[0], 0, "dirty metadata never reaches disk directly");
        assert_eq!(pc.dirty_meta_count(), 2);
    }

    #[test]
    fn take_dirty_meta_hands_over_images_once() {
        let (_dev, pc) = cache(16, 8);
        pc.write(5, block(5), PageClass::Meta).unwrap();
        pc.write(3, block(3), PageClass::Meta).unwrap();
        pc.write(9, block(9), PageClass::Data).unwrap();

        let metas = pc.take_dirty_meta();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].0, 3, "sorted by block number");
        assert_eq!(metas[1].0, 5);
        assert!(pc.take_dirty_meta().is_empty(), "marked clean");
    }

    #[test]
    fn update_modifies_a_range() {
        let (_dev, pc) = cache(8, 4);
        pc.write(1, block(0), PageClass::Meta).unwrap();
        pc.update(1, 100, &[1, 2, 3], PageClass::Meta).unwrap();
        let data = pc.read(1, PageClass::Meta).unwrap();
        assert_eq!(&data[100..103], &[1, 2, 3]);
        assert_eq!(data[99], 0);
        assert!(pc
            .update(1, BLOCK_SIZE - 1, &[1, 2], PageClass::Meta)
            .is_err());
    }

    #[test]
    fn discard_all_loses_uncommitted_state() {
        let (dev, pc) = cache(8, 4);
        pc.write(2, block(42), PageClass::Meta).unwrap();
        pc.discard_all();
        assert_eq!(pc.resident(), 0);
        // the next read sees the (stale) disk content — exactly what a
        // contained reboot wants
        assert_eq!(pc.read(2, PageClass::Meta).unwrap()[0], 0);
        let mut raw = block(9);
        dev.read_block(2, &mut raw).unwrap();
        assert_eq!(raw[0], 0);
    }

    #[test]
    fn clean_meta_is_evictable() {
        let (_dev, pc) = cache(16, 2);
        pc.write(0, block(1), PageClass::Meta).unwrap();
        let _ = pc.take_dirty_meta(); // now clean
        pc.write(1, block(2), PageClass::Data).unwrap();
        pc.write(2, block(3), PageClass::Data).unwrap();
        pc.write(3, block(4), PageClass::Data).unwrap();
        assert!(pc.resident() <= 2, "clean meta evicted normally");
    }

    #[test]
    fn lru_order_prefers_cold_pages() {
        let (_dev, pc) = cache(16, 3);
        pc.write(0, block(0), PageClass::Data).unwrap();
        pc.write(1, block(1), PageClass::Data).unwrap();
        pc.write(2, block(2), PageClass::Data).unwrap();
        // touch 0 so 1 is the coldest
        let _ = pc.read(0, PageClass::Data).unwrap();
        pc.write(3, block(3), PageClass::Data).unwrap();
        let inner_has = |bno: u64| pc.inner.lock().map.contains_key(&bno);
        assert!(inner_has(0), "recently touched page survived");
        assert!(!inner_has(1), "cold page evicted");
    }
}

#[cfg(test)]
mod writeback_race_tests {
    use super::*;
    use rae_blockdev::MemDisk;

    /// Regression test for the eviction/read race: an evicted dirty
    /// page must stay readable with its *new* content even before the
    /// queued write lands.
    #[test]
    fn evicted_dirty_page_reads_new_content() {
        let dev = Arc::new(MemDisk::new(64));
        // depth-1 queue with one worker: submissions linger
        let pc = PageCache::new(
            dev.clone(),
            2,
            QueueConfig {
                nr_queues: 1,
                queue_depth: 1,
            },
        );
        for round in 0..50u8 {
            pc.write(0, vec![round; BLOCK_SIZE], PageClass::Data)
                .unwrap();
            // force eviction of block 0 by touching other blocks
            pc.write(
                1 + u64::from(round % 8),
                vec![0xEE; BLOCK_SIZE],
                PageClass::Data,
            )
            .unwrap();
            pc.write(
                9 + u64::from(round % 8),
                vec![0xEE; BLOCK_SIZE],
                PageClass::Data,
            )
            .unwrap();
            let back = pc.read(0, PageClass::Data).unwrap();
            assert!(
                back.iter().all(|&b| b == round),
                "round {round}: stale read after eviction"
            );
        }
        pc.flush_data().unwrap();
        let mut raw = vec![0u8; BLOCK_SIZE];
        dev.read_block(0, &mut raw).unwrap();
        assert!(raw.iter().all(|&b| b == 49));
    }

    #[test]
    fn inflight_cleared_after_barrier() {
        let dev = Arc::new(MemDisk::new(16));
        let pc = PageCache::new(dev, 2, QueueConfig::default());
        pc.write(0, vec![1; BLOCK_SIZE], PageClass::Data).unwrap();
        pc.write(1, vec![2; BLOCK_SIZE], PageClass::Data).unwrap();
        pc.write(2, vec![3; BLOCK_SIZE], PageClass::Data).unwrap();
        pc.flush_data().unwrap();
        assert!(pc.inner.lock().inflight.is_empty());
    }
}
