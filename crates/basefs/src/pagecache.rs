//! The write-back page cache.
//!
//! Caches whole blocks. Two classes of pages exist:
//!
//! * **Data** pages — evictable at any time; dirty data pages drain
//!   through the asynchronous write-back queue (and are force-drained by
//!   [`PageCache::flush_data`], the ordered-mode barrier before a
//!   journal commit);
//! * **Meta** pages — dirty metadata is *pinned*: it may only reach the
//!   disk through the journal (write-ahead rule), so eviction skips it
//!   and [`PageCache::take_dirty_meta`] hands the images to the journal
//!   manager at commit time. A committed-but-not-checkpointed meta page
//!   is clean in the cache while its *home block on the device is still
//!   stale*; evicting one therefore writes it home through the
//!   write-back queue first (legal — the image is already durable in
//!   the journal, so write-ahead is preserved, and replay after a crash
//!   rewrites the same bytes). [`PageCache::checkpoint_done`] clears
//!   the stale-home marks once the journal manager has rewritten every
//!   home location.
//!
//! Eviction is LRU via the classic lazy-queue technique (re-stamped
//! entries are skipped when popped).
//!
//! # Sharding
//!
//! The cache is lock-striped into N shards (block number modulo N), so
//! concurrent readers touching different blocks never contend on a
//! single cache mutex. Each shard owns its map, its LRU queue, and its
//! in-flight table; capacity is divided evenly across shards, so
//! eviction decisions are shard-local (the same design trade the kernel
//! makes with per-memcg/per-node LRU lists). Small caches collapse to a
//! single shard so capacity-sensitive tests keep exact global LRU
//! semantics; [`PageCache::with_shards`] pins a count explicitly. The
//! dirty-metadata population is tracked by a global atomic counter so
//! the commit-sizing check ([`PageCache::dirty_meta_count`], called on
//! every mutation) is O(1) instead of a scan of every shard.

use parking_lot::Mutex;
use rae_blockdev::{BlockDevice, QueueConfig, WritebackQueue, BLOCK_SIZE};
use rae_telemetry::{EventKind, SpanLayer, Telemetry};
use rae_vfs::{FsError, FsResult};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The class of a cached page (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// File contents: write-back through the queue.
    Data,
    /// Journaled metadata: leaves memory only via the journal.
    Meta,
}

#[derive(Debug)]
struct Page {
    data: Vec<u8>,
    class: PageClass,
    dirty: bool,
    /// Meta only: the image was handed to the journal (clean here) but
    /// the home block on the device has not been checkpointed yet, so a
    /// device re-read would return stale bytes.
    home_stale: bool,
    stamp: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Page>,
    lru: VecDeque<(u64, u64)>, // (bno, stamp) — stale entries skipped
    /// Evicted dirty pages whose queued write has not passed a barrier
    /// yet (the PG_writeback analog): reads must be served from here,
    /// not from the device, or they would observe pre-write content.
    inflight: HashMap<u64, Vec<u8>>,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that went to the device.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

/// Default shard count for production-sized caches.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// Caches smaller than this stay single-sharded so global LRU order is
/// exact (capacity-sensitive unit tests, tiny tools).
const SINGLE_SHARD_THRESHOLD: usize = 64;

/// The write-back page cache (see module docs).
pub struct PageCache {
    shards: Vec<Mutex<Shard>>,
    dev: Arc<dyn BlockDevice>,
    queue: WritebackQueue,
    /// Per-shard page budget (total capacity / shard count, rounded up).
    shard_capacity: usize,
    /// Global dirty-metadata page population (kept exact by every
    /// clean↔dirty transition so `dirty_meta_count` is O(1)).
    dirty_meta: AtomicUsize,
    next_stamp: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("resident", &self.resident())
            .finish()
    }
}

impl PageCache {
    /// Create a cache of `capacity` pages over `dev`, with a write-back
    /// queue configured by `queue_config`. The shard count is picked
    /// automatically: one shard for small caches, [`DEFAULT_CACHE_SHARDS`]
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(dev: Arc<dyn BlockDevice>, capacity: usize, queue_config: QueueConfig) -> PageCache {
        let nshards = if capacity < SINGLE_SHARD_THRESHOLD {
            1
        } else {
            DEFAULT_CACHE_SHARDS
        };
        Self::with_shards(dev, capacity, queue_config, nshards)
    }

    /// Create a cache with an explicit shard count (`nshards` is clamped
    /// to at least 1). Total capacity is divided evenly across shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_shards(
        dev: Arc<dyn BlockDevice>,
        capacity: usize,
        queue_config: QueueConfig,
        nshards: usize,
    ) -> PageCache {
        assert!(capacity > 0);
        let nshards = nshards.max(1);
        let shards = (0..nshards).map(|_| Mutex::new(Shard::default())).collect();
        PageCache {
            shards,
            queue: WritebackQueue::new(Arc::clone(&dev), queue_config),
            dev,
            shard_capacity: capacity.div_ceil(nshards),
            dirty_meta: AtomicUsize::new(0),
            next_stamp: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        }
    }

    /// Attach a telemetry handle: miss fills record their latency and
    /// evictions of stale-at-home meta pages become flight-recorder
    /// events. First call wins.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// Number of lock stripes.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, bno: u64) -> &Mutex<Shard> {
        &self.shards[(bno % self.shards.len() as u64) as usize]
    }

    fn stamp(&self) -> u64 {
        self.next_stamp.fetch_add(1, Ordering::Relaxed)
    }

    fn touch(shard: &mut Shard, bno: u64, stamp: u64) {
        if let Some(p) = shard.map.get_mut(&bno) {
            p.stamp = stamp;
            shard.lru.push_back((bno, stamp));
        }
    }

    /// Evict pages until at most `shard_capacity` resident in this
    /// shard. Dirty data pages are submitted to the write-back queue;
    /// dirty meta pages are skipped (pinned).
    fn evict_if_needed(&self, shard: &mut Shard) -> FsResult<()> {
        let mut skipped: Vec<(u64, u64)> = Vec::new();
        while shard.map.len() > self.shard_capacity {
            let Some((bno, stamp)) = shard.lru.pop_front() else {
                break; // everything left is pinned dirty metadata
            };
            let evictable = match shard.map.get(&bno) {
                Some(p) if p.stamp == stamp => !(p.class == PageClass::Meta && p.dirty),
                _ => continue, // stale queue entry
            };
            if !evictable {
                skipped.push((bno, stamp));
                continue;
            }
            let page = shard.map.remove(&bno).expect("checked above");
            self.evictions.fetch_add(1, Ordering::Relaxed);
            // A committed-but-not-checkpointed meta page must be written
            // home before it can be dropped, or the next miss would read
            // the stale pre-commit image from the device. The write is
            // legal: the journal already holds the image (write-ahead).
            if page.dirty || page.home_stale {
                if page.home_stale {
                    if let Some(t) = self.telemetry.get() {
                        t.event(
                            EventKind::CacheEvictStale,
                            bno,
                            bno % self.shards.len() as u64,
                            0,
                        );
                    }
                }
                // keep the content visible until the queued write has
                // provably landed (cleared at the next barrier)
                shard.inflight.insert(bno, page.data.clone());
                self.queue.submit(bno, page.data)?;
            }
        }
        // put pinned pages back in LRU order
        for e in skipped.into_iter().rev() {
            shard.lru.push_front(e);
        }
        Ok(())
    }

    /// Read a block through the cache.
    ///
    /// # Errors
    ///
    /// Device errors on a miss.
    pub fn read(&self, bno: u64, class: PageClass) -> FsResult<Vec<u8>> {
        let stamp = self.stamp();
        {
            let mut shard = self.shard_for(bno).lock();
            if let Some(p) = shard.map.get(&bno) {
                let data = p.data.clone();
                Self::touch(&mut shard, bno, stamp);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data);
            }
            if let Some(data) = shard.inflight.get(&bno) {
                // evicted but the write-back has not landed: the
                // in-flight copy is the truth
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(data.clone());
            }
        }
        // Miss: read outside the lock, then insert (double-read on a
        // race is harmless — the block content is identical).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t0 = self.telemetry.get().and_then(|t| t.layer_clock());
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev.read_block(bno, &mut buf)?;
        if let Some(t) = self.telemetry.get() {
            t.layer_observed(SpanLayer::CacheFill, t0);
        }
        let mut shard = self.shard_for(bno).lock();
        if let Some(p) = shard.map.get(&bno) {
            // raced with a writer: their copy is newer
            let data = p.data.clone();
            Self::touch(&mut shard, bno, stamp);
            return Ok(data);
        }
        if let Some(data) = shard.inflight.get(&bno) {
            // raced with an eviction: the in-flight copy is newer than
            // what we just read from the device
            return Ok(data.clone());
        }
        shard.map.insert(
            bno,
            Page {
                data: buf.clone(),
                class,
                dirty: false,
                home_stale: false,
                stamp,
            },
        );
        shard.lru.push_back((bno, stamp));
        self.evict_if_needed(&mut shard)?;
        Ok(buf)
    }

    /// Install a full block image, marking it dirty.
    ///
    /// # Errors
    ///
    /// [`FsError::Internal`] on a misshapen buffer; queue errors from
    /// eviction.
    pub fn write(&self, bno: u64, data: Vec<u8>, class: PageClass) -> FsResult<()> {
        if data.len() != BLOCK_SIZE {
            return Err(FsError::Internal {
                detail: format!("page write of {} bytes", data.len()),
            });
        }
        let stamp = self.stamp();
        let mut shard = self.shard_for(bno).lock();
        // carried across rewrites: the home block stays stale until a
        // checkpoint actually rewrites it
        let home_stale = shard.map.get(&bno).is_some_and(|p| p.home_stale);
        let old = shard.map.insert(
            bno,
            Page {
                data,
                class,
                dirty: true,
                home_stale,
                stamp,
            },
        );
        let was_dirty_meta = matches!(old, Some(ref p) if p.class == PageClass::Meta && p.dirty);
        let is_dirty_meta = class == PageClass::Meta;
        if is_dirty_meta && !was_dirty_meta {
            self.dirty_meta.fetch_add(1, Ordering::Relaxed);
        } else if !is_dirty_meta && was_dirty_meta {
            self.dirty_meta.fetch_sub(1, Ordering::Relaxed);
        }
        shard.lru.push_back((bno, stamp));
        self.evict_if_needed(&mut shard)
    }

    /// Patch a byte range into the cached copy of `bno` if one exists
    /// (resident or in-flight), entirely under the caller's shard lock.
    /// Returns `None` on a true miss (nothing cached to patch).
    fn patch_locked(
        &self,
        shard: &mut Shard,
        bno: u64,
        offset: usize,
        bytes: &[u8],
        class: PageClass,
        stamp: u64,
    ) -> Option<FsResult<()>> {
        if let Some(p) = shard.map.get_mut(&bno) {
            p.data[offset..offset + bytes.len()].copy_from_slice(bytes);
            let was_dirty_meta = p.class == PageClass::Meta && p.dirty;
            p.class = class;
            p.dirty = true;
            p.stamp = stamp;
            let is_dirty_meta = class == PageClass::Meta;
            if is_dirty_meta && !was_dirty_meta {
                self.dirty_meta.fetch_add(1, Ordering::Relaxed);
            } else if !is_dirty_meta && was_dirty_meta {
                self.dirty_meta.fetch_sub(1, Ordering::Relaxed);
            }
            shard.lru.push_back((bno, stamp));
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(self.evict_if_needed(shard));
        }
        if let Some(data) = shard.inflight.get(&bno) {
            // evicted but the write-back has not landed: the in-flight
            // copy is the truth — patch it and reinstall as dirty
            let mut data = data.clone();
            data[offset..offset + bytes.len()].copy_from_slice(bytes);
            shard.map.insert(
                bno,
                Page {
                    data,
                    class,
                    dirty: true,
                    home_stale: false,
                    stamp,
                },
            );
            if class == PageClass::Meta {
                self.dirty_meta.fetch_add(1, Ordering::Relaxed);
            }
            shard.lru.push_back((bno, stamp));
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(self.evict_if_needed(shard));
        }
        None
    }

    /// Read-modify-write of a byte range within a block. The patch is
    /// applied under a single shard-lock hold, so concurrent updates to
    /// *different* ranges of the same block (e.g. two inodes sharing an
    /// inode-table block) both survive.
    ///
    /// # Errors
    ///
    /// Device errors on a miss; [`FsError::Internal`] on out-of-range
    /// coordinates.
    pub fn update(&self, bno: u64, offset: usize, bytes: &[u8], class: PageClass) -> FsResult<()> {
        if offset + bytes.len() > BLOCK_SIZE {
            return Err(FsError::Internal {
                detail: "page update crosses block boundary".to_string(),
            });
        }
        let stamp = self.stamp();
        {
            let mut shard = self.shard_for(bno).lock();
            if let Some(res) = self.patch_locked(&mut shard, bno, offset, bytes, class, stamp) {
                return res;
            }
        }
        // Miss: fill from the device outside the lock, then re-check
        // for a racing writer/eviction before installing the patched
        // image (their copy would be newer than our device read).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t0 = self.telemetry.get().and_then(|t| t.layer_clock());
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev.read_block(bno, &mut buf)?;
        if let Some(t) = self.telemetry.get() {
            t.layer_observed(SpanLayer::CacheFill, t0);
        }
        let mut shard = self.shard_for(bno).lock();
        if let Some(res) = self.patch_locked(&mut shard, bno, offset, bytes, class, stamp) {
            return res;
        }
        buf[offset..offset + bytes.len()].copy_from_slice(bytes);
        shard.map.insert(
            bno,
            Page {
                data: buf,
                class,
                dirty: true,
                home_stale: false,
                stamp,
            },
        );
        if class == PageClass::Meta {
            self.dirty_meta.fetch_add(1, Ordering::Relaxed);
        }
        shard.lru.push_back((bno, stamp));
        self.evict_if_needed(&mut shard)
    }

    /// Drop the cached copy of a *freed* metadata block.
    ///
    /// A freed block's still-dirty page must not survive to the next
    /// journal commit: the commit would journal a stale image of a
    /// block that may since have been reallocated (possibly as data),
    /// and checkpoint/replay would clobber the new content. Meta pages
    /// are never in the write-back queue and freed blocks are always
    /// fully rewritten before reuse, so dropping the page outright is
    /// safe. Data-class or absent entries are left untouched.
    pub fn discard_meta(&self, bno: u64) {
        let mut shard = self.shard_for(bno).lock();
        let is_meta = matches!(shard.map.get(&bno), Some(p) if p.class == PageClass::Meta);
        if is_meta {
            let page = shard.map.remove(&bno).expect("checked above");
            if page.dirty {
                self.dirty_meta.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot all dirty metadata pages and mark them clean (the
    /// journal manager owns them from here — journal commit must follow
    /// or the images are lost).
    #[must_use]
    pub fn take_dirty_meta(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for stripe in &self.shards {
            let mut shard = stripe.lock();
            for (&bno, p) in shard.map.iter_mut() {
                if p.class == PageClass::Meta && p.dirty {
                    out.push((bno, p.data.clone()));
                    p.dirty = false;
                    p.home_stale = true; // fresh only after checkpoint
                    self.dirty_meta.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        out.sort_by_key(|(b, _)| *b);
        out
    }

    /// The journal manager rewrote every committed image at its home
    /// location: resident meta pages are no longer ahead of the device,
    /// so eviction may drop them without a write-back.
    pub fn checkpoint_done(&self) {
        for stripe in &self.shards {
            let mut shard = stripe.lock();
            for p in shard.map.values_mut() {
                p.home_stale = false;
            }
        }
    }

    /// Flip one byte of a dirty metadata page (fault-injection support
    /// for the memory-corruption bug class). Pages within
    /// `prefer_range` are chosen first so tests hit validated
    /// structures deterministically. Returns the scribbled block.
    pub fn scribble_dirty_meta(&self, prefer_range: (u64, u64)) -> Option<u64> {
        let mut candidates: Vec<u64> = Vec::new();
        for stripe in &self.shards {
            let shard = stripe.lock();
            candidates.extend(
                shard
                    .map
                    .iter()
                    .filter(|(_, p)| p.class == PageClass::Meta && p.dirty)
                    .map(|(&b, _)| b),
            );
        }
        candidates.sort_unstable();
        let target = candidates
            .iter()
            .copied()
            .find(|b| (prefer_range.0..prefer_range.1).contains(b))
            .or_else(|| candidates.first().copied())?;
        let mut shard = self.shard_for(target).lock();
        let page = shard.map.get_mut(&target)?;
        // byte 273 = offset 17 of the *second* 256-byte inode slot, so
        // an inode-table scribble damages a real inode (slot 0 is the
        // reserved null inode nothing ever reads)
        page.data[273] ^= 0x40;
        Some(target)
    }

    /// Count of dirty metadata pages (for commit-sizing decisions).
    /// O(1): maintained by an atomic counter, not a cache scan.
    #[must_use]
    pub fn dirty_meta_count(&self) -> usize {
        self.dirty_meta.load(Ordering::Relaxed)
    }

    /// Submit every dirty data page to the write-back queue and wait
    /// for the barrier (ordered-mode data flush).
    ///
    /// # Errors
    ///
    /// Asynchronous write errors surfacing at the barrier.
    pub fn flush_data(&self) -> FsResult<()> {
        for stripe in &self.shards {
            let mut shard = stripe.lock();
            let dirty: Vec<u64> = shard
                .map
                .iter()
                .filter(|(_, p)| p.class == PageClass::Data && p.dirty)
                .map(|(&b, _)| b)
                .collect();
            for bno in dirty {
                let p = shard.map.get_mut(&bno).expect("listed above");
                p.dirty = false;
                let data = p.data.clone();
                self.queue.submit(bno, data)?;
            }
        }
        self.queue.barrier()?;
        // every queued write has landed: in-flight copies are now
        // redundant with the device
        for stripe in &self.shards {
            stripe.lock().inflight.clear();
        }
        Ok(())
    }

    /// Wait for already-submitted write-back I/O to settle *without*
    /// submitting any dirty pages (contained-reboot quiescing: dirty
    /// pages are untrusted and must not reach the disk).
    ///
    /// # Errors
    ///
    /// Stale asynchronous write errors surfacing at the barrier.
    pub fn quiesce(&self) -> FsResult<()> {
        self.queue.barrier()?;
        for stripe in &self.shards {
            stripe.lock().inflight.clear();
        }
        Ok(())
    }

    /// Drop every cached page without writing anything anywhere — the
    /// contained-reboot primitive ("all the states in the base
    /// filesystem's memory are not trusted, so we need to reset them").
    pub fn discard_all(&self) {
        for stripe in &self.shards {
            let mut shard = stripe.lock();
            shard.map.clear();
            shard.lru.clear();
            shard.inflight.clear();
        }
        self.dirty_meta.store(0, Ordering::Relaxed);
    }

    /// Cache statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether a page is resident (test observability).
    #[cfg(test)]
    fn resident_contains(&self, bno: u64) -> bool {
        self.shard_for(bno).lock().map.contains_key(&bno)
    }

    /// Total in-flight (evicted-but-unbarriered) pages (test observability).
    #[cfg(test)]
    fn inflight_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().inflight.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rae_blockdev::MemDisk;

    fn cache(blocks: u64, cap: usize) -> (Arc<MemDisk>, PageCache) {
        let dev = Arc::new(MemDisk::new(blocks));
        let pc = PageCache::new(dev.clone(), cap, QueueConfig::default());
        (dev, pc)
    }

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BLOCK_SIZE]
    }

    #[test]
    fn read_caches_and_hits() {
        let (_dev, pc) = cache(8, 4);
        let _ = pc.read(3, PageClass::Data).unwrap();
        let _ = pc.read(3, PageClass::Data).unwrap();
        let s = pc.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn small_capacity_collapses_to_one_shard_large_gets_striped() {
        let dev = Arc::new(MemDisk::new(8));
        let small = PageCache::new(dev.clone(), 4, QueueConfig::default());
        assert_eq!(small.shard_count(), 1);
        let large = PageCache::new(dev.clone(), 2048, QueueConfig::default());
        assert_eq!(large.shard_count(), DEFAULT_CACHE_SHARDS);
        let pinned = PageCache::with_shards(dev, 2048, QueueConfig::default(), 3);
        assert_eq!(pinned.shard_count(), 3);
    }

    #[test]
    fn sharded_cache_keeps_contents_and_counters_consistent() {
        let dev = Arc::new(MemDisk::new(256));
        let pc = PageCache::with_shards(dev, 128, QueueConfig::default(), 4);
        for bno in 0..32u64 {
            pc.write(bno, block(bno as u8), PageClass::Meta).unwrap();
        }
        assert_eq!(pc.dirty_meta_count(), 32);
        for bno in 0..32u64 {
            assert_eq!(pc.read(bno, PageClass::Meta).unwrap()[0], bno as u8);
        }
        let taken = pc.take_dirty_meta();
        assert_eq!(taken.len(), 32);
        assert!(
            taken.windows(2).all(|w| w[0].0 < w[1].0),
            "globally sorted across shards"
        );
        assert_eq!(pc.dirty_meta_count(), 0);
    }

    #[test]
    fn write_then_read_returns_new_content_without_disk_write() {
        let (dev, pc) = cache(8, 4);
        pc.write(2, block(9), PageClass::Data).unwrap();
        assert_eq!(pc.read(2, PageClass::Data).unwrap()[0], 9);
        // not yet on disk (write-back)
        let mut raw = block(0);
        dev.read_block(2, &mut raw).unwrap();
        assert_eq!(raw[0], 0);
        // flush pushes it out
        pc.flush_data().unwrap();
        dev.read_block(2, &mut raw).unwrap();
        assert_eq!(raw[0], 9);
    }

    #[test]
    fn eviction_writes_back_dirty_data() {
        let (dev, pc) = cache(16, 2);
        pc.write(0, block(1), PageClass::Data).unwrap();
        pc.write(1, block(2), PageClass::Data).unwrap();
        pc.write(2, block(3), PageClass::Data).unwrap(); // evicts block 0
        assert!(pc.resident() <= 2);
        pc.flush_data().unwrap(); // barrier also waits for eviction writes
        let mut raw = block(0);
        dev.read_block(0, &mut raw).unwrap();
        assert_eq!(raw[0], 1, "evicted dirty page reached the disk");
        assert!(pc.stats().evictions >= 1);
    }

    #[test]
    fn dirty_meta_is_pinned_not_evicted() {
        let (dev, pc) = cache(16, 2);
        pc.write(0, block(7), PageClass::Meta).unwrap();
        pc.write(1, block(8), PageClass::Meta).unwrap();
        // inserting more data pages must not push dirty meta to disk
        for i in 2..6 {
            pc.write(i, block(i as u8), PageClass::Data).unwrap();
        }
        pc.flush_data().unwrap();
        let mut raw = block(0);
        dev.read_block(0, &mut raw).unwrap();
        assert_eq!(raw[0], 0, "dirty metadata never reaches disk directly");
        assert_eq!(pc.dirty_meta_count(), 2);
    }

    #[test]
    fn take_dirty_meta_hands_over_images_once() {
        let (_dev, pc) = cache(16, 8);
        pc.write(5, block(5), PageClass::Meta).unwrap();
        pc.write(3, block(3), PageClass::Meta).unwrap();
        pc.write(9, block(9), PageClass::Data).unwrap();

        let metas = pc.take_dirty_meta();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].0, 3, "sorted by block number");
        assert_eq!(metas[1].0, 5);
        assert!(pc.take_dirty_meta().is_empty(), "marked clean");
    }

    #[test]
    fn dirty_meta_counter_tracks_transitions() {
        let (_dev, pc) = cache(16, 8);
        assert_eq!(pc.dirty_meta_count(), 0);
        pc.write(1, block(1), PageClass::Meta).unwrap();
        assert_eq!(pc.dirty_meta_count(), 1);
        // re-dirtying the same page must not double-count
        pc.write(1, block(2), PageClass::Meta).unwrap();
        pc.update(1, 0, &[3], PageClass::Meta).unwrap();
        assert_eq!(pc.dirty_meta_count(), 1);
        pc.write(2, block(2), PageClass::Data).unwrap();
        assert_eq!(pc.dirty_meta_count(), 1, "data pages never counted");
        let _ = pc.take_dirty_meta();
        assert_eq!(pc.dirty_meta_count(), 0);
        // dirty again after handover
        pc.update(1, 0, &[4], PageClass::Meta).unwrap();
        assert_eq!(pc.dirty_meta_count(), 1);
        pc.discard_all();
        assert_eq!(pc.dirty_meta_count(), 0);
    }

    #[test]
    fn update_modifies_a_range() {
        let (_dev, pc) = cache(8, 4);
        pc.write(1, block(0), PageClass::Meta).unwrap();
        pc.update(1, 100, &[1, 2, 3], PageClass::Meta).unwrap();
        let data = pc.read(1, PageClass::Meta).unwrap();
        assert_eq!(&data[100..103], &[1, 2, 3]);
        assert_eq!(data[99], 0);
        assert!(pc
            .update(1, BLOCK_SIZE - 1, &[1, 2], PageClass::Meta)
            .is_err());
    }

    #[test]
    fn discard_all_loses_uncommitted_state() {
        let (dev, pc) = cache(8, 4);
        pc.write(2, block(42), PageClass::Meta).unwrap();
        pc.discard_all();
        assert_eq!(pc.resident(), 0);
        // the next read sees the (stale) disk content — exactly what a
        // contained reboot wants
        assert_eq!(pc.read(2, PageClass::Meta).unwrap()[0], 0);
        let mut raw = block(9);
        dev.read_block(2, &mut raw).unwrap();
        assert_eq!(raw[0], 0);
    }

    #[test]
    fn clean_meta_is_evictable() {
        let (_dev, pc) = cache(16, 2);
        pc.write(0, block(1), PageClass::Meta).unwrap();
        let _ = pc.take_dirty_meta(); // now clean
        pc.write(1, block(2), PageClass::Data).unwrap();
        pc.write(2, block(3), PageClass::Data).unwrap();
        pc.write(3, block(4), PageClass::Data).unwrap();
        assert!(pc.resident() <= 2, "clean meta evicted normally");
    }

    /// Regression test: a committed-but-not-checkpointed meta page must
    /// survive eviction with its committed content (the home block on
    /// the device is still stale until checkpoint).
    #[test]
    fn committed_meta_evicted_before_checkpoint_rereads_fresh() {
        let (dev, pc) = cache(16, 2);
        pc.write(0, block(7), PageClass::Meta).unwrap();
        let taken = pc.take_dirty_meta(); // journal owns the image now
        assert_eq!(taken.len(), 1);
        // evict block 0 with data traffic
        pc.write(1, block(2), PageClass::Data).unwrap();
        pc.write(2, block(3), PageClass::Data).unwrap();
        pc.write(3, block(4), PageClass::Data).unwrap();
        assert!(pc.resident() <= 2);
        // re-read must see the committed image, not the stale device
        assert_eq!(pc.read(0, PageClass::Meta).unwrap()[0], 7);
        pc.flush_data().unwrap();
        let mut raw = block(0);
        dev.read_block(0, &mut raw).unwrap();
        assert_eq!(raw[0], 7, "eviction wrote the committed image home");
    }

    /// After a checkpoint the home blocks are fresh, so evicting clean
    /// meta writes nothing.
    #[test]
    fn checkpointed_meta_evicts_without_writeback() {
        let (dev, pc) = cache(16, 2);
        pc.write(0, block(7), PageClass::Meta).unwrap();
        let _ = pc.take_dirty_meta();
        pc.checkpoint_done(); // home is (notionally) rewritten
        pc.write(1, block(2), PageClass::Data).unwrap();
        pc.write(2, block(3), PageClass::Data).unwrap();
        pc.write(3, block(4), PageClass::Data).unwrap();
        pc.flush_data().unwrap();
        let mut raw = block(9);
        dev.read_block(0, &mut raw).unwrap();
        assert_eq!(raw[0], 0, "no write-back for checkpointed meta");
    }

    #[test]
    fn lru_order_prefers_cold_pages() {
        let (_dev, pc) = cache(16, 3);
        pc.write(0, block(0), PageClass::Data).unwrap();
        pc.write(1, block(1), PageClass::Data).unwrap();
        pc.write(2, block(2), PageClass::Data).unwrap();
        // touch 0 so 1 is the coldest
        let _ = pc.read(0, PageClass::Data).unwrap();
        pc.write(3, block(3), PageClass::Data).unwrap();
        assert!(pc.resident_contains(0), "recently touched page survived");
        assert!(!pc.resident_contains(1), "cold page evicted");
    }

    /// Regression test: `update` must be an atomic read-modify-write.
    /// Two mutators patching *different* byte ranges of the same block
    /// (two inodes sharing an inode-table block) must both survive —
    /// the old read-then-write implementation could lose one.
    #[test]
    fn concurrent_subblock_updates_do_not_lose_writes() {
        use std::thread;
        let dev = Arc::new(MemDisk::new(64));
        let pc = Arc::new(PageCache::with_shards(dev, 128, QueueConfig::default(), 4));
        pc.write(0, block(0), PageClass::Meta).unwrap();
        let mut handles = Vec::new();
        for t in 0..8usize {
            let pc = Arc::clone(&pc);
            handles.push(thread::spawn(move || {
                for round in 1..=200u64 {
                    let fill = [(t as u8 + 1) * 10 + (round % 10) as u8; 16];
                    pc.update(0, t * 16, &fill, PageClass::Meta).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let data = pc.read(0, PageClass::Meta).unwrap();
        for t in 0..8usize {
            let expect = (t as u8 + 1) * 10; // round 200 → round % 10 == 0
            assert!(
                data[t * 16..(t + 1) * 16].iter().all(|&b| b == expect),
                "thread {t}'s final update was lost"
            );
        }
        assert_eq!(
            pc.dirty_meta_count(),
            1,
            "one dirty meta page, counted once"
        );
    }

    #[test]
    fn concurrent_readers_hit_distinct_shards() {
        use std::thread;
        let dev = Arc::new(MemDisk::new(512));
        let pc = Arc::new(PageCache::with_shards(
            dev,
            256,
            QueueConfig::default(),
            DEFAULT_CACHE_SHARDS,
        ));
        for bno in 0..64u64 {
            pc.write(bno, block(bno as u8), PageClass::Data).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pc = Arc::clone(&pc);
            handles.push(thread::spawn(move || {
                for round in 0..200u64 {
                    let bno = (t * 17 + round) % 64;
                    let data = pc.read(bno, PageClass::Data).unwrap();
                    assert_eq!(data[0], bno as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(pc.stats().hits >= 4 * 200);
    }
}

#[cfg(test)]
mod writeback_race_tests {
    use super::*;
    use rae_blockdev::MemDisk;

    /// Regression test for the eviction/read race: an evicted dirty
    /// page must stay readable with its *new* content even before the
    /// queued write lands.
    #[test]
    fn evicted_dirty_page_reads_new_content() {
        let dev = Arc::new(MemDisk::new(64));
        // depth-1 queue with one worker: submissions linger
        let pc = PageCache::new(
            dev.clone(),
            2,
            QueueConfig {
                nr_queues: 1,
                queue_depth: 1,
            },
        );
        for round in 0..50u8 {
            pc.write(0, vec![round; BLOCK_SIZE], PageClass::Data)
                .unwrap();
            // force eviction of block 0 by touching other blocks
            pc.write(
                1 + u64::from(round % 8),
                vec![0xEE; BLOCK_SIZE],
                PageClass::Data,
            )
            .unwrap();
            pc.write(
                9 + u64::from(round % 8),
                vec![0xEE; BLOCK_SIZE],
                PageClass::Data,
            )
            .unwrap();
            let back = pc.read(0, PageClass::Data).unwrap();
            assert!(
                back.iter().all(|&b| b == round),
                "round {round}: stale read after eviction"
            );
        }
        pc.flush_data().unwrap();
        let mut raw = vec![0u8; BLOCK_SIZE];
        dev.read_block(0, &mut raw).unwrap();
        assert!(raw.iter().all(|&b| b == 49));
    }

    #[test]
    fn inflight_cleared_after_barrier() {
        let dev = Arc::new(MemDisk::new(16));
        let pc = PageCache::new(dev, 2, QueueConfig::default());
        pc.write(0, vec![1; BLOCK_SIZE], PageClass::Data).unwrap();
        pc.write(1, vec![2; BLOCK_SIZE], PageClass::Data).unwrap();
        pc.write(2, vec![3; BLOCK_SIZE], PageClass::Data).unwrap();
        pc.flush_data().unwrap();
        assert_eq!(pc.inflight_len(), 0);
    }
}
