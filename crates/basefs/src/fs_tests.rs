//! Unit and conformance tests for [`BaseFs`].

use crate::fs::{BaseFs, BaseFsConfig};
use rae_blockdev::{BlockDevice, MemDisk, BLOCK_SIZE};
use rae_faults::{BugSpec, Effect, FaultRegistry, Site, Trigger};
use rae_fsformat::{fsck, mkfs, MkfsParams};
use rae_vfs::{Fd, FileSystem, FileType, FsError, OpenFlags, SetAttr, FIRST_FD};
use std::sync::Arc;

fn fresh() -> (Arc<MemDisk>, BaseFs) {
    fresh_with(BaseFsConfig::default())
}

fn fresh_with(config: BaseFsConfig) -> (Arc<MemDisk>, BaseFs) {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, config).unwrap();
    (dev, fs)
}

fn rw_create() -> OpenFlags {
    OpenFlags::RDWR | OpenFlags::CREATE
}

#[test]
fn create_write_read_roundtrip() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/hello.txt", rw_create()).unwrap();
    assert_eq!(fd, Fd(FIRST_FD));
    assert_eq!(fs.write(fd, 0, b"hello world").unwrap(), 11);
    assert_eq!(fs.read(fd, 0, 100).unwrap(), b"hello world");
    assert_eq!(fs.read(fd, 6, 5).unwrap(), b"world");
    fs.close(fd).unwrap();
}

#[test]
fn multi_block_and_indirect_files() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/big", rw_create()).unwrap();
    // 20 blocks: spans direct (12) into single-indirect territory
    let payload: Vec<u8> = (0..20 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
    assert_eq!(fs.write(fd, 0, &payload).unwrap(), payload.len());
    let back = fs.read(fd, 0, payload.len()).unwrap();
    assert_eq!(back, payload);
    // unaligned read across a block boundary
    let cross = fs.read(fd, BLOCK_SIZE as u64 - 10, 20).unwrap();
    assert_eq!(&cross[..], &payload[BLOCK_SIZE - 10..BLOCK_SIZE + 10]);
    let st = fs.fstat(fd).unwrap();
    assert_eq!(st.size, payload.len() as u64);
    assert_eq!(st.blocks, 21, "20 data + 1 indirect");
    fs.close(fd).unwrap();
}

#[test]
fn double_indirect_reach() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/huge", rw_create()).unwrap();
    // write one block at file-block index 12+512+5 (double-indirect)
    let idx = (12 + 512 + 5) as u64;
    let off = idx * BLOCK_SIZE as u64;
    fs.write(fd, off, b"deep block").unwrap();
    assert_eq!(fs.read(fd, off, 10).unwrap(), b"deep block");
    // the hole before it reads as zeroes
    assert_eq!(fs.read(fd, 0, 4).unwrap(), vec![0u8; 4]);
    let st = fs.fstat(fd).unwrap();
    assert_eq!(st.size, off + 10);
    assert_eq!(st.blocks, 3, "1 data + dindirect + 1 L1");
    fs.close(fd).unwrap();
}

#[test]
fn sparse_files_read_zeroes_and_survive_sync() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/sparse", rw_create()).unwrap();
    fs.write(fd, 3 * BLOCK_SIZE as u64, b"x").unwrap();
    assert_eq!(fs.read(fd, 0, 4).unwrap(), vec![0; 4]);
    fs.fsync(fd).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().blocks, 1);
    fs.close(fd).unwrap();
}

#[test]
fn append_mode() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/log", rw_create() | OpenFlags::APPEND).unwrap();
    fs.write(fd, 999, b"aa").unwrap();
    fs.write(fd, 0, b"bb").unwrap();
    assert_eq!(fs.read(fd, 0, 10).unwrap(), b"aabb");
    fs.close(fd).unwrap();
}

#[test]
fn truncate_shrink_zero_fills_tail_on_reextension() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/t", rw_create()).unwrap();
    fs.write(fd, 0, &[0xFFu8; 100]).unwrap();
    fs.truncate(fd, 50).unwrap();
    fs.truncate(fd, 100).unwrap();
    let back = fs.read(fd, 0, 100).unwrap();
    assert_eq!(&back[..50], &[0xFFu8; 50][..]);
    assert_eq!(&back[50..], &[0u8; 50][..], "stale bytes must not reappear");
    fs.close(fd).unwrap();
}

#[test]
fn truncate_frees_blocks() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/t", rw_create()).unwrap();
    let before = fs.statfs().unwrap().free_blocks;
    let payload = vec![1u8; 20 * BLOCK_SIZE];
    fs.write(fd, 0, &payload).unwrap();
    let during = fs.statfs().unwrap().free_blocks;
    assert_eq!(before - during, 21);
    fs.truncate(fd, 0).unwrap();
    assert_eq!(fs.statfs().unwrap().free_blocks, before);
    assert_eq!(fs.fstat(fd).unwrap().blocks, 0);
    fs.close(fd).unwrap();
}

#[test]
fn freed_metadata_block_reused_as_data_survives_checkpoint() {
    // Block-reuse vs checkpoint hazard: a directory block is committed
    // to the journal (pending, not yet checkpointed), the directory is
    // removed, and the freed block is reallocated as file data — which
    // reaches its home location directly in ordered mode. The stale
    // pending image must not overwrite the file at the next checkpoint.
    let dev = Arc::new(MemDisk::new(512));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 512,
            inode_count: 128,
            journal_blocks: 64,
        },
    )
    .unwrap();
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();

    fs.mkdir("/d").unwrap();
    let fd = fs.open("/d/f", rw_create()).unwrap();
    fs.close(fd).unwrap();
    fs.sync().unwrap(); // the dir block image is now pending

    fs.unlink("/d/f").unwrap();
    fs.rmdir("/d").unwrap(); // frees the dir block

    // Fill every remaining free block so the roving allocator wraps
    // around and reuses the freed one, then checkpoint and reboot so
    // reads come from disk rather than the page cache.
    let pattern = |i: u64| vec![(i % 251) as u8 + 1; BLOCK_SIZE];
    let fd = fs.open("/fill", rw_create()).unwrap();
    let mut written = 0u64;
    loop {
        match fs.write(fd, written * BLOCK_SIZE as u64, &pattern(written)) {
            Ok(_) => written += 1,
            Err(FsError::NoSpace) => break,
            Err(e) => panic!("unexpected error while filling: {e}"),
        }
    }
    assert!(written > 0, "the fill file must allocate blocks");
    fs.close(fd).unwrap();
    fs.checkpoint().unwrap();
    fs.contained_reboot().unwrap();

    let fd = fs.open("/fill", OpenFlags::RDONLY).unwrap();
    for i in 0..written {
        let back = fs.read(fd, i * BLOCK_SIZE as u64, BLOCK_SIZE).unwrap();
        assert_eq!(
            back,
            pattern(i),
            "block {i} of the fill file was overwritten by a stale checkpoint image"
        );
    }
    fs.close(fd).unwrap();
}

#[test]
fn directory_tree_operations() {
    let (_dev, fs) = fresh();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.mkdir("/a/b/c").unwrap();
    assert_eq!(fs.mkdir("/a"), Err(FsError::Exists));
    assert_eq!(fs.mkdir("/x/y"), Err(FsError::NotFound));

    let fd = fs.open("/a/b/file", rw_create()).unwrap();
    fs.close(fd).unwrap();

    let names: Vec<String> = fs
        .readdir("/a/b")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names.len(), 2);
    assert!(names.contains(&"c".to_string()));
    assert!(names.contains(&"file".to_string()));

    assert_eq!(fs.rmdir("/a/b"), Err(FsError::NotEmpty));
    fs.unlink("/a/b/file").unwrap();
    fs.rmdir("/a/b/c").unwrap();
    fs.rmdir("/a/b").unwrap();
    fs.rmdir("/a").unwrap();
    assert!(fs.readdir("/").unwrap().is_empty());
}

#[test]
fn large_directory_spans_blocks() {
    let (_dev, fs) = fresh();
    fs.mkdir("/big").unwrap();
    // ~1000 entries with 40-byte names: > 3 blocks of dirents
    for i in 0..1000 {
        let path = format!("/big/{:040}", i);
        let fd = fs.open(&path, rw_create()).unwrap();
        fs.close(fd).unwrap();
    }
    assert_eq!(fs.readdir("/big").unwrap().len(), 1000);
    let st = fs.stat("/big").unwrap();
    assert!(st.size >= 4 * BLOCK_SIZE as u64, "dir grew to {}", st.size);
    // delete them all; the directory shrinks back
    for i in 0..1000 {
        fs.unlink(&format!("/big/{:040}", i)).unwrap();
    }
    assert!(fs.readdir("/big").unwrap().is_empty());
    assert_eq!(
        fs.stat("/big").unwrap().size,
        0,
        "trailing blocks reclaimed"
    );
    fs.rmdir("/big").unwrap();
}

#[test]
fn rename_semantics_match_the_model() {
    let (_dev, fs) = fresh();
    fs.mkdir("/d1").unwrap();
    fs.mkdir("/d2").unwrap();
    let fd = fs.open("/d1/f", rw_create()).unwrap();
    fs.write(fd, 0, b"content").unwrap();
    fs.close(fd).unwrap();

    fs.rename("/d1/f", "/d2/g").unwrap();
    assert_eq!(fs.stat("/d1/f"), Err(FsError::NotFound));
    assert_eq!(fs.stat("/d2/g").unwrap().size, 7);

    // directory rename updates parent link counts
    assert_eq!(fs.stat("/").unwrap().nlink, 4, "root + d1 + d2");
    fs.rename("/d2", "/d1/d2moved").unwrap();
    assert_eq!(fs.stat("/").unwrap().nlink, 3);
    assert_eq!(fs.stat("/d1").unwrap().nlink, 3);
    assert_eq!(fs.stat("/d1/d2moved/g").unwrap().size, 7);

    // loop prevention
    assert_eq!(
        fs.rename("/d1", "/d1/d2moved/inner"),
        Err(FsError::RenameLoop)
    );
    // replacing an open file is Busy
    let held = fs.open("/d1/d2moved/g", OpenFlags::RDONLY).unwrap();
    let fd2 = fs.open("/other", rw_create()).unwrap();
    fs.close(fd2).unwrap();
    assert_eq!(fs.rename("/other", "/d1/d2moved/g"), Err(FsError::Busy));
    fs.close(held).unwrap();
    fs.rename("/other", "/d1/d2moved/g").unwrap();
}

#[test]
fn hard_links_and_nlink() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/a", rw_create()).unwrap();
    fs.write(fd, 0, b"shared").unwrap();
    fs.close(fd).unwrap();
    fs.link("/a", "/b").unwrap();
    assert_eq!(fs.stat("/a").unwrap().nlink, 2);
    assert_eq!(fs.stat("/a").unwrap().ino, fs.stat("/b").unwrap().ino);
    fs.unlink("/a").unwrap();
    assert_eq!(fs.stat("/b").unwrap().nlink, 1);
    let fd = fs.open("/b", OpenFlags::RDONLY).unwrap();
    assert_eq!(fs.read(fd, 0, 6).unwrap(), b"shared");
    fs.close(fd).unwrap();
    // freeing the last link releases the inode and blocks
    let free_before = fs.statfs().unwrap().free_inodes;
    fs.unlink("/b").unwrap();
    assert_eq!(fs.statfs().unwrap().free_inodes, free_before + 1);
}

#[test]
fn symlink_roundtrip() {
    let (_dev, fs) = fresh();
    fs.symlink("/target/path", "/s").unwrap();
    assert_eq!(fs.readlink("/s").unwrap(), "/target/path");
    assert_eq!(fs.stat("/s").unwrap().ftype, FileType::Symlink);
    assert_eq!(
        fs.open("/s", OpenFlags::RDONLY),
        Err(FsError::InvalidArgument)
    );
    fs.symlink("", "/empty").unwrap();
    assert_eq!(fs.readlink("/empty").unwrap(), "");
    fs.unlink("/s").unwrap();
    assert_eq!(fs.readlink("/s"), Err(FsError::NotFound));
}

#[test]
fn unlink_open_file_is_busy() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    assert_eq!(fs.unlink("/f"), Err(FsError::Busy));
    fs.close(fd).unwrap();
    fs.unlink("/f").unwrap();
}

#[test]
fn setattr_size() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, b"0123456789").unwrap();
    fs.close(fd).unwrap();
    fs.setattr(
        "/f",
        SetAttr {
            size: Some(4),
            mtime: None,
        },
    )
    .unwrap();
    assert_eq!(fs.stat("/f").unwrap().size, 4);
    fs.mkdir("/d").unwrap();
    assert_eq!(
        fs.setattr(
            "/d",
            SetAttr {
                size: Some(0),
                mtime: None
            }
        ),
        Err(FsError::IsDir)
    );
}

#[test]
fn nospace_is_all_or_nothing() {
    let dev = Arc::new(MemDisk::new(512));
    mkfs(dev.as_ref(), MkfsParams::tiny()).unwrap();
    let fs = BaseFs::mount(dev as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    let fd = fs.open("/fill", rw_create()).unwrap();
    let free = fs.statfs().unwrap().free_blocks;
    // try to write more than fits: must fail without partial allocation
    let too_big = vec![7u8; ((free + 10) as usize) * BLOCK_SIZE];
    assert_eq!(fs.write(fd, 0, &too_big), Err(FsError::NoSpace));
    assert_eq!(fs.fstat(fd).unwrap().size, 0, "no partial write");
    assert_eq!(fs.statfs().unwrap().free_blocks, free, "no leaked blocks");
    // a fitting write still succeeds
    fs.write(fd, 0, &vec![7u8; 4 * BLOCK_SIZE]).unwrap();
    fs.close(fd).unwrap();
}

#[test]
fn durability_crash_without_sync_loses_data() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    let fd = fs.open("/doomed", rw_create()).unwrap();
    fs.write(fd, 0, b"never synced").unwrap();
    fs.crash();

    let fs2 = BaseFs::mount(dev as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    assert_eq!(
        fs2.stat("/doomed"),
        Err(FsError::NotFound),
        "unsynced create lost on crash (write-back gap)"
    );
}

#[test]
fn durability_fsync_survives_crash() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    fs.mkdir("/dir").unwrap();
    let fd = fs.open("/dir/kept", rw_create()).unwrap();
    fs.write(fd, 0, b"precious data").unwrap();
    fs.fsync(fd).unwrap();
    // post-fsync modifications are lost, pre-fsync ones survive
    fs.write(fd, 0, b"SCRIBBLED OVER").unwrap();
    fs.crash();

    let fs2 = BaseFs::mount(dev as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    let fd = fs2.open("/dir/kept", OpenFlags::RDONLY).unwrap();
    assert_eq!(fs2.read(fd, 0, 13).unwrap(), b"precious data");
    fs2.close(fd).unwrap();
}

#[test]
fn unmount_produces_fsck_clean_image() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    let fd = fs.open("/a/f1", rw_create()).unwrap();
    fs.write(fd, 0, &vec![5u8; 3 * BLOCK_SIZE + 17]).unwrap();
    fs.close(fd).unwrap();
    fs.link("/a/f1", "/a/b/f1-link").unwrap();
    fs.symlink("/a/f1", "/a/s").unwrap();
    let fd = fs.open("/a/f2", rw_create()).unwrap();
    fs.write(fd, 0, b"x").unwrap();
    fs.close(fd).unwrap();
    fs.unlink("/a/f2").unwrap();
    fs.rename("/a/b", "/a/c").unwrap();
    fs.unmount().unwrap();

    let report = fsck(dev.as_ref()).unwrap();
    assert!(report.is_clean(), "fsck after unmount: {report}");
}

#[test]
fn crash_then_mount_produces_fsck_consistent_image() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(dev.as_ref(), MkfsParams::default()).unwrap();
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    for i in 0..20 {
        fs.mkdir(&format!("/d{i}")).unwrap();
        let fd = fs.open(&format!("/d{i}/f"), rw_create()).unwrap();
        fs.write(fd, 0, &vec![i as u8; 1000]).unwrap();
        fs.close(fd).unwrap();
        if i == 10 {
            fs.sync().unwrap();
        }
    }
    fs.crash();
    // journal replay happens inside mount; unmount then checks cleanly
    let fs2 = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    assert!(fs2.stat("/d10/f").is_ok(), "synced state survived");
    fs2.unmount().unwrap();
    let report = fsck(dev.as_ref()).unwrap();
    assert!(report.is_clean(), "fsck after crash+mount: {report}");
}

#[test]
fn caches_accelerate_repeat_lookups() {
    let (_dev, fs) = fresh();
    fs.mkdir("/warm").unwrap();
    let fd = fs.open("/warm/file", rw_create()).unwrap();
    fs.write(fd, 0, b"data").unwrap();
    fs.close(fd).unwrap();
    for _ in 0..100 {
        let _ = fs.stat("/warm/file").unwrap();
    }
    let stats = fs.stats();
    assert!(
        stats.dentry_hits > 150,
        "dentry cache barely used: {stats:?}"
    );
}

#[test]
fn injected_detected_error_surfaces() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        500,
        "alloc-bug",
        Site::Alloc,
        Trigger::NthMatch(3),
        Effect::DetectedError,
    ));
    let (_dev, fs) = fresh_with(BaseFsConfig {
        faults,
        ..BaseFsConfig::default()
    });
    let fd = fs.open("/a", rw_create()).unwrap(); // alloc visit 1
    fs.close(fd).unwrap();
    fs.mkdir("/d1").unwrap(); // alloc visit 2
    assert_eq!(fs.mkdir("/d2"), Err(FsError::DetectedBug { bug_id: 500 }));
    // the failed op must not have half-applied
    assert_eq!(fs.stat("/d2"), Err(FsError::NotFound));
}

#[test]
fn injected_panic_unwinds() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        501,
        "rename-crash",
        Site::Rename,
        Trigger::PathContains("victim".into()),
        Effect::Panic,
    ));
    let (_dev, fs) = fresh_with(BaseFsConfig {
        faults,
        ..BaseFsConfig::default()
    });
    let fd = fs.open("/victim-file", rw_create()).unwrap();
    fs.close(fd).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = fs.rename("/victim-file", "/renamed");
    }));
    assert!(result.is_err(), "injected panic must unwind");
}

#[test]
fn injected_silent_corruption_flips_written_data() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        502,
        "silent-writer",
        Site::Write,
        Trigger::NthMatch(2),
        Effect::SilentWrongResult,
    ));
    let (_dev, fs) = fresh_with(BaseFsConfig {
        faults: faults.clone(),
        ..BaseFsConfig::default()
    });
    let fd = fs.open("/f", rw_create()).unwrap();
    fs.write(fd, 0, b"AAAA").unwrap(); // clean
    fs.write(fd, 4, b"BBBB").unwrap(); // corrupted silently
    let back = fs.read(fd, 0, 8).unwrap();
    assert_eq!(&back[..4], b"AAAA");
    assert_ne!(&back[4..], b"BBBB", "silent corruption landed");
    assert_eq!(back[4], b'B' ^ 0x01);
    assert_eq!(faults.fired(502), 1);
    fs.close(fd).unwrap();
}

#[test]
fn warn_effects_continue_execution() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        503,
        "warn-bug",
        Site::ApiEntry,
        Trigger::Always,
        Effect::Warn,
    ));
    let (_dev, fs) = fresh_with(BaseFsConfig {
        faults: faults.clone(),
        ..BaseFsConfig::default()
    });
    fs.mkdir("/survives").unwrap();
    assert!(fs.stat("/survives").is_ok());
    assert!(faults.warn_count() > 0);
}

#[test]
fn contained_reboot_resets_to_durable_state() {
    let (_dev, fs) = fresh();
    fs.mkdir("/durable").unwrap();
    fs.sync().unwrap();
    fs.mkdir("/volatile").unwrap();
    let fd = fs.open("/durable/open-file", rw_create()).unwrap();

    fs.contained_reboot().unwrap();

    // durable state is back, volatile state is gone, descriptors are
    // gone (the RAE layer reconstructs them via the shadow)
    assert!(fs.stat("/durable").is_ok());
    assert_eq!(fs.stat("/volatile"), Err(FsError::NotFound));
    assert_eq!(fs.read(fd, 0, 1), Err(FsError::BadFd));
    assert_eq!(fs.stats().open_fds, 0);
    // the filesystem still works
    fs.mkdir("/after").unwrap();
    assert!(fs.stat("/after").is_ok());
}

#[test]
fn absorb_recovery_installs_descriptors() {
    use rae_fsformat::{RecoveredFd, RecoveryDelta};
    let (_dev, fs) = fresh();
    let fd = fs.open("/f", rw_create()).unwrap();
    let ino = fs.fstat(fd).unwrap().ino;
    fs.sync().unwrap();
    fs.contained_reboot().unwrap();

    // minimal delta: no blocks changed (everything was durable), just
    // the descriptor table
    let delta = RecoveryDelta {
        meta_blocks: vec![],
        data_blocks: vec![],
        fd_entries: vec![RecoveredFd {
            fd,
            ino,
            flags: rw_create(),
            path: "/f".into(),
        }],
    };
    fs.absorb_recovery(&delta).unwrap();
    assert_eq!(fs.fstat(fd).unwrap().ino, ino, "descriptor lives again");
    fs.write(fd, 0, b"post-recovery").unwrap();
    assert_eq!(fs.read(fd, 0, 13).unwrap(), b"post-recovery");
}

#[test]
fn persisted_seq_advances_on_commit() {
    let (_dev, fs) = fresh();
    assert_eq!(fs.persisted_seq(), 0);
    fs.note_op_seq(7);
    fs.mkdir("/d").unwrap();
    assert_eq!(fs.persisted_seq(), 0, "nothing durable yet");
    fs.note_op_seq(8);
    fs.sync().unwrap();
    assert_eq!(fs.persisted_seq(), 8, "commit publishes the barrier");
}

#[test]
fn journal_full_triggers_checkpoint_not_failure() {
    let dev = Arc::new(MemDisk::new(4096));
    mkfs(
        dev.as_ref(),
        MkfsParams {
            total_blocks: 4096,
            inode_count: 1024,
            journal_blocks: 16, // tiny journal: constant checkpointing
        },
    )
    .unwrap();
    let fs = BaseFs::mount(dev.clone() as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap();
    for i in 0..50 {
        fs.mkdir(&format!("/d{i}")).unwrap();
        fs.sync().unwrap();
    }
    assert!(fs.stats().journal_checkpoints > 0);
    fs.unmount().unwrap();
    assert!(fsck(dev.as_ref()).unwrap().is_clean());
}

#[test]
fn concurrent_readers_and_writers() {
    let (_dev, fs) = fresh();
    let fs = Arc::new(fs);
    for i in 0..4 {
        let fd = fs.open(&format!("/t{i}"), rw_create()).unwrap();
        fs.write(fd, 0, &vec![i as u8; BLOCK_SIZE]).unwrap();
        fs.close(fd).unwrap();
    }
    let mut handles = Vec::new();
    for i in 0..4u8 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let fd = fs.open(&format!("/t{i}"), OpenFlags::RDWR).unwrap();
                let data = fs.read(fd, 0, BLOCK_SIZE).unwrap();
                assert!(data.iter().all(|&b| b == i));
                fs.write(fd, 0, &vec![i; BLOCK_SIZE]).unwrap();
                fs.close(fd).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn mount_rejects_garbage_device() {
    let dev = Arc::new(MemDisk::new(64));
    let err = BaseFs::mount(dev as Arc<dyn BlockDevice>, BaseFsConfig::default()).unwrap_err();
    assert!(matches!(err, FsError::Corrupted { .. }));
}

#[test]
fn io_counters_accumulate() {
    let (_dev, fs) = fresh();
    let fd = fs.open("/c", rw_create()).unwrap();
    fs.write(fd, 0, b"12345").unwrap();
    let _ = fs.read(fd, 0, 5).unwrap();
    fs.close(fd).unwrap();
    assert_eq!(fs.counters().bytes_written(), 5);
    assert_eq!(fs.counters().bytes_read(), 5);
    assert_eq!(fs.counters().count(rae_vfs::OpKind::Open), 1);
}

#[test]
fn validate_on_commit_catches_scribbled_metadata() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        600,
        "memory-scribbler",
        Site::Write,
        Trigger::NthMatch(1),
        Effect::CorruptMetadata,
    ));
    let (_dev, fs) = fresh_with(BaseFsConfig {
        faults: faults.clone(),
        ..BaseFsConfig::default()
    });
    fs.mkdir("/d").unwrap(); // dirties an inode-table page
    let fd = fs.open("/d/f", rw_create()).unwrap();
    fs.write(fd, 0, b"trigger").unwrap(); // bug scribbles dirty metadata
    assert_eq!(faults.fired(600), 1);

    // nothing failed yet (the scribble is silent) — but the commit
    // validation refuses to persist the damaged image
    let err = fs.sync().unwrap_err();
    assert!(
        matches!(err, FsError::Corrupted { ref detail } if detail.contains("validate-on-commit")),
        "{err}"
    );
}

#[test]
fn validate_on_commit_can_be_disabled() {
    let faults = FaultRegistry::new();
    faults.arm(BugSpec::new(
        601,
        "memory-scribbler",
        Site::Write,
        Trigger::NthMatch(1),
        Effect::CorruptMetadata,
    ));
    let (dev, fs) = fresh_with(BaseFsConfig {
        faults,
        validate_on_commit: false,
        ..BaseFsConfig::default()
    });
    fs.mkdir("/d").unwrap();
    let fd = fs.open("/d/f", rw_create()).unwrap();
    fs.write(fd, 0, b"trigger").unwrap();
    fs.close(fd).unwrap();
    // without the check the corruption persists: the commit journals
    // the damaged image and the checkpoint writes it home
    fs.checkpoint().unwrap();
    drop(fs);
    // ...and the image is now inconsistent (fsck sees the bad inode)
    let report = fsck(dev.as_ref()).unwrap();
    assert!(
        !report.is_clean(),
        "corruption reached the platter undetected"
    );
}
