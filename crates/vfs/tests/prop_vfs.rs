//! Property tests of the shared API types (paths, flags, records).

use proptest::prelude::*;
use rae_vfs::{split_parent, split_path, FsError, FsOp, OpOutcome, OpRecord, OpenFlags};

proptest! {
    /// from_bits(bits()) is the identity for every constructible flag
    /// combination.
    #[test]
    fn open_flags_bits_roundtrip(access in 0u32..3, creat in any::<bool>(), excl in any::<bool>(),
                                 trunc in any::<bool>(), append in any::<bool>()) {
        let mut f = match access {
            0 => OpenFlags::RDONLY,
            1 => OpenFlags::WRONLY,
            _ => OpenFlags::RDWR,
        };
        if creat { f |= OpenFlags::CREATE; }
        if excl { f |= OpenFlags::EXCL; }
        if trunc { f |= OpenFlags::TRUNC; }
        if append { f |= OpenFlags::APPEND; }
        prop_assert_eq!(OpenFlags::from_bits(f.bits()), Some(f));
        // stripping creation flags is idempotent and preserves access
        let stripped = f.without_creation();
        prop_assert_eq!(stripped.without_creation(), stripped);
        prop_assert_eq!(stripped.readable(), f.readable());
        prop_assert_eq!(stripped.writable(), f.writable());
        prop_assert!(!stripped.creates());
        prop_assert!(!stripped.contains(OpenFlags::TRUNC));
        prop_assert_eq!(stripped.contains(OpenFlags::APPEND), append);
    }

    /// split_path accepts exactly the well-formed paths and never
    /// panics on arbitrary input.
    #[test]
    fn split_path_total_and_consistent(s in ".*") {
        match split_path(&s) {
            Ok(comps) => {
                prop_assert!(s.starts_with('/'));
                for c in &comps {
                    prop_assert!(!c.is_empty());
                    prop_assert!(!c.contains('/'));
                    prop_assert_ne!(*c, ".");
                    prop_assert_ne!(*c, "..");
                    prop_assert!(c.len() <= rae_vfs::MAX_NAME_LEN);
                }
                // rebuilding the path resolves to the same components
                let rebuilt = format!("/{}", comps.join("/"));
                prop_assert_eq!(split_path(&rebuilt).unwrap(), comps);
            }
            Err(e) => {
                prop_assert!(matches!(e, FsError::InvalidArgument | FsError::NameTooLong));
            }
        }
    }

    /// split_parent(p) + name == split_path(p).
    #[test]
    fn split_parent_agrees_with_split_path(comps in proptest::collection::vec("[a-z]{1,10}", 1..6)) {
        let path = format!("/{}", comps.join("/"));
        let (parent, name) = split_parent(&path).unwrap();
        let full = split_path(&path).unwrap();
        prop_assert_eq!(name, comps.last().unwrap().as_str());
        prop_assert_eq!(parent.len(), full.len() - 1);
        prop_assert_eq!(&parent[..], &full[..full.len() - 1]);
    }

    /// errno values stay within the POSIX range and runtime errors are
    /// never "specified".
    #[test]
    fn errno_partition(bug_id in any::<u32>()) {
        let errs = [
            FsError::NotFound,
            FsError::Exists,
            FsError::NotDir,
            FsError::IsDir,
            FsError::NotEmpty,
            FsError::NoSpace,
            FsError::Busy,
            FsError::DetectedBug { bug_id },
            FsError::Corrupted { detail: format!("d{bug_id}") },
            FsError::Internal { detail: "x".into() },
        ];
        for e in errs {
            prop_assert!(e.errno() > 0 && e.errno() < 200);
            prop_assert_ne!(e.is_specified(), e.is_runtime_error());
        }
    }

    /// Record lifecycle invariants hold for arbitrary writes.
    #[test]
    fn record_lifecycle(seq in any::<u64>(), offset in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let op = FsOp::Write { fd: rae_vfs::Fd(3), offset, data: data.into() };
        prop_assert!(op.mutates_state());
        prop_assert!(!op.is_sync_family());
        let mut rec = OpRecord::new(seq, op);
        prop_assert!(rec.outcome.is_pending());
        rec.complete(OpOutcome::Written { n: 1 });
        prop_assert!(rec.outcome.is_success());
    }
}
