//! The object-safe [`FileSystem`] trait implemented by the base
//! filesystem, the shadow adapter, the abstract model, and the public
//! RAE filesystem.

use crate::error::FsResult;
use crate::types::{DirEntry, Fd, FileStat, FsGeometryInfo, OpenFlags, SetAttr};

/// Coarse lifecycle state of a filesystem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsStatus {
    /// Serving operations normally.
    Active,
    /// Temporarily refusing operations (e.g. during RAE recovery).
    Quiesced,
    /// Read-only degraded: reads are served off a journal-consistent
    /// image, mutations are refused with
    /// [`crate::FsError::ReadOnly`] (the RAE recovery ladder's
    /// last rung before going offline).
    Degraded,
    /// Permanently offline (unrecoverable failure).
    Failed,
}

/// A POSIX-flavoured filesystem API.
///
/// All methods take `&self`: implementations are internally synchronized
/// and usable from multiple threads (the shadow is single-threaded
/// internally but still presents this interface through its adapter).
///
/// # Path semantics
///
/// * Paths are absolute, `/`-separated, UTF-8. `.` and `..` components
///   are rejected ([`crate::FsError::InvalidArgument`]); callers
///   normalise paths before issuing operations.
/// * Symbolic links are leaf objects: path resolution does not follow
///   them (they are created with [`FileSystem::symlink`] and read with
///   [`FileSystem::readlink`]).
///
/// # Errors
///
/// Every method returns [`crate::FsError`] values from the *specified*
/// set for contract violations (`NotFound`, `Exists`, …). Runtime errors
/// (`Corrupted`, `DetectedBug`, …) may surface from implementations with
/// bugs or bad media; the RAE runtime intercepts those before
/// applications see them.
pub trait FileSystem: Send + Sync {
    /// Open (and possibly create) the file at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound` without `CREATE`; `Exists` with `CREATE|EXCL`; `IsDir`
    /// for directories opened writable; `TooManyOpenFiles` when the
    /// descriptor table is full.
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd>;

    /// Close a descriptor.
    ///
    /// # Errors
    ///
    /// `BadFd` if the descriptor is not open.
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Read up to `len` bytes at `offset`. Short reads happen only at
    /// end-of-file.
    ///
    /// # Errors
    ///
    /// `BadFd`; `BadAccessMode` if opened write-only.
    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>>;

    /// Write `data` at `offset` (or at end-of-file in append mode),
    /// returning bytes accepted (always `data.len()` unless an error is
    /// returned — partial writes are not produced by this stack).
    ///
    /// # Errors
    ///
    /// `BadFd`; `BadAccessMode` if opened read-only; `NoSpace`;
    /// `FileTooBig` beyond the format's maximum file size.
    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Truncate or zero-extend the file to `size` bytes.
    ///
    /// # Errors
    ///
    /// `BadFd`; `BadAccessMode` if opened read-only; `NoSpace` when
    /// extending; `FileTooBig`.
    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()>;

    /// Apply attribute changes to `path`.
    ///
    /// # Errors
    ///
    /// `NotFound`; `IsDir` when setting a size on a directory.
    fn setattr(&self, path: &str, attr: SetAttr) -> FsResult<()>;

    /// Make the file durable on the device.
    ///
    /// # Errors
    ///
    /// `BadFd`; `IoFailed` on device write failure.
    fn fsync(&self, fd: Fd) -> FsResult<()>;

    /// Make all buffered state durable on the device.
    ///
    /// # Errors
    ///
    /// `IoFailed` on device write failure.
    fn sync(&self) -> FsResult<()>;

    /// Create a directory at `path`.
    ///
    /// # Errors
    ///
    /// `Exists`; `NotFound`/`NotDir` on the parent; `NoSpace`/`NoInodes`.
    fn mkdir(&self, path: &str) -> FsResult<()>;

    /// Remove the empty directory at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound`; `NotDir`; `NotEmpty`; `InvalidArgument` for `/`.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Remove the directory entry at `path` (file or symlink).
    ///
    /// # Errors
    ///
    /// `NotFound`; `IsDir` for directories (use [`FileSystem::rmdir`]).
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Rename `from` to `to`, atomically replacing a compatible target.
    ///
    /// # Errors
    ///
    /// `NotFound`; `NotDir`/`IsDir` on incompatible replacement;
    /// `NotEmpty` when replacing a non-empty directory; `RenameLoop`
    /// when moving a directory below itself; `InvalidArgument` for `/`.
    fn rename(&self, from: &str, to: &str) -> FsResult<()>;

    /// Create a hard link `new` to the file at `existing`.
    ///
    /// # Errors
    ///
    /// `NotFound`; `IsDir` (directories cannot be hard-linked);
    /// `Exists`; `TooManyLinks`.
    fn link(&self, existing: &str, new: &str) -> FsResult<()>;

    /// Create a symbolic link at `linkpath` containing `target`.
    ///
    /// # Errors
    ///
    /// `Exists`; `NotFound`/`NotDir` on the parent; `NameTooLong` for
    /// targets longer than one block.
    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<()>;

    /// Read the contents of the symlink at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound`; `InvalidArgument` if `path` is not a symlink.
    fn readlink(&self, path: &str) -> FsResult<String>;

    /// Stat the object at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound`; `NotDir` on a non-directory path component.
    fn stat(&self, path: &str) -> FsResult<FileStat>;

    /// Stat the object behind an open descriptor.
    ///
    /// # Errors
    ///
    /// `BadFd`.
    fn fstat(&self, fd: Fd) -> FsResult<FileStat>;

    /// List the entries of the directory at `path` (excluding `.`/`..`),
    /// in on-disk order.
    ///
    /// # Errors
    ///
    /// `NotFound`; `NotDir`.
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Filesystem-wide geometry and free-space summary.
    ///
    /// # Errors
    ///
    /// `IoFailed` if the superblock cannot be consulted.
    fn statfs(&self) -> FsResult<FsGeometryInfo>;

    /// Current lifecycle status. Defaults to [`FsStatus::Active`].
    fn status(&self) -> FsStatus {
        FsStatus::Active
    }
}

/// Split an absolute path into components, validating shape.
///
/// Returns the component list (empty for `/`).
///
/// # Errors
///
/// [`crate::FsError::InvalidArgument`] for relative paths, empty paths,
/// `.`/`..` components, or embedded empty components (`//` is allowed
/// and collapsed); [`crate::FsError::NameTooLong`] for oversized
/// components.
pub fn split_path(path: &str) -> FsResult<Vec<&str>> {
    use crate::error::FsError;
    if !path.starts_with('/') {
        return Err(FsError::InvalidArgument);
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        if comp.is_empty() {
            continue; // leading slash and doubled slashes collapse
        }
        if comp == "." || comp == ".." {
            return Err(FsError::InvalidArgument);
        }
        if comp.len() > crate::types::MAX_NAME_LEN {
            return Err(FsError::NameTooLong);
        }
        out.push(comp);
    }
    Ok(out)
}

/// Split a path into `(parent_components, final_name)`.
///
/// # Errors
///
/// As [`split_path`], plus [`crate::FsError::InvalidArgument`] when the
/// path is `/` (which has no final component).
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    use crate::error::FsError;
    let mut comps = split_path(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(FsError::InvalidArgument),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FsError;

    #[test]
    fn split_path_accepts_normal_paths() {
        assert_eq!(split_path("/").unwrap(), Vec::<&str>::new());
        assert_eq!(split_path("/a").unwrap(), vec!["a"]);
        assert_eq!(split_path("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_path("//a//b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn split_path_rejects_bad_shapes() {
        assert_eq!(split_path(""), Err(FsError::InvalidArgument));
        assert_eq!(split_path("a/b"), Err(FsError::InvalidArgument));
        assert_eq!(split_path("/a/./b"), Err(FsError::InvalidArgument));
        assert_eq!(split_path("/a/../b"), Err(FsError::InvalidArgument));
        let long = format!("/{}", "x".repeat(crate::types::MAX_NAME_LEN + 1));
        assert_eq!(split_path(&long), Err(FsError::NameTooLong));
    }

    #[test]
    fn split_parent_separates_final_component() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert_eq!(split_parent("/"), Err(FsError::InvalidArgument));
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_fs: &dyn FileSystem) {}
    }
}
