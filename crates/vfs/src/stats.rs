//! Lock-free operation counters shared by filesystems and harnesses.

use crate::ops::OpKind;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-kind operation counters plus byte totals.
///
/// All methods take `&self` and are safe to call concurrently; counters
/// use relaxed atomics (they are statistics, not synchronization).
#[derive(Debug, Default)]
pub struct OpCounters {
    counts: [AtomicU64; OpKind::ALL.len()],
    errors: [AtomicU64; OpKind::ALL.len()],
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl OpCounters {
    /// Create zeroed counters.
    #[must_use]
    pub fn new() -> OpCounters {
        OpCounters::default()
    }

    fn idx(kind: OpKind) -> usize {
        OpKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("OpKind::ALL covers every kind")
    }

    /// Record one completed operation of `kind`.
    pub fn record(&self, kind: OpKind) {
        self.counts[Self::idx(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one failed operation of `kind`.
    pub fn record_error(&self, kind: OpKind) {
        self.errors[Self::idx(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Add to the bytes-read total.
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Add to the bytes-written total.
    pub fn add_bytes_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Completed operations of `kind`.
    #[must_use]
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[Self::idx(kind)].load(Ordering::Relaxed)
    }

    /// Failed operations of `kind`.
    #[must_use]
    pub fn error_count(&self, kind: OpKind) -> u64 {
        self.errors[Self::idx(kind)].load(Ordering::Relaxed)
    }

    /// Total completed operations across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total bytes read.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.errors {
            c.store(0, Ordering::Relaxed);
        }
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }
}

impl fmt::Display for OpCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ops={} read={}B written={}B",
            self.total(),
            self.bytes_read(),
            self.bytes_written()
        )?;
        for kind in OpKind::ALL {
            let n = self.count(kind);
            let e = self.error_count(kind);
            if n > 0 || e > 0 {
                writeln!(f, "  {:<9} {:>8} ok {:>6} err", kind.name(), n, e)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = OpCounters::new();
        c.record(OpKind::Write);
        c.record(OpKind::Write);
        c.record(OpKind::Read);
        c.record_error(OpKind::Open);
        c.add_bytes_written(4096);
        c.add_bytes_read(100);

        assert_eq!(c.count(OpKind::Write), 2);
        assert_eq!(c.count(OpKind::Read), 1);
        assert_eq!(c.error_count(OpKind::Open), 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.bytes_written(), 4096);
        assert_eq!(c.bytes_read(), 100);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = OpCounters::new();
        c.record(OpKind::Sync);
        c.add_bytes_read(10);
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.bytes_read(), 0);
    }

    #[test]
    fn counters_shared_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(OpCounters::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.record(OpKind::Stat);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.count(OpKind::Stat), 4000);
    }

    #[test]
    fn display_lists_only_nonzero_kinds() {
        let c = OpCounters::new();
        c.record(OpKind::Mkdir);
        let s = c.to_string();
        assert!(s.contains("mkdir"));
        assert!(!s.contains("rmdir"));
    }
}
