//! Recorded operations: the execution trace RAE keeps between the
//! application-visible state and the on-disk state.
//!
//! The base filesystem executes operations; RAE records each mutating
//! operation together with its outcome ([`OpRecord`]). When the base hits
//! a runtime error, the retained records are exactly the operations whose
//! effects are visible to applications but not yet durable — the shadow
//! re-executes them to reconstruct that state.

use crate::error::FsError;
use crate::types::{Fd, InodeNo, OpenFlags, SetAttr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an operation, used for statistics, fault-trigger matching,
/// and workload accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names mirror the syscall vocabulary
pub enum OpKind {
    Create,
    Open,
    Close,
    Read,
    Write,
    Truncate,
    SetAttr,
    Fsync,
    Sync,
    Mkdir,
    Rmdir,
    Unlink,
    Rename,
    Link,
    Symlink,
    Readlink,
    Stat,
    Fstat,
    Readdir,
    Statfs,
    Mount,
    RestoreFd,
}

impl OpKind {
    /// All kinds, in a stable order (used by stats tables).
    pub const ALL: [OpKind; 22] = [
        OpKind::Create,
        OpKind::Open,
        OpKind::Close,
        OpKind::Read,
        OpKind::Write,
        OpKind::Truncate,
        OpKind::SetAttr,
        OpKind::Fsync,
        OpKind::Sync,
        OpKind::Mkdir,
        OpKind::Rmdir,
        OpKind::Unlink,
        OpKind::Rename,
        OpKind::Link,
        OpKind::Symlink,
        OpKind::Readlink,
        OpKind::Stat,
        OpKind::Fstat,
        OpKind::Readdir,
        OpKind::Statfs,
        OpKind::Mount,
        OpKind::RestoreFd,
    ];

    /// Stable wire code (index into [`OpKind::ALL`]) — the opcode
    /// vocabulary of the `rae-server` network protocol.
    #[must_use]
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&k| k == self).unwrap_or(0) as u8
    }

    /// Decode a wire code (`None` for unknown opcodes, so servers can
    /// reject malformed frames instead of panicking).
    #[must_use]
    pub fn from_code(code: u8) -> Option<OpKind> {
        Self::ALL.get(code as usize).copied()
    }

    /// Stable lowercase name (used in reports and trigger specs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Truncate => "truncate",
            OpKind::SetAttr => "setattr",
            OpKind::Fsync => "fsync",
            OpKind::Sync => "sync",
            OpKind::Mkdir => "mkdir",
            OpKind::Rmdir => "rmdir",
            OpKind::Unlink => "unlink",
            OpKind::Rename => "rename",
            OpKind::Link => "link",
            OpKind::Symlink => "symlink",
            OpKind::Readlink => "readlink",
            OpKind::Stat => "stat",
            OpKind::Fstat => "fstat",
            OpKind::Readdir => "readdir",
            OpKind::Statfs => "statfs",
            OpKind::Mount => "mount",
            OpKind::RestoreFd => "restorefd",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An immutable, cheaply-cloneable byte buffer for write payloads.
///
/// A write payload lives long past the `write` call that produced it:
/// the operation log retains it until the persistence barrier, the warm
/// standby receives its own copy of the record on the publish path, and
/// cold replay clones the retained records once more. Backing the
/// payload with an `Arc<[u8]>` makes every one of those copies a
/// refcount bump on one shared allocation instead of a multi-kilobyte
/// `memcpy`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bytes(std::sync::Arc<[u8]>);

impl Bytes {
    /// Length of the payload in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload as a plain byte slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(std::sync::Arc::from(v))
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes(std::sync::Arc::from(&v[..]))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0[..] == other.0[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.0[..] == other[..]
    }
}

/// A recordable filesystem operation with owned arguments.
///
/// Only *state-mutating* operations appear in the RAE operation log
/// (`Read`/`Stat`/… never change essential state and are not recorded),
/// but the enum covers the mutating vocabulary completely, including
/// `Fsync`/`Sync`, which the shadow skips and the base re-executes after
/// hand-off.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsOp {
    /// `open` with `CREATE` semantics (the path may be created).
    Create {
        /// Absolute path of the file.
        path: String,
        /// Flags; must include [`OpenFlags::CREATE`].
        flags: OpenFlags,
    },
    /// `open` of an existing file.
    Open {
        /// Absolute path of the file.
        path: String,
        /// Flags; must not include [`OpenFlags::CREATE`].
        flags: OpenFlags,
    },
    /// Close a descriptor.
    Close {
        /// The descriptor to close.
        fd: Fd,
    },
    /// Write `data` at `offset` through a descriptor.
    Write {
        /// Target descriptor.
        fd: Fd,
        /// Byte offset (ignored when the descriptor is in append mode).
        offset: u64,
        /// Payload; retained so the shadow can re-execute the write.
        /// Shared ([`Bytes`]) because the log, the standby publish
        /// path, and replay all hold copies of the same record.
        data: Bytes,
    },
    /// Truncate (or extend with zeroes) the file behind a descriptor.
    Truncate {
        /// Target descriptor.
        fd: Fd,
        /// New size in bytes.
        size: u64,
    },
    /// Set attributes on a path.
    SetAttr {
        /// Target path.
        path: String,
        /// Attributes to change.
        attr: SetAttr,
    },
    /// Flush a file's buffered state to disk.
    Fsync {
        /// Target descriptor.
        fd: Fd,
    },
    /// Flush all buffered state to disk.
    Sync,
    /// Create a directory.
    Mkdir {
        /// Absolute path of the new directory.
        path: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Absolute path of the directory.
        path: String,
    },
    /// Remove a file's directory entry (and the file at nlink 0).
    Unlink {
        /// Absolute path of the file.
        path: String,
    },
    /// Rename a file or directory, replacing a compatible target.
    Rename {
        /// Existing path.
        from: String,
        /// New path.
        to: String,
    },
    /// Create a hard link to an existing file.
    Link {
        /// Path of the existing file (must not be a directory).
        existing: String,
        /// Path of the new link.
        new: String,
    },
    /// Create a symbolic link containing `target`.
    Symlink {
        /// Link contents (not resolved by this stack).
        target: String,
        /// Path of the new symlink.
        linkpath: String,
    },
    /// Synthetic record: re-establish a descriptor whose `open` became
    /// durable before the persistence barrier while the descriptor is
    /// still live. Produced by the RAE operation log when trimming
    /// (never issued by applications); the shadow restores the
    /// descriptor from the recorded inode — by-path replay would be
    /// wrong if the path was later renamed.
    RestoreFd {
        /// The descriptor to restore.
        fd: Fd,
        /// Inode it refers to (from the recorded open outcome).
        ino: InodeNo,
        /// Original open flags (creation/truncation flags stripped —
        /// their effects are already durable).
        flags: OpenFlags,
        /// Path at open time (diagnostics and refinement checking;
        /// may be stale).
        path: String,
    },
}

impl FsOp {
    /// The kind of this operation.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        match self {
            FsOp::Create { .. } => OpKind::Create,
            FsOp::Open { .. } => OpKind::Open,
            FsOp::Close { .. } => OpKind::Close,
            FsOp::Write { .. } => OpKind::Write,
            FsOp::Truncate { .. } => OpKind::Truncate,
            FsOp::SetAttr { .. } => OpKind::SetAttr,
            FsOp::Fsync { .. } => OpKind::Fsync,
            FsOp::Sync => OpKind::Sync,
            FsOp::Mkdir { .. } => OpKind::Mkdir,
            FsOp::Rmdir { .. } => OpKind::Rmdir,
            FsOp::Unlink { .. } => OpKind::Unlink,
            FsOp::Rename { .. } => OpKind::Rename,
            FsOp::Link { .. } => OpKind::Link,
            FsOp::Symlink { .. } => OpKind::Symlink,
            FsOp::RestoreFd { .. } => OpKind::RestoreFd,
        }
    }

    /// Whether the operation can change essential state (metadata, file
    /// contents, or the descriptor table). All `FsOp` variants do; the
    /// method exists so trace tooling can assert it uniformly.
    #[must_use]
    pub fn mutates_state(&self) -> bool {
        true
    }

    /// Whether the operation persists state (the `sync` family), which
    /// the shadow never executes (it does not write to the device).
    #[must_use]
    pub fn is_sync_family(&self) -> bool {
        matches!(self, FsOp::Fsync { .. } | FsOp::Sync)
    }

    /// The primary path argument, when the operation has one.
    #[must_use]
    pub fn primary_path(&self) -> Option<&str> {
        match self {
            FsOp::Create { path, .. }
            | FsOp::Open { path, .. }
            | FsOp::SetAttr { path, .. }
            | FsOp::Mkdir { path }
            | FsOp::Rmdir { path }
            | FsOp::Unlink { path } => Some(path),
            FsOp::Rename { from, .. } => Some(from),
            FsOp::Link { existing, .. } => Some(existing),
            FsOp::Symlink { linkpath, .. } => Some(linkpath),
            FsOp::RestoreFd { path, .. } => Some(path),
            _ => None,
        }
    }

    /// The descriptor argument, when the operation targets one.
    #[must_use]
    pub fn target_fd(&self) -> Option<Fd> {
        match self {
            FsOp::Close { fd }
            | FsOp::Write { fd, .. }
            | FsOp::Truncate { fd, .. }
            | FsOp::Fsync { fd }
            | FsOp::RestoreFd { fd, .. } => Some(*fd),
            _ => None,
        }
    }
}

impl fmt::Display for FsOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsOp::Create { path, flags } => write!(f, "create({path}, {flags})"),
            FsOp::Open { path, flags } => write!(f, "open({path}, {flags})"),
            FsOp::Close { fd } => write!(f, "close({fd})"),
            FsOp::Write { fd, offset, data } => {
                write!(f, "write({fd}, off={offset}, len={})", data.len())
            }
            FsOp::Truncate { fd, size } => write!(f, "truncate({fd}, {size})"),
            FsOp::SetAttr { path, attr } => write!(f, "setattr({path}, {attr:?})"),
            FsOp::Fsync { fd } => write!(f, "fsync({fd})"),
            FsOp::Sync => write!(f, "sync()"),
            FsOp::Mkdir { path } => write!(f, "mkdir({path})"),
            FsOp::Rmdir { path } => write!(f, "rmdir({path})"),
            FsOp::Unlink { path } => write!(f, "unlink({path})"),
            FsOp::Rename { from, to } => write!(f, "rename({from} -> {to})"),
            FsOp::Link { existing, new } => write!(f, "link({existing} -> {new})"),
            FsOp::Symlink { target, linkpath } => write!(f, "symlink({linkpath} => {target})"),
            FsOp::RestoreFd { fd, ino, .. } => write!(f, "restorefd({fd} -> {ino})"),
        }
    }
}

/// The recorded outcome of an operation.
///
/// Outcomes capture the *policy decisions* the base made that are visible
/// to the application — in particular allocated descriptor and inode
/// numbers. In constrained mode the shadow validates these decisions
/// instead of making its own.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpOutcome {
    /// The operation is in flight: issued to the base, result not yet
    /// seen by the application. At most one record is pending at a time
    /// per logical client thread.
    Pending,
    /// Completed without a value.
    Unit,
    /// Completed `open`/`create`.
    Opened {
        /// The allocated descriptor.
        fd: Fd,
        /// Inode the descriptor refers to.
        ino: InodeNo,
        /// Whether a new file was created (vs opening an existing one).
        created: bool,
    },
    /// Completed `write`.
    Written {
        /// Bytes accepted.
        n: usize,
    },
    /// Completed with a *specified* error (e.g. `ENOENT`), which was
    /// returned to the application. The shadow skips these records.
    Failed(FsError),
}

impl OpOutcome {
    /// Whether the record is still pending (in-flight).
    #[must_use]
    pub fn is_pending(&self) -> bool {
        matches!(self, OpOutcome::Pending)
    }

    /// Whether the operation completed successfully (not pending, not a
    /// specified error).
    #[must_use]
    pub fn is_success(&self) -> bool {
        !matches!(self, OpOutcome::Pending | OpOutcome::Failed(_))
    }
}

/// One entry of the RAE operation log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Monotonic sequence number assigned at record time.
    pub seq: u64,
    /// The operation as issued by the application.
    pub op: FsOp,
    /// The outcome observed from the base filesystem.
    pub outcome: OpOutcome,
}

impl OpRecord {
    /// Create a new, pending record.
    #[must_use]
    pub fn new(seq: u64, op: FsOp) -> OpRecord {
        OpRecord {
            seq,
            op,
            outcome: OpOutcome::Pending,
        }
    }

    /// Mark the record completed with `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if the record already has a non-pending outcome; a record
    /// completes exactly once.
    pub fn complete(&mut self, outcome: OpOutcome) {
        assert!(
            self.outcome.is_pending(),
            "operation record {} completed twice",
            self.seq
        );
        assert!(!outcome.is_pending(), "cannot complete with Pending");
        self.outcome = outcome;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OpenFlags;

    fn sample_ops() -> Vec<FsOp> {
        vec![
            FsOp::Create {
                path: "/f".into(),
                flags: OpenFlags::RDWR | OpenFlags::CREATE,
            },
            FsOp::Open {
                path: "/f".into(),
                flags: OpenFlags::RDONLY,
            },
            FsOp::Close { fd: Fd(3) },
            FsOp::Write {
                fd: Fd(3),
                offset: 0,
                data: vec![1, 2, 3].into(),
            },
            FsOp::Truncate {
                fd: Fd(3),
                size: 10,
            },
            FsOp::SetAttr {
                path: "/f".into(),
                attr: SetAttr {
                    size: Some(4),
                    mtime: None,
                },
            },
            FsOp::Fsync { fd: Fd(3) },
            FsOp::Sync,
            FsOp::Mkdir { path: "/d".into() },
            FsOp::Rmdir { path: "/d".into() },
            FsOp::Unlink { path: "/f".into() },
            FsOp::Rename {
                from: "/a".into(),
                to: "/b".into(),
            },
            FsOp::Link {
                existing: "/f".into(),
                new: "/g".into(),
            },
            FsOp::Symlink {
                target: "/f".into(),
                linkpath: "/s".into(),
            },
        ]
    }

    #[test]
    fn kinds_are_distinct_and_named() {
        let ops = sample_ops();
        let kinds: std::collections::HashSet<_> = ops.iter().map(|o| o.kind()).collect();
        assert_eq!(kinds.len(), ops.len());
        for k in OpKind::ALL {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn wire_codes_round_trip() {
        for kind in OpKind::ALL {
            assert_eq!(OpKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(OpKind::from_code(OpKind::ALL.len() as u8), None);
        assert_eq!(OpKind::from_code(255), None);
    }

    #[test]
    fn sync_family_detection() {
        assert!(FsOp::Sync.is_sync_family());
        assert!(FsOp::Fsync { fd: Fd(1) }.is_sync_family());
        assert!(!FsOp::Mkdir { path: "/d".into() }.is_sync_family());
    }

    #[test]
    fn primary_path_and_fd_extraction() {
        let op = FsOp::Rename {
            from: "/a".into(),
            to: "/b".into(),
        };
        assert_eq!(op.primary_path(), Some("/a"));
        assert_eq!(op.target_fd(), None);

        let op = FsOp::Write {
            fd: Fd(9),
            offset: 4,
            data: Vec::new().into(),
        };
        assert_eq!(op.primary_path(), None);
        assert_eq!(op.target_fd(), Some(Fd(9)));
    }

    #[test]
    fn record_completes_once() {
        let mut rec = OpRecord::new(1, FsOp::Sync);
        assert!(rec.outcome.is_pending());
        rec.complete(OpOutcome::Unit);
        assert!(rec.outcome.is_success());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut rec = OpRecord::new(1, FsOp::Sync);
        rec.complete(OpOutcome::Unit);
        rec.complete(OpOutcome::Unit);
    }

    #[test]
    fn failed_outcome_is_not_success() {
        let out = OpOutcome::Failed(FsError::NotFound);
        assert!(!out.is_success());
        assert!(!out.is_pending());
    }

    #[test]
    fn records_serialize_roundtrip() {
        // Traces are persisted as reports; the codec must round-trip.
        for op in sample_ops() {
            let mut rec = OpRecord::new(42, op);
            rec.complete(OpOutcome::Opened {
                fd: Fd(5),
                ino: InodeNo(17),
                created: true,
            });
            let json = serde_json_like(&rec);
            assert!(json.contains("42"));
        }
    }

    // serde_json is not in the dependency set; exercise Serialize via the
    // Debug-stable bincode-free path: serde's derive is compile-checked by
    // this helper taking a Serialize bound.
    fn serde_json_like<T: serde::Serialize + std::fmt::Debug>(v: &T) -> String {
        format!("{v:?}")
    }
}
