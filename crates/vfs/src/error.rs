//! The error model shared by the base filesystem, the shadow filesystem,
//! the executable specification, and the RAE runtime.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias used throughout the RAE stack.
pub type FsResult<T> = Result<T, FsError>;

/// Errors produced by filesystem operations.
///
/// The first group mirrors POSIX errno values and is part of the
/// *specified* behaviour: the base, the shadow, and the abstract model
/// must agree on them. The second group (`Io*`, `Corrupted`,
/// `DetectedBug`, `CheckFailed`, `Internal`, `RecoveryFailed`) describes
/// *runtime errors* in the sense of the paper: conditions that are not
/// part of the API contract and that trigger RAE recovery when they
/// surface from the base.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsError {
    /// A path component does not exist (`ENOENT`).
    NotFound,
    /// The target already exists (`EEXIST`).
    Exists,
    /// A non-final path component is not a directory (`ENOTDIR`).
    NotDir,
    /// The operation requires a non-directory but found a directory (`EISDIR`).
    IsDir,
    /// Directory not empty on `rmdir`/`rename` (`ENOTEMPTY`).
    NotEmpty,
    /// No free data blocks (`ENOSPC`).
    NoSpace,
    /// No free inodes (`ENOSPC` with inode exhaustion).
    NoInodes,
    /// Malformed argument: empty path, bad flag combination, … (`EINVAL`).
    InvalidArgument,
    /// A path component exceeds [`crate::MAX_NAME_LEN`] (`ENAMETOOLONG`).
    NameTooLong,
    /// The per-process file table is full (`EMFILE`).
    TooManyOpenFiles,
    /// The file descriptor is not open (`EBADF`).
    BadFd,
    /// The descriptor was opened without the required access mode (`EBADF`).
    BadAccessMode,
    /// Too many hard links (`EMLINK`).
    TooManyLinks,
    /// File too large for the format's maximum file size (`EFBIG`).
    FileTooBig,
    /// The filesystem is mounted (or the handle is) read-only (`EROFS`).
    ReadOnly,
    /// The filesystem is quiescing for recovery (`EBUSY`); transient.
    Busy,
    /// `rename` would move a directory under itself (`EINVAL`).
    RenameLoop,

    /// The block device failed an I/O request.
    IoFailed {
        /// Description of the failed request (device-supplied).
        detail: String,
    },
    /// An on-disk structure failed validation (checksum, range, magic…).
    Corrupted {
        /// What failed to validate and where.
        detail: String,
    },
    /// An injected (or organic) bug was detected at a fault hook.
    DetectedBug {
        /// Identifier of the bug in the fault plan / bug corpus.
        bug_id: u32,
    },
    /// A shadow runtime check failed.
    CheckFailed {
        /// Name of the check (e.g. `"inode.size_vs_blocks"`).
        check: String,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// An internal invariant of the implementation was violated.
    Internal {
        /// Description of the violated invariant.
        detail: String,
    },
    /// RAE recovery itself failed; the filesystem is offline.
    RecoveryFailed {
        /// Why recovery could not complete.
        detail: String,
    },
}

impl FsError {
    /// The closest POSIX errno for this error (negated Linux-style values
    /// are not used; these are the positive `errno.h` constants).
    #[must_use]
    pub fn errno(&self) -> i32 {
        match self {
            FsError::NotFound => 2,                               // ENOENT
            FsError::IoFailed { .. } => 5,                        // EIO
            FsError::BadFd | FsError::BadAccessMode => 9,         // EBADF
            FsError::Busy => 16,                                  // EBUSY
            FsError::Exists => 17,                                // EEXIST
            FsError::NotDir => 20,                                // ENOTDIR
            FsError::IsDir => 21,                                 // EISDIR
            FsError::InvalidArgument | FsError::RenameLoop => 22, // EINVAL
            FsError::TooManyOpenFiles => 24,                      // EMFILE
            FsError::FileTooBig => 27,                            // EFBIG
            FsError::NoSpace | FsError::NoInodes => 28,           // ENOSPC
            FsError::ReadOnly => 30,                              // EROFS
            FsError::TooManyLinks => 31,                          // EMLINK
            FsError::NameTooLong => 36,                           // ENAMETOOLONG
            FsError::NotEmpty => 39,                              // ENOTEMPTY
            FsError::Corrupted { .. }
            | FsError::DetectedBug { .. }
            | FsError::CheckFailed { .. }
            | FsError::Internal { .. }
            | FsError::RecoveryFailed { .. } => 117, // EUCLEAN ("structure needs cleaning")
        }
    }

    /// Whether this error is part of the specified API contract.
    ///
    /// Specified errors (`ENOENT`, `EEXIST`, …) are returned to the
    /// application and recorded in the operation log; the shadow must
    /// reproduce them. Unspecified errors are *runtime errors*: when the
    /// base raises one, RAE triggers recovery instead of returning it.
    #[must_use]
    pub fn is_specified(&self) -> bool {
        !self.is_runtime_error()
    }

    /// Whether this error is a runtime error that should trigger RAE
    /// recovery when surfaced by the base filesystem.
    #[must_use]
    pub fn is_runtime_error(&self) -> bool {
        matches!(
            self,
            FsError::IoFailed { .. }
                | FsError::Corrupted { .. }
                | FsError::DetectedBug { .. }
                | FsError::CheckFailed { .. }
                | FsError::Internal { .. }
                | FsError::RecoveryFailed { .. }
        )
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes left on device"),
            FsError::InvalidArgument => write!(f, "invalid argument"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::TooManyOpenFiles => write!(f, "too many open files"),
            FsError::BadFd => write!(f, "bad file descriptor"),
            FsError::BadAccessMode => write!(f, "descriptor opened without required access mode"),
            FsError::TooManyLinks => write!(f, "too many links"),
            FsError::FileTooBig => write!(f, "file too large"),
            FsError::ReadOnly => write!(f, "read-only file system"),
            FsError::Busy => write!(f, "device or resource busy"),
            FsError::RenameLoop => write!(f, "rename would create a directory loop"),
            FsError::IoFailed { detail } => write!(f, "i/o error: {detail}"),
            FsError::Corrupted { detail } => write!(f, "corrupted structure: {detail}"),
            FsError::DetectedBug { bug_id } => write!(f, "detected runtime bug #{bug_id}"),
            FsError::CheckFailed { check, detail } => {
                write!(f, "runtime check '{check}' failed: {detail}")
            }
            FsError::Internal { detail } => write!(f, "internal invariant violated: {detail}"),
            FsError::RecoveryFailed { detail } => write!(f, "recovery failed: {detail}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_values_match_errno_h() {
        assert_eq!(FsError::NotFound.errno(), 2);
        assert_eq!(FsError::Exists.errno(), 17);
        assert_eq!(FsError::NotEmpty.errno(), 39);
        assert_eq!(FsError::NoSpace.errno(), 28);
        assert_eq!(FsError::BadFd.errno(), 9);
    }

    #[test]
    fn runtime_errors_are_not_specified() {
        let runtime = FsError::DetectedBug { bug_id: 3 };
        assert!(runtime.is_runtime_error());
        assert!(!runtime.is_specified());

        let specified = FsError::NotFound;
        assert!(specified.is_specified());
        assert!(!specified.is_runtime_error());
    }

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        for err in [
            FsError::NotFound,
            FsError::Busy,
            FsError::Corrupted {
                detail: "bad magic".into(),
            },
            FsError::DetectedBug { bug_id: 1 },
        ] {
            let s = err.to_string();
            assert!(!s.ends_with('.'), "{s:?} ends with punctuation");
            assert!(
                s.chars().next().unwrap().is_lowercase(),
                "{s:?} not lowercase"
            );
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FsError>();
    }
}
