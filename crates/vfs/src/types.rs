//! Small strong types shared across the stack.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Maximum length of one path component, in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// Maximum simultaneously open descriptors (spec constant shared by the
/// model, the base, and the shadow — descriptor numbering is part of
/// the application-visible state RAE must reconstruct).
pub const MAX_OPEN_FILES: usize = 1024;

/// First descriptor number handed out (0–2 are reserved, as in POSIX).
pub const FIRST_FD: u32 = 3;

/// Maximum hard-link count per inode.
pub const MAX_LINKS: u32 = 65_000;

/// Maximum file size in bytes (spec constant; equals the on-disk
/// format's 12 direct + 1 indirect + 1 double-indirect addressing limit
/// at 4 KiB blocks — the format crate asserts the equality in tests).
pub const MAX_FILE_SIZE: u64 = (12 + 512 + 512 * 512) * 4096;

/// The inode number of the filesystem root directory.
pub const ROOT_INO: InodeNo = InodeNo(1);

/// An inode number.
///
/// Inode 0 is reserved as "no inode" in on-disk structures; inode 1 is the
/// root directory ([`ROOT_INO`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InodeNo(pub u32);

impl InodeNo {
    /// Whether this is the reserved "no inode" value.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for InodeNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// A file descriptor, as handed to the application.
///
/// RAE guarantees descriptor numbers survive recovery: after a contained
/// reboot the shadow reconstructs the descriptor table with identical
/// numbering, so applications keep using their descriptors unaware that a
/// recovery happened.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// The type of a file, as stored in the inode mode and directory entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
    /// A symbolic link (stored inline in the inode).
    Symlink,
}

impl FileType {
    /// On-disk encoding of the file type (also used in directory entries).
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 3,
        }
    }

    /// Decode an on-disk file-type byte.
    ///
    /// Returns `None` for unknown encodings so callers can surface a
    /// corruption error rather than panicking on crafted images.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<FileType> {
        match v {
            1 => Some(FileType::Regular),
            2 => Some(FileType::Directory),
            3 => Some(FileType::Symlink),
            _ => None,
        }
    }
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileType::Regular => write!(f, "file"),
            FileType::Directory => write!(f, "dir"),
            FileType::Symlink => write!(f, "symlink"),
        }
    }
}

/// Open flags, modelled as a transparent bit set (see C-BITFLAG; kept
/// dependency-free rather than pulling in the `bitflags` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct OpenFlags(u32);

impl OpenFlags {
    /// Open for reading only.
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Open for writing only.
    pub const WRONLY: OpenFlags = OpenFlags(1);
    /// Open for reading and writing.
    pub const RDWR: OpenFlags = OpenFlags(2);
    /// Create the file if it does not exist.
    pub const CREATE: OpenFlags = OpenFlags(1 << 6);
    /// With [`OpenFlags::CREATE`], fail if the file already exists.
    pub const EXCL: OpenFlags = OpenFlags(1 << 7);
    /// Truncate the file to zero length on open.
    pub const TRUNC: OpenFlags = OpenFlags(1 << 9);
    /// All writes append to the end of the file, ignoring the offset.
    pub const APPEND: OpenFlags = OpenFlags(1 << 10);

    const ACCESS_MASK: u32 = 0b11;
    const KNOWN_MASK: u32 = 0b11 | (1 << 6) | (1 << 7) | (1 << 9) | (1 << 10);

    /// An empty flag set (equivalent to [`OpenFlags::RDONLY`]).
    #[must_use]
    pub fn empty() -> OpenFlags {
        OpenFlags(0)
    }

    /// Raw bit representation (stable; used in recorded traces).
    #[must_use]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuild from raw bits, rejecting unknown flag bits.
    #[must_use]
    pub fn from_bits(bits: u32) -> Option<OpenFlags> {
        if bits & !Self::KNOWN_MASK != 0 {
            None
        } else {
            Some(OpenFlags(bits))
        }
    }

    /// Whether every flag in `other` is set in `self`.
    ///
    /// For the access mode use [`OpenFlags::readable`] /
    /// [`OpenFlags::writable`] instead: access modes are a 2-bit enum,
    /// not independent bits.
    #[must_use]
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the access mode permits reading.
    #[must_use]
    pub fn readable(self) -> bool {
        self.0 & Self::ACCESS_MASK != Self::WRONLY.0
    }

    /// Whether the access mode permits writing.
    #[must_use]
    pub fn writable(self) -> bool {
        let mode = self.0 & Self::ACCESS_MASK;
        mode == Self::WRONLY.0 || mode == Self::RDWR.0
    }

    /// Whether [`OpenFlags::CREATE`] is set.
    #[must_use]
    pub fn creates(self) -> bool {
        self.contains(OpenFlags::CREATE)
    }

    /// Whether the access-mode bits are a valid combination.
    #[must_use]
    pub fn valid(self) -> bool {
        self.0 & Self::ACCESS_MASK != 0b11
    }

    /// The flags with the one-shot creation/truncation bits removed
    /// (`CREATE`, `EXCL`, `TRUNC`). Used when an `open` record crosses a
    /// persistence barrier: its creation effects are already durable,
    /// so only the behavioural flags (access mode, `APPEND`) survive.
    #[must_use]
    pub fn without_creation(self) -> OpenFlags {
        OpenFlags(self.0 & !(Self::CREATE.0 | Self::EXCL.0 | Self::TRUNC.0))
    }
}

impl BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for OpenFlags {
    fn bitor_assign(&mut self, rhs: OpenFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for OpenFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.0 & Self::ACCESS_MASK {
            0 => "ro",
            1 => "wo",
            2 => "rw",
            _ => "??",
        };
        write!(f, "{mode}")?;
        if self.contains(OpenFlags::CREATE) {
            write!(f, "|creat")?;
        }
        if self.contains(OpenFlags::EXCL) {
            write!(f, "|excl")?;
        }
        if self.contains(OpenFlags::TRUNC) {
            write!(f, "|trunc")?;
        }
        if self.contains(OpenFlags::APPEND) {
            write!(f, "|append")?;
        }
        Ok(())
    }
}

/// Metadata of a file, as returned by `stat`-family operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStat {
    /// Inode number.
    pub ino: InodeNo,
    /// File type.
    pub ftype: FileType,
    /// Size in bytes (for directories: byte size of the entry area).
    pub size: u64,
    /// Number of hard links.
    pub nlink: u32,
    /// Number of data blocks allocated to the file.
    pub blocks: u64,
    /// Last modification time (logical clock; see crate docs).
    pub mtime: u64,
    /// Last inode change time (logical clock).
    pub ctime: u64,
}

/// An entry produced by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DirEntry {
    /// Inode the entry points at.
    pub ino: InodeNo,
    /// File type recorded in the directory entry.
    pub ftype: FileType,
    /// Entry name (one path component, no slashes).
    pub name: String,
}

/// Attributes settable via `setattr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SetAttr {
    /// New size (truncate/extend) if set.
    pub size: Option<u64>,
    /// New modification time if set.
    pub mtime: Option<u64>,
}

/// Geometry summary reported by `statfs`-like queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsGeometryInfo {
    /// Block size in bytes.
    pub block_size: u32,
    /// Total data blocks in the filesystem.
    pub total_blocks: u64,
    /// Free data blocks.
    pub free_blocks: u64,
    /// Total inodes.
    pub total_inodes: u64,
    /// Free inodes.
    pub free_inodes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::WRONLY.writable());
        assert!(OpenFlags::RDWR.readable());
        assert!(OpenFlags::RDWR.writable());
    }

    #[test]
    fn open_flags_compose() {
        let f = OpenFlags::RDWR | OpenFlags::CREATE | OpenFlags::EXCL;
        assert!(f.creates());
        assert!(f.contains(OpenFlags::EXCL));
        assert!(!f.contains(OpenFlags::TRUNC));
        assert!(f.valid());
    }

    #[test]
    fn open_flags_roundtrip_bits() {
        let f = OpenFlags::WRONLY | OpenFlags::APPEND | OpenFlags::CREATE;
        assert_eq!(OpenFlags::from_bits(f.bits()), Some(f));
        assert_eq!(OpenFlags::from_bits(0xdead_0000), None);
    }

    #[test]
    fn invalid_access_mode_rejected() {
        let bad = OpenFlags::from_bits(0b11).unwrap();
        assert!(!bad.valid());
    }

    #[test]
    fn file_type_codec_roundtrip() {
        for t in [FileType::Regular, FileType::Directory, FileType::Symlink] {
            assert_eq!(FileType::from_u8(t.as_u8()), Some(t));
        }
        assert_eq!(FileType::from_u8(0), None);
        assert_eq!(FileType::from_u8(200), None);
    }

    #[test]
    fn root_ino_is_one_and_not_null() {
        assert_eq!(ROOT_INO, InodeNo(1));
        assert!(!ROOT_INO.is_null());
        assert!(InodeNo(0).is_null());
    }

    #[test]
    fn display_formats() {
        assert_eq!(InodeNo(5).to_string(), "ino5");
        assert_eq!(Fd(3).to_string(), "fd3");
        let f = OpenFlags::RDWR | OpenFlags::CREATE;
        assert_eq!(f.to_string(), "rw|creat");
    }
}
