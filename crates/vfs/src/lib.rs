//! Shared API surface for the RAE (Robust Alternative Execution) stack.
//!
//! This crate defines everything the *base* filesystem, the *shadow*
//! filesystem, the executable specification, and the RAE runtime agree on:
//!
//! * [`FsError`] / [`FsResult`] — the POSIX-flavoured error model,
//!   extended with the runtime-error categories the paper cares about
//!   (detected bugs, corruption, failed invariant checks);
//! * [`FileSystem`] — the object-safe operation vocabulary (a
//!   syscall-like API: `open`/`read`/`write`/`mkdir`/`rename`/…);
//! * [`FsOp`], [`OpOutcome`], [`OpRecord`] — the *recorded operation
//!   sequence*: the execution trace RAE maintains between the
//!   application-visible state and the on-disk state, which the shadow
//!   re-executes during recovery;
//! * small strong types ([`InodeNo`], [`Fd`], [`OpenFlags`], …).
//!
//! # Example
//!
//! ```
//! use rae_vfs::{FsOp, OpenFlags, OpRecord, OpOutcome};
//!
//! let op = FsOp::Create {
//!     path: "/a/b".to_string(),
//!     flags: OpenFlags::RDWR | OpenFlags::CREATE,
//! };
//! assert!(op.mutates_state());
//! let rec = OpRecord::new(7, op);
//! assert_eq!(rec.seq, 7);
//! assert!(matches!(rec.outcome, OpOutcome::Pending));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fs;
mod ops;
mod stats;
mod types;

pub use error::{FsError, FsResult};
pub use fs::{split_parent, split_path, FileSystem, FsStatus};
pub use ops::{Bytes, FsOp, OpKind, OpOutcome, OpRecord};
pub use stats::OpCounters;
pub use types::{
    DirEntry, Fd, FileStat, FileType, FsGeometryInfo, InodeNo, OpenFlags, SetAttr, FIRST_FD,
    MAX_FILE_SIZE, MAX_LINKS, MAX_NAME_LEN, MAX_OPEN_FILES, ROOT_INO,
};
