//! Fault injection for the base filesystem.
//!
//! The paper's bug study (Table 1) classifies filesystem bugs along two
//! axes: **determinism** (deterministic / non-deterministic) and
//! **consequence** (crash / WARN / no-crash / unknown). This crate
//! expresses injectable bugs in exactly those terms:
//!
//! * a [`Trigger`] decides *when* a bug fires — deterministic triggers
//!   match operation patterns (path, offset, N-th invocation);
//!   non-deterministic triggers fire with seeded probability;
//! * an [`Effect`] decides *what happens* — a detected error return
//!   (`DetectedBug`), a panic (the crash class; the RAE runtime catches
//!   it), a WARN event (logged, execution continues), or a silent wrong
//!   result (the no-crash class: data corruption detectable only by
//!   cross-checking, as in experiment E6).
//!
//! The base filesystem calls [`FaultRegistry::check`] at realistic code
//! sites ([`Site`]); an armed bug whose trigger matches produces a
//! [`FaultAction`] the base then *executes* — the injection framework
//! never bypasses the base's own code paths.
//!
//! # Example
//!
//! ```
//! use rae_faults::{BugSpec, Effect, FaultRegistry, OpContext, Site, Trigger};
//! use rae_vfs::OpKind;
//!
//! let reg = FaultRegistry::new();
//! reg.arm(BugSpec::new(7, "rename-crash", Site::Rename, Trigger::PathContains("victim".into()), Effect::Panic));
//!
//! let ctx = OpContext::new(OpKind::Rename, Site::Rename).with_path("/dir/victim");
//! assert!(reg.check(&ctx).is_some());
//! assert_eq!(reg.fired(7), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod registry;
mod spec;

pub use corpus::standard_bug_corpus;
pub use registry::{FaultAction, FaultRegistry, WarnEvent};
pub use spec::{BugSpec, Effect, OpContext, Site, Trigger};
