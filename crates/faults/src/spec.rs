//! Bug specifications: sites, triggers, effects.

use rae_vfs::OpKind;
use serde::{Deserialize, Serialize};

/// Code sites in the base filesystem where fault hooks are placed.
///
/// These mirror where real ext4-class bugs live (per the paper's study):
/// input sanitization at the API boundary, path lookup, directory
/// modification, allocators, the write path, journal commit, and
/// crafted-image parsing at mount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Site {
    /// Operation entry (argument sanitization bugs).
    ApiEntry,
    /// Path resolution / dentry-cache interaction.
    PathLookup,
    /// Directory entry insertion/removal.
    DirModify,
    /// Inode or block allocation.
    Alloc,
    /// The data write path.
    Write,
    /// Truncate / block freeing.
    Truncate,
    /// Journal transaction commit.
    JournalCommit,
    /// Directory listing.
    Readdir,
    /// Rename-specific logic (classically bug-rich).
    Rename,
    /// On-disk structure parsing at mount time (crafted images).
    MountImage,
    /// The contained reboot inside RAE recovery (cache reset + journal
    /// replay). Faults here model recovery tooling failing while the
    /// system is already degraded.
    RecoveryReboot,
    /// The shadow's constrained replay inside RAE recovery.
    RecoveryReplay,
    /// The metadata download (absorb) phase inside RAE recovery.
    RecoveryAbsorb,
}

impl Site {
    /// All sites, in a stable order.
    pub const ALL: [Site; 13] = [
        Site::ApiEntry,
        Site::PathLookup,
        Site::DirModify,
        Site::Alloc,
        Site::Write,
        Site::Truncate,
        Site::JournalCommit,
        Site::Readdir,
        Site::Rename,
        Site::MountImage,
        Site::RecoveryReboot,
        Site::RecoveryReplay,
        Site::RecoveryAbsorb,
    ];

    /// Whether the site sits inside the recovery path itself (fired
    /// only while a recovery is running, not by foreground operations).
    #[must_use]
    pub fn is_recovery_site(self) -> bool {
        matches!(
            self,
            Site::RecoveryReboot | Site::RecoveryReplay | Site::RecoveryAbsorb
        )
    }
}

/// When an armed bug fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// On every matching site visit.
    Always,
    /// Exactly once, on the N-th matching visit (1-based).
    NthMatch(u64),
    /// On every N-th matching visit.
    EveryNth(u64),
    /// When the operation's primary or secondary path contains the
    /// needle.
    PathContains(String),
    /// When the operation kind matches.
    OpIs(OpKind),
    /// When the operation offset is at or above the threshold.
    OffsetAtLeast(u64),
    /// When the payload length is at or above the threshold.
    LenAtLeast(usize),
    /// Fires with probability `p` per matching visit (seeded —
    /// *non-deterministic* in the paper's classification, reproducible
    /// in tests).
    Random {
        /// Firing probability in `[0, 1]`.
        p: f64,
    },
    /// All sub-triggers must match (counting applies to the
    /// conjunction).
    All(Vec<Trigger>),
}

impl Trigger {
    /// Whether the trigger is deterministic in the paper's sense: given
    /// the same operation sequence it fires at the same points.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        match self {
            Trigger::Random { .. } => false,
            Trigger::All(ts) => ts.iter().all(Trigger::is_deterministic),
            _ => true,
        }
    }
}

/// What happens when a bug fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effect {
    /// The base detects the problem and surfaces
    /// [`rae_vfs::FsError::DetectedBug`] — the cleanest runtime error.
    DetectedError,
    /// The base panics (kernel-crash class). The RAE runtime catches
    /// the unwind at the API boundary.
    Panic,
    /// A `WARN_ON`-style event: recorded, execution continues. RAE
    /// policy decides whether WARN triggers recovery.
    Warn,
    /// The operation silently produces a wrong result (bit-flipped
    /// write payload). Undetectable without cross-checking.
    SilentWrongResult,
    /// The bug scribbles over an in-memory *metadata* page (the
    /// memory-corruption class). Nothing fails at the buggy operation;
    /// the base's validate-on-commit check catches it at the next
    /// persistence point — the paper's fault-model assumption that
    /// "errors are detected before being persisted to disk".
    CorruptMetadata,
}

/// A fully-specified injectable bug.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugSpec {
    /// Unique identifier (appears in `FsError::DetectedBug`).
    pub id: u32,
    /// Human-readable name for reports.
    pub name: String,
    /// Hook site the bug lives at.
    pub site: Site,
    /// Firing condition.
    pub trigger: Trigger,
    /// Consequence.
    pub effect: Effect,
}

impl BugSpec {
    /// Create a spec.
    #[must_use]
    pub fn new(
        id: u32,
        name: impl Into<String>,
        site: Site,
        trigger: Trigger,
        effect: Effect,
    ) -> BugSpec {
        BugSpec {
            id,
            name: name.into(),
            site,
            trigger,
            effect,
        }
    }

    /// Whether the bug is deterministic (derived from its trigger).
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.trigger.is_deterministic()
    }
}

/// The operation context the base passes to fault hooks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpContext<'a> {
    /// Operation kind.
    pub kind: OpKind,
    /// The site being visited.
    pub site: Site,
    /// Primary path, when the operation has one.
    pub path: Option<&'a str>,
    /// Secondary path (rename target, link name).
    pub path2: Option<&'a str>,
    /// Byte offset, for I/O operations.
    pub offset: Option<u64>,
    /// Payload length, for I/O operations.
    pub len: Option<usize>,
}

impl<'a> OpContext<'a> {
    /// A context with only kind and site.
    #[must_use]
    pub fn new(kind: OpKind, site: Site) -> OpContext<'a> {
        OpContext {
            kind,
            site,
            path: None,
            path2: None,
            offset: None,
            len: None,
        }
    }

    /// Attach the primary path.
    #[must_use]
    pub fn with_path(mut self, path: &'a str) -> OpContext<'a> {
        self.path = Some(path);
        self
    }

    /// Attach the secondary path.
    #[must_use]
    pub fn with_path2(mut self, path: &'a str) -> OpContext<'a> {
        self.path2 = Some(path);
        self
    }

    /// Attach offset and length.
    #[must_use]
    pub fn with_io(mut self, offset: u64, len: usize) -> OpContext<'a> {
        self.offset = Some(offset);
        self.len = Some(len);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_classification() {
        assert!(Trigger::Always.is_deterministic());
        assert!(Trigger::NthMatch(3).is_deterministic());
        assert!(Trigger::PathContains("x".into()).is_deterministic());
        assert!(!Trigger::Random { p: 0.5 }.is_deterministic());
        assert!(Trigger::All(vec![Trigger::Always, Trigger::NthMatch(1)]).is_deterministic());
        assert!(
            !Trigger::All(vec![Trigger::Always, Trigger::Random { p: 0.1 }]).is_deterministic()
        );
    }

    #[test]
    fn bugspec_carries_determinism() {
        let det = BugSpec::new(1, "d", Site::Write, Trigger::Always, Effect::Panic);
        assert!(det.is_deterministic());
        let nondet = BugSpec::new(
            2,
            "n",
            Site::Write,
            Trigger::Random { p: 0.1 },
            Effect::Warn,
        );
        assert!(!nondet.is_deterministic());
    }

    #[test]
    fn context_builders() {
        let ctx = OpContext::new(OpKind::Write, Site::Write)
            .with_path("/a")
            .with_io(100, 4096);
        assert_eq!(ctx.path, Some("/a"));
        assert_eq!(ctx.offset, Some(100));
        assert_eq!(ctx.len, Some(4096));
    }
}
