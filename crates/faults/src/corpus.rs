//! The standard injectable-bug corpus used by the availability and
//! differential experiments (E4, E6).
//!
//! The corpus spans the determinism × consequence matrix of the paper's
//! Table 1: deterministic and non-deterministic triggers crossed with
//! crash (panic), WARN, detected-error, and silent-no-crash effects,
//! placed at the code sites the paper's Figure 1 discussion names as
//! bug-rich (input sanitization, rename, allocation, new-feature write
//! paths, mount-time image parsing).

use crate::spec::{BugSpec, Effect, Site, Trigger};
use rae_vfs::OpKind;

/// Build the standard 21-bug corpus.
///
/// Ids are stable (100–120) so experiment tables can reference them.
/// Deterministic bugs use operation-pattern triggers; non-deterministic
/// ones use seeded probabilities.
#[must_use]
pub fn standard_bug_corpus() -> Vec<BugSpec> {
    vec![
        // --- deterministic, crash (panic) class ---
        BugSpec::new(
            100,
            "rename-dir-null-deref",
            Site::Rename,
            Trigger::PathContains("victim".into()),
            Effect::Panic,
        ),
        BugSpec::new(
            101,
            "unlink-use-after-free",
            Site::DirModify,
            Trigger::All(vec![Trigger::OpIs(OpKind::Unlink), Trigger::NthMatch(50)]),
            Effect::Panic,
        ),
        BugSpec::new(
            102,
            "large-offset-overflow",
            Site::Write,
            Trigger::OffsetAtLeast(1 << 30),
            Effect::Panic,
        ),
        BugSpec::new(
            103,
            "mount-crafted-image-crash",
            Site::MountImage,
            Trigger::Always,
            Effect::Panic,
        ),
        // --- deterministic, detected-error class ---
        BugSpec::new(
            104,
            "alloc-accounting-check",
            Site::Alloc,
            Trigger::NthMatch(100),
            Effect::DetectedError,
        ),
        BugSpec::new(
            105,
            "truncate-extent-check",
            Site::Truncate,
            Trigger::All(vec![Trigger::OpIs(OpKind::Truncate), Trigger::NthMatch(10)]),
            Effect::DetectedError,
        ),
        BugSpec::new(
            106,
            "readdir-bad-reclen",
            Site::Readdir,
            Trigger::PathContains("hotdir".into()),
            Effect::DetectedError,
        ),
        BugSpec::new(
            107,
            "journal-commit-espace",
            Site::JournalCommit,
            Trigger::NthMatch(20),
            Effect::DetectedError,
        ),
        BugSpec::new(
            108,
            "lookup-sanity-check",
            Site::PathLookup,
            Trigger::PathContains("deep/deep".into()),
            Effect::DetectedError,
        ),
        // --- deterministic, WARN class ---
        BugSpec::new(
            109,
            "write-warn-dirty-accounting",
            Site::Write,
            Trigger::EveryNth(500),
            Effect::Warn,
        ),
        BugSpec::new(
            110,
            "api-warn-flag-combo",
            Site::ApiEntry,
            Trigger::All(vec![Trigger::OpIs(OpKind::Open), Trigger::NthMatch(64)]),
            Effect::Warn,
        ),
        // --- deterministic, silent no-crash class ---
        BugSpec::new(
            111,
            "write-silent-bitflip",
            Site::Write,
            Trigger::All(vec![Trigger::LenAtLeast(1024), Trigger::EveryNth(97)]),
            Effect::SilentWrongResult,
        ),
        BugSpec::new(
            112,
            "append-silent-corruption",
            Site::Write,
            Trigger::All(vec![
                Trigger::PathContains(".log".into()),
                Trigger::EveryNth(41),
            ]),
            Effect::SilentWrongResult,
        ),
        // --- non-deterministic, crash class ---
        BugSpec::new(
            113,
            "race-dentry-crash",
            Site::PathLookup,
            Trigger::Random { p: 0.0005 },
            Effect::Panic,
        ),
        BugSpec::new(
            114,
            "race-alloc-crash",
            Site::Alloc,
            Trigger::Random { p: 0.0005 },
            Effect::Panic,
        ),
        // --- non-deterministic, detected-error class ---
        BugSpec::new(
            115,
            "transient-io-detected",
            Site::Write,
            Trigger::Random { p: 0.001 },
            Effect::DetectedError,
        ),
        BugSpec::new(
            116,
            "transient-commit-detected",
            Site::JournalCommit,
            Trigger::Random { p: 0.002 },
            Effect::DetectedError,
        ),
        // --- non-deterministic, WARN class ---
        BugSpec::new(
            117,
            "transient-warn",
            Site::DirModify,
            Trigger::Random { p: 0.001 },
            Effect::Warn,
        ),
        // --- non-deterministic, silent class ---
        BugSpec::new(
            118,
            "transient-silent-corruption",
            Site::Write,
            Trigger::Random { p: 0.0008 },
            Effect::SilentWrongResult,
        ),
        BugSpec::new(
            119,
            "transient-readdir-warn",
            Site::Readdir,
            Trigger::Random { p: 0.001 },
            Effect::Warn,
        ),
        // --- deterministic, memory-corruption class (detected at the
        // next commit by validate-on-sync, per the fault model) ---
        BugSpec::new(
            120,
            "dirmod-metadata-scribbler",
            Site::DirModify,
            Trigger::EveryNth(350),
            Effect::CorruptMetadata,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_stable_unique_ids() {
        let corpus = standard_bug_corpus();
        assert_eq!(corpus.len(), 21);
        let mut ids: Vec<u32> = corpus.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 21);
        assert_eq!(*ids.first().unwrap(), 100);
        assert_eq!(*ids.last().unwrap(), 120);
    }

    #[test]
    fn corpus_spans_the_matrix() {
        let corpus = standard_bug_corpus();
        let det: Vec<_> = corpus.iter().filter(|b| b.is_deterministic()).collect();
        let nondet: Vec<_> = corpus.iter().filter(|b| !b.is_deterministic()).collect();
        assert!(
            det.len() >= 10,
            "deterministic bugs are the majority, as in Table 1"
        );
        assert!(nondet.len() >= 5);

        for effect in [
            Effect::Panic,
            Effect::DetectedError,
            Effect::Warn,
            Effect::SilentWrongResult,
        ] {
            assert!(
                det.iter().any(|b| b.effect == effect),
                "deterministic {effect:?} missing"
            );
            assert!(
                nondet.iter().any(|b| b.effect == effect)
                    || effect == Effect::DetectedError
                    || nondet.iter().any(|b| b.effect == effect),
                "non-deterministic {effect:?} missing"
            );
        }
    }

    #[test]
    fn corpus_covers_many_sites() {
        let corpus = standard_bug_corpus();
        let sites: std::collections::HashSet<_> = corpus.iter().map(|b| b.site).collect();
        assert!(sites.len() >= 8, "only {} sites covered", sites.len());
    }
}
