//! The runtime fault registry consulted by the base's hooks.

use crate::spec::{BugSpec, Effect, OpContext, Trigger};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// What the base must do at a hook where a bug fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return [`rae_vfs::FsError::DetectedBug`] with this id.
    FailDetected {
        /// Bug id.
        bug_id: u32,
    },
    /// Panic with a message naming this bug.
    Panic {
        /// Bug id.
        bug_id: u32,
    },
    /// Record a WARN event and continue.
    Warn {
        /// Bug id.
        bug_id: u32,
    },
    /// Corrupt the operation's payload/result silently.
    CorruptSilently {
        /// Bug id.
        bug_id: u32,
    },
    /// Scribble over an in-memory metadata page.
    CorruptMetadata {
        /// Bug id.
        bug_id: u32,
    },
}

impl FaultAction {
    /// The id of the bug that produced this action.
    #[must_use]
    pub fn bug_id(self) -> u32 {
        match self {
            FaultAction::FailDetected { bug_id }
            | FaultAction::Panic { bug_id }
            | FaultAction::Warn { bug_id }
            | FaultAction::CorruptSilently { bug_id }
            | FaultAction::CorruptMetadata { bug_id } => bug_id,
        }
    }
}

/// A WARN event recorded by a [`Effect::Warn`] bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarnEvent {
    /// The bug that warned.
    pub bug_id: u32,
    /// Sequential index of the event since registry creation.
    pub index: u64,
}

#[derive(Debug)]
struct Armed {
    spec: BugSpec,
    matches: u64,
    fires: u64,
}

#[derive(Debug)]
struct Inner {
    armed: Vec<Armed>,
    rng: SmallRng,
    warn_log: Vec<WarnEvent>,
    warn_count: u64,
}

/// Thread-safe registry of armed bugs; cloneable handle.
///
/// The base filesystem holds one and calls [`FaultRegistry::check`] at
/// each [`crate::Site`]; tests and experiment harnesses arm/disarm bugs
/// and inspect fire counts.
#[derive(Debug, Clone, Default)]
pub struct FaultRegistry {
    inner: Arc<Mutex<Option<Inner>>>,
}

impl FaultRegistry {
    /// An empty registry (seed 0).
    #[must_use]
    pub fn new() -> FaultRegistry {
        FaultRegistry::with_seed(0)
    }

    /// An empty registry with an explicit seed for `Random` triggers.
    #[must_use]
    pub fn with_seed(seed: u64) -> FaultRegistry {
        FaultRegistry {
            inner: Arc::new(Mutex::new(Some(Inner {
                armed: Vec::new(),
                rng: SmallRng::seed_from_u64(seed),
                warn_log: Vec::new(),
                warn_count: 0,
            }))),
        }
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        let mut guard = self.inner.lock();
        f(guard.as_mut().expect("registry inner always present"))
    }

    /// Arm a bug. Re-arming an id replaces the old spec and resets its
    /// counters.
    pub fn arm(&self, spec: BugSpec) {
        self.with_inner(|inner| {
            inner.armed.retain(|a| a.spec.id != spec.id);
            inner.armed.push(Armed {
                spec,
                matches: 0,
                fires: 0,
            });
        });
    }

    /// Disarm a bug by id; `true` if it was armed.
    pub fn disarm(&self, id: u32) -> bool {
        self.with_inner(|inner| {
            let before = inner.armed.len();
            inner.armed.retain(|a| a.spec.id != id);
            inner.armed.len() != before
        })
    }

    /// Disarm everything.
    pub fn clear(&self) {
        self.with_inner(|inner| inner.armed.clear());
    }

    /// Number of currently armed bugs.
    #[must_use]
    pub fn armed_count(&self) -> usize {
        self.with_inner(|inner| inner.armed.len())
    }

    /// How many times bug `id` has fired.
    #[must_use]
    pub fn fired(&self, id: u32) -> u64 {
        self.with_inner(|inner| {
            inner
                .armed
                .iter()
                .find(|a| a.spec.id == id)
                .map_or(0, |a| a.fires)
        })
    }

    /// Total fires across all armed bugs.
    #[must_use]
    pub fn total_fired(&self) -> u64 {
        self.with_inner(|inner| inner.armed.iter().map(|a| a.fires).sum())
    }

    /// Drain recorded WARN events.
    #[must_use]
    pub fn take_warnings(&self) -> Vec<WarnEvent> {
        self.with_inner(|inner| std::mem::take(&mut inner.warn_log))
    }

    /// Number of WARN events recorded since creation (not reset by
    /// [`FaultRegistry::take_warnings`]).
    #[must_use]
    pub fn warn_count(&self) -> u64 {
        self.with_inner(|inner| inner.warn_count)
    }

    fn trigger_matches(trigger: &Trigger, ctx: &OpContext<'_>, rng: &mut SmallRng) -> bool {
        match trigger {
            Trigger::Always | Trigger::NthMatch(_) | Trigger::EveryNth(_) => true,
            Trigger::PathContains(needle) => {
                ctx.path.is_some_and(|p| p.contains(needle.as_str()))
                    || ctx.path2.is_some_and(|p| p.contains(needle.as_str()))
            }
            Trigger::OpIs(kind) => ctx.kind == *kind,
            Trigger::OffsetAtLeast(t) => ctx.offset.is_some_and(|o| o >= *t),
            Trigger::LenAtLeast(t) => ctx.len.is_some_and(|l| l >= *t),
            Trigger::Random { p } => rng.gen_bool(p.clamp(0.0, 1.0)),
            Trigger::All(ts) => ts.iter().all(|t| Self::trigger_matches(t, ctx, rng)),
        }
    }

    /// Consult the registry at a hook. Returns the action of the first
    /// armed bug (in arming order) whose site and trigger match.
    ///
    /// WARN effects are recorded here (and still returned, so the base
    /// can trace them).
    #[must_use]
    pub fn check(&self, ctx: &OpContext<'_>) -> Option<FaultAction> {
        self.with_inner(|inner| {
            let Inner {
                armed,
                rng,
                warn_log,
                warn_count,
            } = inner;
            for a in armed.iter_mut() {
                if a.spec.site != ctx.site {
                    continue;
                }
                if !Self::trigger_matches(&a.spec.trigger, ctx, rng) {
                    continue;
                }
                a.matches += 1;
                // counting triggers gate on the match counter
                let fires = match &a.spec.trigger {
                    Trigger::NthMatch(n) => a.matches == *n,
                    Trigger::EveryNth(n) => *n > 0 && a.matches % n == 0,
                    Trigger::All(ts) => {
                        // a counting sub-trigger gates the conjunction
                        let mut ok = true;
                        for t in ts {
                            match t {
                                Trigger::NthMatch(n) => ok &= a.matches == *n,
                                Trigger::EveryNth(n) => ok &= *n > 0 && a.matches % n == 0,
                                _ => {}
                            }
                        }
                        ok
                    }
                    _ => true,
                };
                if !fires {
                    continue;
                }
                a.fires += 1;
                let bug_id = a.spec.id;
                let action = match a.spec.effect {
                    Effect::DetectedError => FaultAction::FailDetected { bug_id },
                    Effect::Panic => FaultAction::Panic { bug_id },
                    Effect::Warn => {
                        warn_log.push(WarnEvent {
                            bug_id,
                            index: *warn_count,
                        });
                        *warn_count += 1;
                        FaultAction::Warn { bug_id }
                    }
                    Effect::SilentWrongResult => FaultAction::CorruptSilently { bug_id },
                    Effect::CorruptMetadata => FaultAction::CorruptMetadata { bug_id },
                };
                return Some(action);
            }
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Site;
    use rae_vfs::OpKind;

    fn ctx<'a>(site: Site) -> OpContext<'a> {
        OpContext::new(OpKind::Write, site)
    }

    #[test]
    fn empty_registry_never_fires() {
        let reg = FaultRegistry::new();
        assert_eq!(reg.check(&ctx(Site::Write)), None);
        assert_eq!(reg.total_fired(), 0);
    }

    #[test]
    fn site_mismatch_does_not_fire() {
        let reg = FaultRegistry::new();
        reg.arm(BugSpec::new(
            1,
            "b",
            Site::Rename,
            Trigger::Always,
            Effect::Panic,
        ));
        assert_eq!(reg.check(&ctx(Site::Write)), None);
        assert_eq!(
            reg.check(&ctx(Site::Rename)),
            Some(FaultAction::Panic { bug_id: 1 })
        );
    }

    #[test]
    fn nth_match_fires_exactly_once() {
        let reg = FaultRegistry::new();
        reg.arm(BugSpec::new(
            2,
            "b",
            Site::Alloc,
            Trigger::NthMatch(3),
            Effect::DetectedError,
        ));
        assert_eq!(reg.check(&ctx(Site::Alloc)), None);
        assert_eq!(reg.check(&ctx(Site::Alloc)), None);
        assert_eq!(
            reg.check(&ctx(Site::Alloc)),
            Some(FaultAction::FailDetected { bug_id: 2 })
        );
        assert_eq!(reg.check(&ctx(Site::Alloc)), None);
        assert_eq!(reg.fired(2), 1);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let reg = FaultRegistry::new();
        reg.arm(BugSpec::new(
            3,
            "b",
            Site::Write,
            Trigger::EveryNth(2),
            Effect::Warn,
        ));
        let fired: Vec<bool> = (0..6)
            .map(|_| reg.check(&ctx(Site::Write)).is_some())
            .collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
        assert_eq!(reg.warn_count(), 3);
    }

    #[test]
    fn path_trigger_matches_either_path() {
        let reg = FaultRegistry::new();
        reg.arm(BugSpec::new(
            4,
            "b",
            Site::Rename,
            Trigger::PathContains("boom".into()),
            Effect::Panic,
        ));
        let clean = OpContext::new(OpKind::Rename, Site::Rename)
            .with_path("/a")
            .with_path2("/b");
        assert_eq!(reg.check(&clean), None);
        let hit = OpContext::new(OpKind::Rename, Site::Rename)
            .with_path("/a")
            .with_path2("/dir/boom");
        assert!(reg.check(&hit).is_some());
    }

    #[test]
    fn conjunction_with_counter() {
        // fires on the 2nd write to a matching path only
        let reg = FaultRegistry::new();
        reg.arm(BugSpec::new(
            5,
            "b",
            Site::Write,
            Trigger::All(vec![
                Trigger::PathContains("db".into()),
                Trigger::NthMatch(2),
            ]),
            Effect::DetectedError,
        ));
        let hit = OpContext::new(OpKind::Write, Site::Write).with_path("/db/file");
        let miss = OpContext::new(OpKind::Write, Site::Write).with_path("/other");
        assert_eq!(reg.check(&miss), None);
        assert_eq!(reg.check(&hit), None); // 1st match
        assert_eq!(reg.check(&miss), None); // doesn't count
        assert!(reg.check(&hit).is_some()); // 2nd match fires
    }

    #[test]
    fn random_trigger_is_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let reg = FaultRegistry::with_seed(seed);
            reg.arm(BugSpec::new(
                6,
                "b",
                Site::Write,
                Trigger::Random { p: 0.3 },
                Effect::Warn,
            ));
            (0..32)
                .map(|_| reg.check(&ctx(Site::Write)).is_some())
                .collect()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn warn_events_are_logged_and_drained() {
        let reg = FaultRegistry::new();
        reg.arm(BugSpec::new(
            7,
            "w",
            Site::Readdir,
            Trigger::Always,
            Effect::Warn,
        ));
        let _ = reg.check(&ctx(Site::Readdir));
        let _ = reg.check(&ctx(Site::Readdir));
        let events = reg.take_warnings();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].bug_id, 7);
        assert!(reg.take_warnings().is_empty());
        assert_eq!(reg.warn_count(), 2, "cumulative count survives draining");
    }

    #[test]
    fn rearm_resets_counters() {
        let reg = FaultRegistry::new();
        let spec = BugSpec::new(8, "b", Site::Alloc, Trigger::NthMatch(1), Effect::Panic);
        reg.arm(spec.clone());
        assert!(reg.check(&ctx(Site::Alloc)).is_some());
        reg.arm(spec);
        assert!(
            reg.check(&ctx(Site::Alloc)).is_some(),
            "counter reset on re-arm"
        );
    }

    #[test]
    fn disarm_and_clear() {
        let reg = FaultRegistry::new();
        reg.arm(BugSpec::new(
            9,
            "b",
            Site::Write,
            Trigger::Always,
            Effect::Panic,
        ));
        assert!(reg.disarm(9));
        assert!(!reg.disarm(9));
        assert_eq!(reg.check(&ctx(Site::Write)), None);
        reg.arm(BugSpec::new(
            10,
            "b",
            Site::Write,
            Trigger::Always,
            Effect::Panic,
        ));
        reg.clear();
        assert_eq!(reg.armed_count(), 0);
    }

    #[test]
    fn clones_share_state() {
        let reg = FaultRegistry::new();
        let clone = reg.clone();
        clone.arm(BugSpec::new(
            11,
            "b",
            Site::Write,
            Trigger::Always,
            Effect::Warn,
        ));
        assert_eq!(reg.armed_count(), 1);
        let _ = reg.check(&ctx(Site::Write));
        assert_eq!(clone.fired(11), 1);
    }
}
