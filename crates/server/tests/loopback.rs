//! End-to-end tests against a live server on a loopback socket: the
//! full VFS op set over the wire, admin ops, fault masking under
//! traffic, malformed-frame handling, and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rae_server::wire::{Request, Response, ServerError};
use rae_server::{Client, ClientError, Server, ServerConfig, VolumeManager};
use rae_vfs::{FsError, OpenFlags, SetAttr};

use rae_server::quiet_injected_panics;

fn start_server(config: &ServerConfig) -> Server {
    let manager = Arc::new(VolumeManager::new());
    Server::bind("127.0.0.1:0", manager, config).expect("bind loopback server")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.local_addr()).expect("connect to server")
}

// Wire codes for injection (indices into Site::ALL / the effect table).
const SITE_PATH_LOOKUP: u8 = 1;
const SITE_WRITE: u8 = 4;
const EFFECT_DETECTED_ERROR: u8 = 0;
const EFFECT_PANIC: u8 = 1;

#[test]
fn full_op_set_and_admin_over_the_wire() {
    let server = start_server(&ServerConfig::default());
    let mut c = connect(&server);

    c.ping().unwrap();
    let va = c.create_volume("alpha", 2048, 512, 128, 0, 0).unwrap();
    let vb = c.create_volume("beta", 2048, 512, 128, 0, 0).unwrap();
    assert_ne!(va, vb);
    let listed = c.list_volumes().unwrap();
    assert_eq!(listed.len(), 2);
    assert!(listed.iter().any(|v| v.name == "alpha"));

    // Files and directories.
    c.mkdir(va, "/dir").unwrap();
    let fd = c
        .open(va, "/dir/file", OpenFlags::RDWR | OpenFlags::CREATE)
        .unwrap();
    assert_eq!(c.write(va, fd, 0, b"hello wire").unwrap(), 10);
    c.fsync(va, fd).unwrap();
    assert_eq!(c.read(va, fd, 0, 5).unwrap(), b"hello");
    let st = c.fstat(va, fd).unwrap();
    assert_eq!(st.size, 10);
    c.truncate(va, fd, 5).unwrap();
    assert_eq!(c.fstat(va, fd).unwrap().size, 5);
    c.close(va, fd).unwrap();

    c.setattr(
        va,
        "/dir/file",
        SetAttr {
            size: Some(3),
            mtime: Some(42),
        },
    )
    .unwrap();
    assert_eq!(c.stat(va, "/dir/file").unwrap().size, 3);

    c.rename(va, "/dir/file", "/dir/moved").unwrap();
    c.link(va, "/dir/moved", "/dir/hard").unwrap();
    assert_eq!(c.stat(va, "/dir/hard").unwrap().nlink, 2);
    c.symlink(va, "/dir/moved", "/dir/sym").unwrap();
    assert_eq!(c.readlink(va, "/dir/sym").unwrap(), "/dir/moved");

    let names: Vec<String> = c
        .readdir(va, "/dir")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    for want in ["moved", "hard", "sym"] {
        assert!(names.contains(&want.to_string()), "missing {want}");
    }

    let geo = c.statfs(va).unwrap();
    assert!(geo.total_blocks > 0);
    c.sync(va).unwrap();

    // Volumes are isolated: alpha's tree is invisible on beta.
    assert!(matches!(
        c.stat(vb, "/dir/moved"),
        Err(ClientError::Fs(FsError::NotFound))
    ));

    // Errors carry their FsError identity across the wire.
    assert!(matches!(
        c.mkdir(va, "/dir"),
        Err(ClientError::Fs(FsError::Exists))
    ));

    // Unknown volume id is a server-level error, not a filesystem one.
    assert_eq!(
        c.ping_volume_err(9999),
        ServerError::NoSuchVolume { volume: 9999 }
    );

    // Cleanup ops round-trip too.
    c.unlink(va, "/dir/hard").unwrap();
    c.unlink(va, "/dir/sym").unwrap();
    c.unlink(va, "/dir/moved").unwrap();
    c.rmdir(va, "/dir").unwrap();

    // Stats JSON is volume-keyed and balanced.
    let stats = c.server_stats().unwrap();
    assert!(stats.contains("\"alpha\"") && stats.contains("\"beta\""));
    assert_eq!(
        stats.matches('{').count(),
        stats.matches('}').count(),
        "unbalanced stats json: {stats}"
    );

    drop(c);
    let report = server.shutdown().unwrap();
    assert_eq!(report.volumes_unmounted, 2);
    assert!(report.all_clean, "both volumes should unmount cleanly");
    assert!(report.requests > 20);
}

/// Helper extension: issue a stat at an unknown volume and return the
/// server error (kept out of `Client` — it is a test-only probe).
trait ClientExt {
    fn ping_volume_err(&mut self, volume: u32) -> ServerError;
}

impl ClientExt for Client {
    fn ping_volume_err(&mut self, volume: u32) -> ServerError {
        let req = Request::Fs {
            volume,
            op: rae_server::FsOp::Statfs,
        };
        match self.call(&req).unwrap() {
            Response::ServerErr(e) => e,
            other => panic!("expected server error, got {other:?}"),
        }
    }
}

#[test]
fn injected_faults_are_masked_under_live_traffic() {
    quiet_injected_panics();
    let server = start_server(&ServerConfig::default());
    let mut c = connect(&server);
    let vol = c.create_volume("faulty", 2048, 512, 128, 0, 0).unwrap();

    c.mkdir(vol, "/d").unwrap();
    let fd = c
        .open(vol, "/d/f", OpenFlags::RDWR | OpenFlags::CREATE)
        .unwrap();
    c.write(vol, fd, 0, b"steady state").unwrap();

    // Fault A: panic inside path lookup. The next path op trips it;
    // RAE catches the panic, runs the ladder, and the client sees a
    // normal success.
    let bug_a = c
        .inject_fault(vol, SITE_PATH_LOOKUP, EFFECT_PANIC, 1)
        .unwrap();
    let st = c.stat(vol, "/d/f").expect("panic fault must be masked");
    assert_eq!(st.size, 12);

    // Fault B: detected error inside the write path, also masked.
    let bug_b = c
        .inject_fault(vol, SITE_WRITE, EFFECT_DETECTED_ERROR, 1)
        .unwrap();
    assert_ne!(bug_a, bug_b);
    let fd = c
        .open(vol, "/d/f", OpenFlags::RDWR | OpenFlags::CREATE)
        .unwrap();
    c.write(vol, fd, 0, b"after fault")
        .expect("detected-error fault must be masked");
    assert_eq!(c.read(vol, fd, 0, 11).unwrap(), b"after fault");

    // Both recoveries are visible in the volume's stats JSON, and the
    // volume came back to Active (status code 0).
    let stats = c.volume_stats(vol).unwrap();
    assert!(stats.contains("\"recoveries\": 2"), "stats: {stats}");
    let vols = c.list_volumes().unwrap();
    assert_eq!(vols[0].status, 0, "volume should be Active again");

    // force-recover keeps working after real faults.
    assert_eq!(c.force_recover(vol).unwrap(), 0);

    drop(c);
    let report = server.shutdown().unwrap();
    assert_eq!(report.volumes_unmounted, 1);
    assert!(report.all_clean);
}

#[test]
fn quota_exhaustion_returns_wire_error_and_counts() {
    let server = start_server(&ServerConfig::default());
    let mut c = connect(&server);
    let vol = c.create_volume("metered", 2048, 512, 128, 4, 0).unwrap();

    let mut ok = 0u32;
    let mut refused = 0u32;
    for _ in 0..8 {
        match c.sync(vol) {
            Ok(()) => ok += 1,
            Err(ClientError::Server(ServerError::QuotaExceeded { volume })) => {
                assert_eq!(volume, vol);
                refused += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(ok, 4);
    assert_eq!(refused, 4);

    // The refusal is a service-level condition the client can classify.
    let err = c.sync(vol).unwrap_err();
    assert!(err.is_service_refusal());

    // Admin ops are not charged against the tenant quota.
    let stats = c.volume_stats(vol).unwrap();
    assert!(stats.contains("\"quota_rejections\": 5"), "stats: {stats}");

    drop(c);
    server.shutdown().unwrap();
}

fn send_raw(server: &Server, frame: &[u8]) -> std::io::Result<Option<Vec<u8>>> {
    let mut s = TcpStream::connect(server.local_addr())?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    s.write_all(frame)?;
    s.flush()?;
    // server replies with one frame (or closes); then must close.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    if buf.is_empty() {
        return Ok(None);
    }
    Ok(Some(buf))
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut f = (body.len() as u32).to_le_bytes().to_vec();
    f.extend_from_slice(body);
    f
}

#[test]
fn malformed_frames_error_cleanly_without_wedging_the_pool() {
    let config = ServerConfig {
        workers: 2,
        queue: 4,
    };
    let server = start_server(&config);

    // Bad opcode: one BadFrame response, then the connection closes.
    let raw = send_raw(&server, &frame(&[0xEE])).unwrap().unwrap();
    let resp = Response::decode(&raw[4..]).unwrap();
    assert!(
        matches!(resp, Response::ServerErr(ServerError::BadFrame { .. })),
        "got {resp:?}"
    );

    // Truncated body for a known opcode: also BadFrame.
    let open_code = Request::Fs {
        volume: 0,
        op: rae_server::FsOp::Statfs,
    }
    .encode()[0];
    let raw = send_raw(&server, &frame(&[open_code, 0, 0]))
        .unwrap()
        .unwrap();
    assert!(matches!(
        Response::decode(&raw[4..]).unwrap(),
        Response::ServerErr(ServerError::BadFrame { .. })
    ));

    // Oversized length header: the server drops the connection without
    // attempting the allocation. (No response frame is required.)
    let huge = (rae_server::MAX_FRAME_LEN as u32 + 1).to_le_bytes();
    let _ = send_raw(&server, &huge);

    // Truncated header: connection just closes.
    let _ = send_raw(&server, &[0x01]);

    // Hammer more garbage connections than there are workers, then
    // prove the pool still serves well-formed clients.
    for i in 0..6 {
        let _ = send_raw(&server, &frame(&[0xF0 + i]));
    }
    let mut c = connect(&server);
    c.ping().unwrap();
    let vol = c.create_volume("alive", 1024, 256, 64, 0, 0).unwrap();
    c.mkdir(vol, "/ok").unwrap();
    drop(c);
    let report = server.shutdown().unwrap();
    assert!(report.all_clean);
}

#[test]
fn graceful_shutdown_drains_and_refuses() {
    let server = start_server(&ServerConfig::default());
    let mut idle = connect(&server);
    idle.ping().unwrap();
    let vol = idle.create_volume("draining", 1024, 256, 64, 0, 0).unwrap();
    idle.mkdir(vol, "/data").unwrap();

    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.shutdown().unwrap());

    // The idle connection is told the server is going away: either it
    // receives the pushed ShuttingDown frame on its next call, or the
    // socket is already closed by the time it tries.
    let mut notified = false;
    for _ in 0..100 {
        match idle.ping() {
            Ok(()) => std::thread::sleep(Duration::from_millis(5)),
            Err(ClientError::Server(ServerError::ShuttingDown)) => {
                notified = true;
                break;
            }
            Err(ClientError::Io(_)) => {
                notified = true;
                break;
            }
            Err(other) => panic!("unexpected error during shutdown: {other}"),
        }
    }
    assert!(notified, "idle client never observed the shutdown");

    let report = handle.join().unwrap();
    assert_eq!(report.volumes_unmounted, 1);
    assert!(report.all_clean);

    // After shutdown the endpoint is gone: connection refused, closed,
    // or a final ShuttingDown refusal — never a hang or a served op.
    if let Ok(mut late) = Client::connect(addr) {
        match late.ping() {
            Err(ClientError::Server(ServerError::ShuttingDown) | ClientError::Io(_)) => {}
            other => panic!("late client should be refused, got {other:?}"),
        }
    }
}
