//! Property tests of the wire codec: encode/decode is the identity
//! for every frame type, and the decoders are total (no panic, no
//! wedge) on arbitrary and on deliberately corrupted bytes.

use proptest::prelude::*;
use rae_server::wire::{FsOp, Reply, Request, Response, ServerError, TRACE_FLAG};
use rae_telemetry::TraceCtx;
use rae_vfs::{DirEntry, Fd, FileStat, FileType, FsError, InodeNo, OpenFlags, SetAttr};

fn any_flags() -> impl Strategy<Value = OpenFlags> {
    (0u32..3, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(access, creat, trunc, append)| {
            let mut f = match access {
                0 => OpenFlags::RDONLY,
                1 => OpenFlags::WRONLY,
                _ => OpenFlags::RDWR,
            };
            if creat {
                f |= OpenFlags::CREATE;
            }
            if trunc {
                f |= OpenFlags::TRUNC;
            }
            if append {
                f |= OpenFlags::APPEND;
            }
            f
        },
    )
}

fn any_fs_op() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        ("/[a-z]{1,12}", any_flags()).prop_map(|(path, flags)| FsOp::Open { path, flags }),
        (0u32..2000).prop_map(|fd| FsOp::Close { fd: Fd(fd) }),
        (0u32..2000, 0u64..1 << 30, 0u32..65536).prop_map(|(fd, offset, len)| FsOp::Read {
            fd: Fd(fd),
            offset,
            len
        }),
        (
            0u32..2000,
            0u64..1 << 30,
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(fd, offset, data)| FsOp::Write {
                fd: Fd(fd),
                offset,
                data
            }),
        (0u32..2000, 0u64..1 << 40).prop_map(|(fd, size)| FsOp::Truncate { fd: Fd(fd), size }),
        (
            "/[a-z]{1,12}",
            any::<bool>(),
            0u64..1 << 30,
            any::<bool>(),
            0u64..1 << 30
        )
            .prop_map(|(path, has_size, size, has_mtime, mtime)| FsOp::SetAttr {
                path,
                attr: SetAttr {
                    size: has_size.then_some(size),
                    mtime: has_mtime.then_some(mtime),
                },
            }),
        (0u32..2000).prop_map(|fd| FsOp::Fsync { fd: Fd(fd) }),
        Just(FsOp::Sync),
        "/[a-z]{1,12}".prop_map(|path| FsOp::Mkdir { path }),
        "/[a-z]{1,12}".prop_map(|path| FsOp::Rmdir { path }),
        "/[a-z]{1,12}".prop_map(|path| FsOp::Unlink { path }),
        ("/[a-z]{1,12}", "/[a-z]{1,12}").prop_map(|(from, to)| FsOp::Rename { from, to }),
        ("/[a-z]{1,12}", "/[a-z]{1,12}").prop_map(|(existing, new)| FsOp::Link { existing, new }),
        ("/[a-z]{1,12}", "/[a-z]{1,12}")
            .prop_map(|(target, linkpath)| FsOp::Symlink { target, linkpath }),
        "/[a-z]{1,12}".prop_map(|path| FsOp::Readlink { path }),
        "/[a-z]{1,12}".prop_map(|path| FsOp::Stat { path }),
        (0u32..2000).prop_map(|fd| FsOp::Fstat { fd: Fd(fd) }),
        "/[a-z]{1,12}".prop_map(|path| FsOp::Readdir { path }),
        Just(FsOp::Statfs),
    ]
}

fn any_fs_error() -> impl Strategy<Value = FsError> {
    prop_oneof![
        Just(FsError::NotFound),
        Just(FsError::Exists),
        Just(FsError::NotDir),
        Just(FsError::IsDir),
        Just(FsError::NotEmpty),
        Just(FsError::NoSpace),
        Just(FsError::NoInodes),
        Just(FsError::InvalidArgument),
        Just(FsError::NameTooLong),
        Just(FsError::TooManyOpenFiles),
        Just(FsError::BadFd),
        Just(FsError::BadAccessMode),
        Just(FsError::TooManyLinks),
        Just(FsError::FileTooBig),
        Just(FsError::ReadOnly),
        Just(FsError::Busy),
        Just(FsError::RenameLoop),
        "[ -~]{0,40}".prop_map(|detail| FsError::IoFailed { detail }),
        "[ -~]{0,40}".prop_map(|detail| FsError::Corrupted { detail }),
        (0u32..100_000).prop_map(|bug_id| FsError::DetectedBug { bug_id }),
        ("[a-z._]{1,30}", "[ -~]{0,40}")
            .prop_map(|(check, detail)| FsError::CheckFailed { check, detail }),
        "[ -~]{0,40}".prop_map(|detail| FsError::Internal { detail }),
        "[ -~]{0,40}".prop_map(|detail| FsError::RecoveryFailed { detail }),
    ]
}

fn any_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        Just(Reply::Unit),
        Just(Reply::Pong),
        (0u32..5000).prop_map(Reply::Fd),
        proptest::collection::vec(any::<u8>(), 0..512).prop_map(Reply::Data),
        (0u32..1 << 20).prop_map(Reply::Written),
        "[ -~]{0,60}".prop_map(Reply::Str),
        (
            1u32..5000,
            0u64..1 << 40,
            1u32..100,
            0u64..4096,
            0u64..1 << 30
        )
            .prop_map(|(ino, size, nlink, blocks, mtime)| Reply::Stat(FileStat {
                ino: InodeNo(ino),
                ftype: FileType::Regular,
                size,
                nlink,
                blocks,
                mtime,
                ctime: mtime,
            })),
        proptest::collection::vec(("[a-z]{1,12}", 1u32..5000), 0..16).prop_map(|entries| {
            Reply::Entries(
                entries
                    .into_iter()
                    .map(|(name, ino)| DirEntry {
                        ino: InodeNo(ino),
                        ftype: FileType::Regular,
                        name,
                    })
                    .collect(),
            )
        }),
        (0u32..64).prop_map(Reply::VolumeId),
        (0u32..100_000).prop_map(Reply::BugId),
        (0u8..4).prop_map(Reply::Status),
    ]
}

proptest! {
    /// Every filesystem request round-trips bit-exactly.
    #[test]
    fn fs_request_round_trip(volume in 0u32..64, op in any_fs_op()) {
        let req = Request::Fs { volume, op };
        prop_assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    /// Every success reply round-trips bit-exactly.
    #[test]
    fn reply_round_trip(reply in any_reply()) {
        let resp = Response::Ok(reply);
        prop_assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }

    /// Every error response round-trips bit-exactly.
    #[test]
    fn fs_error_round_trip(e in any_fs_error()) {
        let resp = Response::Err(e);
        prop_assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }

    /// The request decoder is total on arbitrary bytes: anything it
    /// accepts must re-encode to an equivalent frame, and everything
    /// else is a clean `DecodeError` (no panic).
    #[test]
    fn request_decoder_is_total(body in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(req) = Request::decode(&body) {
            prop_assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    /// Same for the response decoder.
    #[test]
    fn response_decoder_is_total(body in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(resp) = Response::decode(&body) {
            prop_assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    /// Truncating a valid frame anywhere never decodes to a *different*
    /// valid request — prefix corruption is detected, not misread.
    #[test]
    fn truncated_requests_do_not_alias(volume in 0u32..8, op in any_fs_op(), cut in 0usize..64) {
        let req = Request::Fs { volume, op };
        let body = req.encode();
        if cut < body.len() {
            if let Ok(decoded) = Request::decode(&body[..cut]) {
                prop_assert_ne!(decoded, req, "truncation produced the original");
            }
        }
    }

    /// Every request round-trips bit-exactly through the v2 trace
    /// extension, with and without a context attached.
    #[test]
    fn traced_request_round_trip(
        volume in 0u32..64,
        op in any_fs_op(),
        trace_id in any::<u64>(),
        span in any::<u8>(),
        with_ctx in any::<bool>(),
    ) {
        let req = Request::Fs { volume, op };
        let ctx = with_ctx.then_some(TraceCtx { trace_id, span });
        let body = req.encode_traced(ctx);
        prop_assert_eq!(Request::decode_traced(&body), Ok((req.clone(), ctx)));
        if with_ctx {
            prop_assert_eq!(body[0] & TRACE_FLAG, TRACE_FLAG);
            // an old server must reject, never misread, a traced frame
            prop_assert!(Request::decode(&body).is_err());
        } else {
            prop_assert_eq!(body, req.encode());
        }
    }

    /// The traced decoder is total on arbitrary bytes: anything it
    /// accepts must re-encode to an equivalent frame (no panic).
    #[test]
    fn traced_decoder_is_total(body in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok((req, ctx)) = Request::decode_traced(&body) {
            let re = req.encode_traced(ctx);
            prop_assert_eq!(Request::decode_traced(&re), Ok((req, ctx)));
        }
    }

    /// Server errors round-trip.
    #[test]
    fn server_error_round_trip(volume in 0u32..64, which in 0u8..6) {
        let e = match which {
            0 => ServerError::QuotaExceeded { volume },
            1 => ServerError::ShuttingDown,
            2 => ServerError::NoSuchVolume { volume },
            3 => ServerError::BadFrame { reason: "f".to_string() },
            4 => ServerError::Unsupported { opcode: 20 },
            _ => ServerError::Busy,
        };
        let resp = Response::ServerErr(e);
        prop_assert_eq!(Response::decode(&resp.encode()), Ok(resp));
    }
}
