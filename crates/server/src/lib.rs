//! The RAE network storage service: many independent [`rae::RaeFs`]
//! volumes behind one TCP endpoint.
//!
//! The paper's pitch is that RAE recovery keeps a filesystem *serving*
//! through runtime errors; this crate is where that claim meets
//! clients. A [`server::Server`] owns a [`volume::VolumeManager`]
//! (one device + RaeFs + fault registry + quota per tenant) and speaks
//! a bespoke length-prefixed binary protocol ([`wire`]) over
//! `std::net` with a bounded worker thread pool — no async runtime,
//! no external protocol dependencies.
//!
//! Layering:
//!
//! * [`wire`] — frame codec: requests, replies, and the exhaustive
//!   `FsError` ↔ wire-errno table.
//! * [`volume`] — the multi-tenant volume manager with per-tenant
//!   op/byte quotas and per-op-class request histograms.
//! * [`server`] — listener, worker pool, graceful shutdown.
//! * [`client`] — a blocking typed client (used by the load generator
//!   in `rae-workloads` and the `raefs loadgen` CLI).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod volume;
pub mod wire;

pub use client::{Client, ClientError};
pub use server::{sigint_installed, sigint_triggered, Server, ServerConfig, ShutdownReport};
pub use volume::{
    volumes_stats_json, QuotaSpec, TenantCounters, Volume, VolumeManager, VolumeSpec,
};
pub use wire::{
    effect_from_code, site_from_code, status_code, status_name, AdminOp, DecodeError, FsOp, Reply,
    Request, Response, ServerError, VolumeInfo, MAX_FRAME_LEN,
};

/// Keep the default panic hook from printing a backtrace for every
/// *injected* bug that fires as a panic — the server catches those and
/// recovers, so the spew is pure noise. Anything else still reaches
/// the previous hook. Call once per process before injecting faults
/// (the `serve` CLI and fault-campaign harnesses do).
pub fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| {
                info.payload()
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
            });
        if msg.is_some_and(|m| m.contains("injected filesystem bug")) {
            return;
        }
        default_hook(info);
    }));
}
