//! The TCP front end: listener, bounded worker pool, request
//! dispatch, graceful shutdown.
//!
//! Threading model: one non-blocking accept loop feeds accepted
//! connections into a bounded crossbeam channel; `workers` threads
//! each own one connection at a time and run its request loop to
//! completion (connection-per-worker, queued overflow). When the
//! queue is full the connection is refused with a `Busy` frame rather
//! than left to time out. Dispatch is wrapped in `catch_unwind` so a
//! panic that escapes the RAE runtime downgrades to an `Internal`
//! error response instead of wedging a pool thread.
//!
//! Shutdown: [`Server::request_shutdown`] (or the `Shutdown` admin
//! op, or SIGINT via [`sigint_installed`]) flips a flag; the accept
//! loop rejects new and queued connections with a `ShuttingDown`
//! frame, workers finish the request in flight and then say
//! `ShuttingDown` before closing, and [`Server::shutdown`] joins
//! everything and flushes/unmounts every volume.

use crate::volume::{Volume, VolumeManager, VolumeSpec};
use crate::wire::{
    self, effect_from_code, site_from_code, status_code, write_frame, AdminOp, FsOp, Reply,
    Request, Response, ServerError,
};
use rae_faults::{BugSpec, Trigger};
use rae_telemetry::EventKind;
use rae_vfs::FsError;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Worker pool and transport knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time; arriving
    /// connections beyond `workers + queue` get a `Busy` frame).
    pub workers: usize,
    /// Bounded connection queue depth in front of the pool.
    pub queue: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 8,
            queue: 16,
        }
    }
}

/// What a graceful shutdown drained and flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests served over the server's lifetime.
    pub requests: u64,
    /// Volumes flushed and unmounted.
    pub volumes_unmounted: usize,
    /// Whether every volume unmounted cleanly (sole-owner unmount, no
    /// flush errors).
    pub all_clean: bool,
}

struct Shared {
    manager: Arc<VolumeManager>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
}

/// A running storage server.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving volumes
    /// from `manager`.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(
        addr: &str,
        manager: Arc<VolumeManager>,
        config: &ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            manager,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(config.queue.max(1));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rae-server-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("rae-server-accept".to_string())
            .spawn(move || accept_loop(&listener, &tx, &accept_shared))
            .expect("spawn accept loop");
        Ok(Server {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The volume manager behind this server.
    #[must_use]
    pub fn manager(&self) -> &Arc<VolumeManager> {
        &self.shared.manager
    }

    /// Flip the shutdown flag: stop accepting, start draining. The
    /// first flip (only) records [`EventKind::ShutdownBegin`] so the
    /// timeline marks where the drain started.
    pub fn request_shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            self.shared
                .manager
                .telemetry()
                .event(EventKind::ShutdownBegin, 1, 0, 0);
        }
    }

    /// Whether shutdown has been requested (by us, a client's
    /// `Shutdown` op, or a signal path that called
    /// [`Server::request_shutdown`]).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    #[must_use]
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: drain in-flight requests, join the pool,
    /// flush and unmount every volume.
    ///
    /// # Errors
    ///
    /// Volume flush failures (the pool is already down and every
    /// volume has still been retired when this returns an error).
    pub fn shutdown(mut self) -> Result<ShutdownReport, FsError> {
        self.request_shutdown();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let connections = self.shared.connections.load(Ordering::Relaxed);
        let requests = self.shared.requests.load(Ordering::Relaxed);
        let unmounted = self.shared.manager.unmount_all();
        let (volumes_unmounted, all_clean) = match &unmounted {
            Ok((n, clean)) => (*n, *clean),
            Err(_) => (0, false),
        };
        self.shared.manager.telemetry().event(
            EventKind::ServerShutdown,
            connections,
            volumes_unmounted as u64,
            0,
        );
        unmounted?;
        Ok(ShutdownReport {
            connections,
            requests,
            volumes_unmounted,
            all_clean,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &crossbeam::channel::Sender<TcpStream>,
    shared: &Shared,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn = shared.connections.fetch_add(1, Ordering::Relaxed) + 1;
                let t = shared.manager.telemetry();
                t.event(EventKind::ClientConnected, conn, 0, 0);
                let _ = stream.set_nodelay(true);
                if shared.shutdown.load(Ordering::SeqCst) {
                    t.event(EventKind::ConnAccepted, conn, 0, 0);
                    refuse(stream, &ServerError::ShuttingDown);
                    return;
                }
                match tx.try_send(stream) {
                    Ok(()) => t.event(EventKind::ConnAccepted, conn, 1, 0),
                    Err(err) => {
                        // queue full (or workers gone): refuse politely
                        t.event(EventKind::ConnAccepted, conn, 0, 0);
                        let stream = match err {
                            crossbeam::channel::TrySendError::Full(s)
                            | crossbeam::channel::TrySendError::Disconnected(s) => s,
                        };
                        refuse(stream, &ServerError::Busy);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn refuse(stream: TcpStream, err: &ServerError) {
    let mut stream = stream;
    let _ = write_frame(&mut stream, &Response::ServerErr(err.clone()).encode());
}

fn worker_loop(rx: &crossbeam::channel::Receiver<TcpStream>, shared: &Shared) {
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(stream) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    refuse(stream, &ServerError::ShuttingDown);
                    continue;
                }
                serve_connection(stream, shared);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // drain whatever is still queued, then exit
                    while let Ok(stream) = rx.try_recv() {
                        refuse(stream, &ServerError::ShuttingDown);
                    }
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

enum ReadOutcome {
    Frame(Vec<u8>),
    Eof,
    Shutdown,
    Error,
}

/// Read one frame, polling the shutdown flag while the connection is
/// idle (the socket carries a short read timeout so an idle worker
/// notices shutdown within ~50 ms).
fn read_frame_interruptible(stream: &mut TcpStream, shared: &Shared) -> ReadOutcome {
    let mut hdr = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        if got == 0 && shared.shutdown.load(Ordering::SeqCst) {
            return ReadOutcome::Shutdown;
        }
        match stream.read(&mut hdr[got..]) {
            Ok(0) => {
                return if got == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Error
                }
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return ReadOutcome::Error,
        }
    }
    let len = u32::from_le_bytes(hdr) as usize;
    if len > wire::MAX_FRAME_LEN {
        return ReadOutcome::Error;
    }
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match stream.read(&mut body[got..]) {
            Ok(0) => return ReadOutcome::Error,
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return ReadOutcome::Error,
        }
    }
    ReadOutcome::Frame(body)
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut served = 0u64;
    // ConnClosed reason codes: 0 eof, 1 transport error, 2 shutdown,
    // 3 bad frame (see the EventKind schema table)
    let mut close_reason = 0u64;
    loop {
        let body = match read_frame_interruptible(&mut stream, shared) {
            ReadOutcome::Frame(body) => body,
            ReadOutcome::Eof => break,
            ReadOutcome::Error => {
                close_reason = 1;
                break;
            }
            ReadOutcome::Shutdown => {
                close_reason = 2;
                let _ = write_frame(
                    &mut stream,
                    &Response::ServerErr(ServerError::ShuttingDown).encode(),
                );
                break;
            }
        };
        let response = match Request::decode_traced(&body) {
            Ok((request, ctx)) => {
                served += 1;
                shared.requests.fetch_add(1, Ordering::Relaxed);
                // The trace id travels the rest of the way through the
                // per-thread cell: every flight-recorder event the
                // request's layers record is stamped with it.
                if let Some(ctx) = ctx {
                    rae_telemetry::set_current_trace(ctx.trace_id);
                }
                let response = handle_request(request, shared);
                rae_telemetry::clear_current_trace();
                response
            }
            Err(e) => {
                // a malformed frame poisons the stream position: answer
                // once, then close the connection
                close_reason = 3;
                let _ = write_frame(
                    &mut stream,
                    &Response::ServerErr(ServerError::BadFrame {
                        reason: e.0.to_string(),
                    })
                    .encode(),
                );
                break;
            }
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
    let t = shared.manager.telemetry();
    t.event(EventKind::ClientDisconnected, 0, served, 0);
    t.event(EventKind::ConnClosed, served, close_reason, 0);
}

fn handle_request(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Ping => Response::Ok(Reply::Pong),
        Request::Negotiate { version } => {
            Response::Ok(Reply::Version(version.min(wire::PROTOCOL_VERSION)))
        }
        Request::Fs { volume, op } => {
            let Some(vol) = shared.manager.get(volume) else {
                return Response::ServerErr(ServerError::NoSuchVolume { volume });
            };
            let class = Volume::class_of(&op);
            if let Err(e) = vol.charge(Volume::bytes_of(&op)) {
                let t = shared.manager.telemetry();
                t.event(EventKind::QuotaExceeded, u64::from(volume), class.code(), 0);
                t.event(
                    EventKind::QuotaRefused,
                    u64::from(volume),
                    vol.ops_used(),
                    vol.bytes_used(),
                );
                return Response::ServerErr(e);
            }
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| vol.apply(&op)));
            vol.observe_request(class, t0.elapsed().as_nanos() as u64);
            match result {
                Ok(Ok(reply)) => Response::Ok(reply),
                Ok(Err(e)) => Response::Err(e),
                // RAE catches injected panics at its API boundary; this
                // is the server's own backstop so a pool thread can
                // never die of one that slips through
                Err(_) => Response::Err(FsError::Internal {
                    detail: "request dispatch panicked".to_string(),
                }),
            }
        }
        Request::Admin(op) => handle_admin(op, shared),
    }
}

fn handle_admin(op: AdminOp, shared: &Shared) -> Response {
    let manager = &shared.manager;
    match op {
        AdminOp::CreateVolume {
            name,
            blocks,
            inodes,
            journal,
            max_ops,
            max_bytes,
        } => {
            let spec = VolumeSpec {
                name,
                blocks,
                inodes,
                journal,
                quota: crate::volume::QuotaSpec { max_ops, max_bytes },
            };
            match manager.create(&spec) {
                Ok(id) => Response::Ok(Reply::VolumeId(id)),
                Err(e) => Response::Err(e),
            }
        }
        AdminOp::UnmountVolume { volume } => match manager.unmount(volume) {
            Ok(clean) => Response::Ok(Reply::Status(u8::from(!clean))),
            Err(FsError::NotFound) => Response::ServerErr(ServerError::NoSuchVolume { volume }),
            Err(e) => Response::Err(e),
        },
        AdminOp::ListVolumes => Response::Ok(Reply::Volumes(manager.list())),
        AdminOp::VolumeStats { volume } => match manager.get(volume) {
            Some(vol) => Response::Ok(Reply::Str(vol.stats_json())),
            None => Response::ServerErr(ServerError::NoSuchVolume { volume }),
        },
        AdminOp::InjectFault {
            volume,
            site,
            effect,
            nth,
        } => {
            let Some(vol) = manager.get(volume) else {
                return Response::ServerErr(ServerError::NoSuchVolume { volume });
            };
            let (Some(site), Some(effect)) = (site_from_code(site), effect_from_code(effect))
            else {
                return Response::ServerErr(ServerError::BadFrame {
                    reason: "inject site/effect code".to_string(),
                });
            };
            let id = vol.next_bug_id();
            let trigger = if nth == 0 {
                Trigger::Always
            } else {
                Trigger::NthMatch(nth)
            };
            vol.faults().arm(BugSpec::new(
                id,
                format!("wire-injected-{id}"),
                site,
                trigger,
                effect,
            ));
            Response::Ok(Reply::BugId(id))
        }
        AdminOp::ForceRecover { volume } => match manager.get(volume) {
            Some(vol) => Response::Ok(Reply::Status(status_code(vol.force_recover()))),
            None => Response::ServerErr(ServerError::NoSuchVolume { volume }),
        },
        AdminOp::ServerStats => {
            let vols = manager.list();
            let handles: Vec<_> = vols.iter().filter_map(|v| manager.get(v.id)).collect();
            let pairs: Vec<(&str, &rae::RaeFs, crate::volume::TenantCounters)> = handles
                .iter()
                .map(|v| (v.name.as_str(), v.fs(), v.tenant_counters()))
                .collect();
            Response::Ok(Reply::Str(crate::volume::volumes_stats_json(&pairs)))
        }
        AdminOp::Shutdown => {
            if !shared.shutdown.swap(true, Ordering::SeqCst) {
                manager.telemetry().event(EventKind::ShutdownBegin, 0, 0, 0);
            }
            Response::Ok(Reply::Unit)
        }
        AdminOp::Scrape { json } => Response::Ok(Reply::Str(if json {
            manager.scrape_json()
        } else {
            manager.scrape_prometheus()
        })),
    }
}

/// Validate that an `FsOp` is reachable from the wire (used by the
/// protocol fuzz tests; `Request::decode` already rejects the
/// non-servable opcodes).
#[must_use]
pub fn is_servable(op: &FsOp) -> bool {
    !matches!(
        op.kind(),
        rae_vfs::OpKind::Create | rae_vfs::OpKind::Mount | rae_vfs::OpKind::RestoreFd
    )
}

// ---------------------------------------------------------------------
// SIGINT plumbing for the CLI `serve` command.
//
// The vendor tree has no `libc` crate, so the one C symbol needed is
// declared directly. The handler only stores to an `AtomicBool`,
// which is async-signal-safe.

#[cfg(unix)]
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        const SIGINT: i32 = 2;
        const SIG_ERR: usize = usize::MAX;
        // SAFETY: installing a handler that only touches an atomic.
        let prev = unsafe { signal(SIGINT, on_sigint as *const () as usize) };
        prev != SIG_ERR
    }

    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

/// Install a SIGINT handler that records the signal (the CLI `serve`
/// loop polls [`sigint_triggered`] and runs a graceful shutdown).
/// Returns whether installation succeeded; on non-Unix targets this
/// is a no-op returning `false`.
pub fn sigint_installed() -> bool {
    #[cfg(unix)]
    {
        sigint::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Whether SIGINT has arrived since [`sigint_installed`].
#[must_use]
pub fn sigint_triggered() -> bool {
    #[cfg(unix)]
    {
        sigint::triggered()
    }
    #[cfg(not(unix))]
    {
        false
    }
}
